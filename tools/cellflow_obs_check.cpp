// cellflow_obs_check — validates observability artifacts written by
// cellflow_sim (or any other driver):
//
//   cellflow_obs_check --prom=metrics.txt --jsonl=metrics.txt.jsonl
//                      --trace=profile.json --json=BENCH_foo.json
//
// Each flag is optional; every named file is parsed with the library's
// own strict parsers (obs/export.hpp) and a one-line summary is printed.
// Exits nonzero (with the parser's error message) on the first malformed
// file — the ctest smoke lane runs cellflow_sim with --metrics-out /
// --profile-out and then this tool over the outputs, proving end-to-end
// that the exported bytes are machine-readable.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/sidecar.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

}  // namespace

int main(int argc, char** argv) {
  cellflow::CliArgs cli(argc, argv);
  const std::string prom =
      cli.get_string("prom", "", "Prometheus text snapshot to validate");
  const std::string jsonl =
      cli.get_string("jsonl", "", "JSONL metrics stream to validate");
  const std::string trace =
      cli.get_string("trace", "", "Chrome trace_event JSON to validate");
  const std::string json = cli.get_string(
      "json", "", "plain JSON document (e.g. a BENCH_* sidecar) to validate");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  try {
    if (!prom.empty()) {
      const auto samples = cellflow::obs::parse_prometheus(read_file(prom));
      if (samples.empty())
        throw std::runtime_error(prom + ": no samples");
      std::cout << prom << ": " << samples.size() << " samples OK\n";
    }
    if (!jsonl.empty()) {
      const std::string text = read_file(jsonl);
      std::size_t lines = 0;
      std::size_t start = 0;
      while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        const std::string_view line(text.data() + start, end - start);
        if (!line.empty()) {
          cellflow::obs::validate_json(line);
          ++lines;
        }
        start = end + 1;
      }
      if (lines == 0) throw std::runtime_error(jsonl + ": no JSONL lines");
      std::cout << jsonl << ": " << lines << " JSONL lines OK\n";
    }
    if (!trace.empty()) {
      const std::string text = read_file(trace);
      cellflow::obs::validate_json(text);
      // Perfetto needs the top-level traceEvents array; a bare valid JSON
      // document without it would load as an empty trace.
      if (text.find("\"traceEvents\"") == std::string::npos)
        throw std::runtime_error(trace + ": missing traceEvents");
      std::cout << trace << ": trace JSON OK\n";
    }
    if (!json.empty()) {
      const std::string text = read_file(json);
      cellflow::obs::validate_json(text);
      // Bench sidecars get the deeper check: v2 documents must carry the
      // full provenance + dispersion schema (obs/sidecar.hpp) or the
      // regression gate would silently lose its noise model.
      const auto doc = cellflow::obs::parse_json(text);
      if (doc.is_object() && doc.find("bench") != nullptr) {
        const auto sidecar = cellflow::obs::parse_sidecar(text);
        if (sidecar.version >= 2) {
          cellflow::obs::validate_sidecar_schema(text);
          std::cout << json << ": sidecar v" << sidecar.version
                    << " schema OK (" << sidecar.rows.size() << " rows, "
                    << sidecar.dispersion.size() << " dispersion entries)\n";
        } else {
          std::cout << json << ": sidecar v1 JSON OK\n";
        }
      } else {
        std::cout << json << ": JSON OK\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "cellflow_obs_check: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
