// cellflow_bench_diff — the noise-aware bench-regression gate.
//
//   cellflow_bench_diff --baseline=results --fresh=/tmp/bench_fresh
//                       [--margin=0.35] [--disp-mult=4.0]
//
// Compares every BENCH_*.json sidecar present in --fresh against the
// same-named file in --baseline (both may also be single .json files),
// prints a trend table, and exits 1 iff any gated metric regressed past
// its threshold (obs/sidecar.hpp: max(margin, disp-mult x observed
// relative dispersion), one-sided per metric direction — a faster run
// never fails). Sidecars present on only one side, informational columns
// and benign provenance changes (build type, git SHA) are reported but
// never fail the gate. Cross-hardware pairs (hardware_threads or compiler
// provenance differ) are REFUSED outright — the timings are not
// comparable — unless --allow-cross-hardware downgrades the refusal to a
// warning. Exit codes: 0 clean, 1 regression, 2 error, 3 refused.
//
// A second mode synthesizes a doctored sidecar for testing the gate
// itself (the benchdiff.inject ctest fixture):
//
//   cellflow_bench_diff --scale-sidecar=IN.json --scale-out=OUT.json
//                       --scale=0.5
//
// scales every gated metric to look 0.5x as fast (throughput halved,
// times doubled) and writes the result; the gate must then fail.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sidecar.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;
using cellflow::obs::CompareOptions;
using cellflow::obs::CompareReport;
using cellflow::obs::Sidecar;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

// --baseline/--fresh accept either a directory of BENCH_*.json files or
// a single sidecar file; normalize both to {filename -> full path}.
std::vector<std::pair<std::string, std::string>> sidecar_files(
    const std::string& root) {
  std::vector<std::pair<std::string, std::string>> out;
  const fs::path p(root);
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json")
        out.emplace_back(name, entry.path().string());
    }
  } else if (fs::is_regular_file(p)) {
    out.emplace_back(p.filename().string(), p.string());
  } else {
    throw std::runtime_error("no such file or directory: " + root);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel * 100.0);
  return buf;
}

std::string num(double v) {
  char buf[32];
  if (v != 0.0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3))
    std::snprintf(buf, sizeof buf, "%.3e", v);
  else
    std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

void print_report(const CompareReport& report, bool verbose_ok) {
  for (const auto& note : report.notes)
    std::cout << "  note: " << note << '\n';
  for (const auto& row : report.rows) {
    const bool interesting =
        row.regression || std::abs(row.rel_change) > row.threshold;
    if (!verbose_ok && !interesting && row.gated) continue;
    if (!row.gated && !verbose_ok) continue;
    std::cout << "  " << (row.regression ? "REGRESSION" :
                          row.gated ? "ok        " : "info      ")
              << "  " << row.row_key << "  " << row.metric << "  "
              << num(row.base) << " -> " << num(row.fresh) << "  ("
              << pct(row.rel_change);
    if (row.gated) std::cout << ", threshold " << pct(row.threshold);
    std::cout << ")\n";
  }
}

// Timings from different machines (or different compilers) are not
// comparable — a "regression" across such a pair is hardware drift, not
// a code change. Returns a human-readable reason when the pair crosses
// that line, empty when it is comparable (v1 sidecars carry no
// provenance — hardware_threads 0 / empty compiler — and stay exempt).
std::string cross_hardware_reason(const Sidecar& base, const Sidecar& fresh) {
  const auto& b = base.provenance;
  const auto& f = fresh.provenance;
  if (b.hardware_threads != 0 && f.hardware_threads != 0 &&
      b.hardware_threads != f.hardware_threads)
    return "hardware_threads " + std::to_string(b.hardware_threads) + " -> " +
           std::to_string(f.hardware_threads);
  if (!b.compiler.empty() && !f.compiler.empty() && b.compiler != f.compiler)
    return "compiler " + b.compiler + " -> " + f.compiler;
  return "";
}

void note_provenance_drift(const Sidecar& base, const Sidecar& fresh) {
  const auto& b = base.provenance;
  const auto& f = fresh.provenance;
  if (!b.build_type.empty() && !f.build_type.empty() &&
      b.build_type != f.build_type)
    std::cout << "  note: build_type changed " << b.build_type << " -> "
              << f.build_type << " (timings not comparable)\n";
  if (!b.compiler.empty() && !f.compiler.empty() && b.compiler != f.compiler)
    std::cout << "  note: compiler changed " << b.compiler << " -> "
              << f.compiler << '\n';
  if (b.threads != f.threads)
    std::cout << "  note: threads changed " << b.threads << " -> "
              << f.threads << '\n';
  if (!b.git_sha.empty() && b.git_sha != "unknown" &&
      !f.git_sha.empty() && b.git_sha != f.git_sha)
    std::cout << "  note: baseline " << b.git_sha << ", fresh "
              << (f.git_sha.empty() ? "unknown" : f.git_sha) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  cellflow::CliArgs cli(argc, argv);
  const std::string baseline = cli.get_string(
      "baseline", "", "baseline sidecar directory (or single file)");
  const std::string fresh = cli.get_string(
      "fresh", "", "fresh sidecar directory (or single file) to gate");
  const double margin = cli.get_double(
      "margin", 0.35, "minimum relative-change threshold per gated metric");
  const double disp_mult = cli.get_double(
      "disp-mult", 4.0, "threshold >= this multiple of observed dispersion");
  const bool verbose = cli.get_bool(
      "verbose", false, "print every comparison, not just notable ones");
  const bool allow_cross_hardware = cli.get_bool(
      "allow-cross-hardware", false,
      "downgrade the cross-hardware refusal (hardware_threads/compiler "
      "provenance mismatch) to a warning and compare anyway");
  const std::string scale_in = cli.get_string(
      "scale-sidecar", "", "sidecar to doctor (testing the gate itself)");
  const std::string scale_out =
      cli.get_string("scale-out", "", "where to write the doctored sidecar");
  const double scale = cli.get_double(
      "scale", 1.0, "speed factor for --scale-sidecar (0.5 = 2x slower)");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  try {
    if (!scale_in.empty()) {
      if (scale_out.empty())
        throw std::runtime_error("--scale-sidecar needs --scale-out");
      const std::string doctored =
          cellflow::obs::scale_sidecar_metrics(read_file(scale_in), scale);
      std::ofstream out(scale_out, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + scale_out);
      out << doctored;
      std::cout << "wrote " << scale_out << " (" << scale << "x speed)\n";
      return 0;
    }

    if (baseline.empty() || fresh.empty())
      throw std::runtime_error("need --baseline and --fresh (or --help)");

    const auto base_files = sidecar_files(baseline);
    const auto fresh_files = sidecar_files(fresh);
    const CompareOptions options{margin, disp_mult};

    int regressions = 0;
    int compared = 0;
    int refused = 0;
    for (const auto& [name, fresh_path] : fresh_files) {
      const auto it = std::find_if(
          base_files.begin(), base_files.end(),
          [&name = name](const auto& p) { return p.first == name; });
      if (it == base_files.end()) {
        std::cout << name << ": no baseline (new bench?)\n";
        continue;
      }
      const Sidecar base = cellflow::obs::parse_sidecar(read_file(it->second));
      const Sidecar cur = cellflow::obs::parse_sidecar(read_file(fresh_path));
      const std::string cross = cross_hardware_reason(base, cur);
      if (!cross.empty()) {
        if (!allow_cross_hardware) {
          std::cout << name << ": REFUSED (" << cross
                    << "; baseline was recorded on different hardware — "
                       "regenerate it on this machine or pass "
                       "--allow-cross-hardware)\n";
          ++refused;
          continue;
        }
        std::cout << name << ": warning: cross-hardware comparison (" << cross
                  << ") — timings are not comparable; gate results are "
                     "advisory\n";
      }
      const CompareReport report = cellflow::obs::compare_sidecars(
          base, cur, options);
      std::cout << report.bench << ": "
                << (report.ok() ? "OK" : "REGRESSED") << " ("
                << report.rows.size() << " metrics, " << report.regressions
                << " regressions)\n";
      note_provenance_drift(base, cur);
      print_report(report, verbose);
      regressions += report.regressions;
      ++compared;
    }
    for (const auto& [name, path] : base_files) {
      (void)path;
      const bool in_fresh = std::any_of(
          fresh_files.begin(), fresh_files.end(),
          [&name = name](const auto& p) { return p.first == name; });
      if (!in_fresh) std::cout << name << ": only in baseline\n";
    }
    if (refused > 0) {
      // Distinct exit code so callers (scripts/run_bench.sh --check, the
      // benchcheck ctest fixture) can tell "baselines are from another
      // machine" apart from a regression (1) or a hard error (2).
      std::cout << "bench_diff: REFUSED (" << refused
                << " cross-hardware pair(s); --allow-cross-hardware to "
                   "override)\n";
      return 3;
    }
    if (compared == 0)
      throw std::runtime_error("no sidecar pairs to compare");
    std::cout << (regressions == 0 ? "bench_diff: PASS" : "bench_diff: FAIL")
              << " (" << compared << " benches, " << regressions
              << " regressions)\n";
    return regressions == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "cellflow_bench_diff: " << e.what() << '\n';
    return 2;
  }
}
