// cellflow_sim — the general-purpose simulation driver: run any
// configuration of the protocol from the command line, with all the
// instrumentation the library offers, without writing C++.
//
//   cellflow_sim --side=8 --l=0.25 --rs=0.05 --v=0.1
//                --source=1,0 --target=1,7 --rounds=2500
//                [--pf=0.02 --pr=0.1] [--policy=round-robin]
//                [--movement=coupled|compacting] [--carve-turns=N]
//                [--render-every=0] [--trace=false] [--csv=false]
//                [--seed=1] [--threads=0]
//                [--scheduler=active|exhaustive]
//                [--metrics-out=FILE] [--metrics-every=0]
//                [--profile-out=FILE] [--telemetry=false]
//                [--realization=shared|message]
//                [--store=dense|chunked]
//                [--net-loss=P --net-dup=P --net-delay=P
//                 --net-delay-max=R --net-seed=S --net-until=R
//                 --partition=START:END:COL]
//                [--snapshot-out=FILE] [--snapshot-every=N]
//                [--restore=FILE]
//
// Prints a one-line summary plus (optionally) periodic ASCII renders, the
// full event trace, and a machine-readable CSV record. --metrics-out
// writes a Prometheus text snapshot (plus a JSONL stream next to it when
// --metrics-every > 0); --profile-out writes a Chrome trace_event JSON
// viewable in Perfetto (with a worker track per pool thread when
// --threads > 1); --telemetry adds the engine-telemetry families (round
// decomposition, phase imbalance, Amdahl serial fraction; DESIGN.md §7)
// to the metrics registry — kept opt-in because those series carry
// timings, which byte-diff consumers of --metrics-out must exclude. Exits nonzero if any §III-A safety oracle fires —
// so the tool doubles as a conformance checker for modified protocol
// variants.
//
// --realization=message runs the §II-B message-passing realization
// instead, over a FaultyNetwork when any --net-* / --partition flag is
// set (src/net; DESIGN.md §8): --net-loss/--net-dup/--net-delay are
// i.i.d. per-message probabilities, --net-delay-max the delay bound in
// rounds, --net-until the last faulty round (0: faults never cease), and
// --partition cuts columns j < COL from j >= COL for rounds
// [START, END). Every round is audited with the msg_audit oracles
// (safety + entity conservation); violations exit nonzero. --movement,
// --carve-turns, --threads, --policy, --trace, and --profile-out are
// shared-realization features and are rejected in message mode.
//
// --store=chunked runs the sparse-world ChunkedSystem (src/chunk;
// DESIGN.md §12) instead of the dense store — same automaton, memory
// proportional to the materialized chunk set. Supported alongside it:
// the core flags, --policy, --movement, --threads, --scheduler,
// --metrics-*, and the snapshot flags (the chunked wire format writes
// only materialized chunks). The observer-based instrumentation
// (--trace/--csv/--render-every/--profile-out/--telemetry), --carve-turns
// (which would materialize the whole grid), and --realization=message are
// rejected with a typed error (exit 2). Every round is audited with the
// §III-A oracles over the live chunks (parked/virgin chunks provably
// hold no entities); violations exit nonzero, as in the other modes.
//
// Snapshots (src/snapshot, all realizations): --snapshot-out writes the
// final engine state to FILE; with --snapshot-every=N the file is also
// rewritten every N rounds (crash-resumable runs). --restore=FILE warm
// starts from a snapshot taken under the SAME flags — the run then
// executes --rounds additional rounds, bit-identically to the
// uninterrupted run. A corrupt or mismatched snapshot exits 2 with a
// typed error on stderr.
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "chunk/chunked_system.hpp"
#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "geometry/rect.hpp"
#include "grid/path.hpp"
#include "msg/msg_audit.hpp"
#include "msg/msg_system.hpp"
#include "net/faulty_network.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/export.hpp"
#include "sim/observers.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "snapshot/snapshot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace cellflow;

/// Parses "i,j" into a CellId.
CellId parse_cell(const std::string& s) {
  const auto comma = s.find(',');
  if (comma == std::string::npos)
    throw std::runtime_error("expected i,j — got '" + s + "'");
  return CellId{std::stoi(s.substr(0, comma)), std::stoi(s.substr(comma + 1))};
}

/// Parses "START:END:COL" into a column partition: columns j < COL are
/// cut from columns j >= COL for rounds [START, END).
NetPartition parse_partition(const std::string& s, const Grid& grid) {
  const auto c1 = s.find(':');
  const auto c2 = s.find(':', c1 == std::string::npos ? s.size() : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos)
    throw std::runtime_error("expected START:END:COL — got '" + s + "'");
  NetPartition part{std::stoull(s.substr(0, c1)),
                    std::stoull(s.substr(c1 + 1, c2 - c1 - 1)),
                    CellMask(grid)};
  const int col = std::stoi(s.substr(c2 + 1));
  for (const CellId id : grid.all_cells())
    if (id.j < col) part.side.set(id);
  return part;
}

struct SnapshotOptions {
  std::string out;       // --snapshot-out: final (and periodic) state file
  std::uint64_t every = 0;  // --snapshot-every: rewrite cadence (0: end only)
  std::string restore;   // --restore: warm-start file
};

struct NetOptions {
  double loss = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  std::uint64_t delay_max = 1;
  std::uint64_t until = 0;  // 0: faults never cease
  std::uint64_t seed = 1;
  std::string partition;  // START:END:COL, empty: none

  [[nodiscard]] bool any() const {
    return loss > 0.0 || dup > 0.0 || delay > 0.0 || !partition.empty();
  }
};

/// The --realization=message driver: a manual round loop over the
/// MessageSystem (the Simulator drives the shared-variable System only),
/// auditing every round with the msg_audit oracles.
int run_message_mode(const MsgSystemConfig& cfg, std::uint64_t rounds,
                     double pf, double pr, std::uint64_t seed,
                     const NetOptions& net, const std::string& metrics_out,
                     std::uint64_t metrics_every, bool telemetry,
                     const SnapshotOptions& snap) {
  std::unique_ptr<NetworkModel> network;
  if (net.any()) {
    NetFaultSpec spec;
    spec.drop_prob = net.loss;
    spec.dup_prob = net.dup;
    spec.delay_prob = net.delay;
    spec.max_delay_rounds = net.delay_max;
    if (net.until > 0) spec.last_fault_round = net.until;
    if (!net.partition.empty())
      spec.partitions = {parse_partition(net.partition, Grid(cfg.side))};
    network = std::make_unique<FaultyNetwork>(spec, net.seed);
  }
  MessageSystem msg(cfg, std::move(network));

  // The environment's fail/recover stream travels with the snapshot, so a
  // restored run draws the same schedule tail as the uninterrupted one.
  Xoshiro256 fail_rng(seed ^ 0x51D);
  if (!snap.restore.empty()) {
    try {
      snapshot::restore(msg, snapshot::read_file(snap.restore), &fail_rng);
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  obs::MetricsRegistry registry;
  std::ofstream jsonl_file;
  std::optional<obs::EngineTelemetry> engine_telemetry;
  if (!metrics_out.empty()) {
    msg.set_metrics(&registry);
    if (telemetry) {
      engine_telemetry.emplace(registry, "message");
      msg.set_telemetry(&*engine_telemetry);
    }
    if (metrics_every > 0) {
      jsonl_file.open(metrics_out + ".jsonl");
      if (!jsonl_file) {
        std::cerr << "cannot open " << metrics_out << ".jsonl\n";
        return 2;
      }
    }
  }

  // Stochastic fail/recover mirroring the shared driver's model (each
  // round every live cell fails w.p. pf, every failed one recovers
  // w.p. pr; the target is not protected).
  std::string violation_report;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    if (pf > 0.0) {
      for (const CellId id : msg.grid().all_cells()) {
        if (msg.cell(id).failed) {
          if (fail_rng.bernoulli(pr)) msg.recover(id);
        } else if (fail_rng.bernoulli(pf)) {
          msg.fail(id);
        }
      }
    }
    msg.update();
    if (violation_report.empty()) {
      const auto violations = msg_audit::check_all(msg);
      if (!violations.empty()) {
        violation_report = violations.front().predicate + " at " +
                           to_string(violations.front().cell) + " round " +
                           std::to_string(k) + ": " +
                           violations.front().detail;
      }
    }
    if (jsonl_file.is_open() && (k + 1) % metrics_every == 0)
      jsonl_file << obs::jsonl_snapshot(registry, k + 1);
    if (!snap.out.empty() && snap.every > 0 && (k + 1) % snap.every == 0) {
      try {
        snapshot::write_file(snap.out, snapshot::save(msg, &fail_rng));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
      }
    }
  }
  if (jsonl_file.is_open()) jsonl_file << obs::jsonl_snapshot(registry, rounds);
  if (!snap.out.empty()) {
    try {
      snapshot::write_file(snap.out, snapshot::save(msg, &fail_rng));
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << '\n';
      return 2;
    }
    out << obs::to_prometheus(registry);
  }

  const NetworkModel& n = msg.network();
  std::cout << "realization=message round=" << msg.round()
            << " arrivals=" << msg.total_arrivals()
            << " injected=" << msg.total_injected() << '\n'
            << "throughput: "
            << (static_cast<double>(msg.total_arrivals()) /
                static_cast<double>(rounds))
            << "  messages: " << n.total_messages()
            << "  in-flight entities: " << msg.in_flight_entities().size()
            << '\n'
            << "net faults: dropped=" << n.fault_count(NetFault::kDropped)
            << " delayed=" << n.fault_count(NetFault::kDelayed)
            << " duplicated=" << n.fault_count(NetFault::kDuplicated)
            << " partitioned=" << n.fault_count(NetFault::kPartitioned)
            << "  expired grants: " << msg.expired_grants()
            << "  deferred accepts: " << msg.deferred_acceptances() << '\n'
            << "safety: "
            << (violation_report.empty() ? "CLEAN" : violation_report)
            << '\n';
  return violation_report.empty() ? 0 : 1;
}

/// The stochastic environment for the chunked driver: RandomFailRecover's
/// Bernoulli stream verbatim (one draw per cell per round, in id order,
/// pr when failed / pf otherwise), applied through ChunkedSystem's
/// fail/recover transitions. Same encode/decode word layout, so snapshots
/// carry the schedule exactly like the dense driver's model does.
class ChunkedFailEnv final : public FailureModel {
 public:
  ChunkedFailEnv(double pf, double pr, std::uint64_t seed)
      : pf_(pf), pr_(pr), rng_(seed) {}

  void apply(System&) override {}  // dense form; unused by this driver

  void apply_chunked(chunk::ChunkedSystem& sys) {
    for (const CellId id : sys.grid().all_cells()) {
      if (sys.cell(id).failed) {
        if (rng_.bernoulli(pr_)) sys.recover(id);
      } else if (rng_.bernoulli(pf_)) {
        sys.fail(id);
      }
    }
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    const auto words = rng_.state();
    out.insert(out.end(), words.begin(), words.end());
    out.push_back(total_failures_);
    out.push_back(total_recoveries_);
  }
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override {
    if (words.size() != 6) return false;
    rng_.set_state({words[0], words[1], words[2], words[3]});
    total_failures_ = words[4];
    total_recoveries_ = words[5];
    return true;
  }

 private:
  double pf_;
  double pr_;
  Xoshiro256 rng_;
  std::uint64_t total_failures_ = 0;
  std::uint64_t total_recoveries_ = 0;
};

/// The §III-A oracles of check_all(System) — Safe, Invariants 1/2, and
/// footprint separation — over a ChunkedSystem, reading live chunks
/// directly. Parked and virgin chunks provably hold no entities (store
/// invariant: occupied cells live in live chunks), so the scan cost is
/// proportional to the materialized region, not N². `seen` is caller-
/// owned scratch for the disjointness check (reused across rounds).
std::optional<Violation> check_chunked_safety(
    const chunk::ChunkedSystem& sys, std::unordered_set<EntityId>& seen) {
  const Params& prm = sys.params();
  const double d = prm.center_spacing();
  const double l = prm.entity_length();
  const double rs = prm.safety_gap();
  const double half = l / 2.0;
  const double eps = kPredicateEps;
  const chunk::ChunkedCellStore& store = sys.store();
  const chunk::ChunkLayout& layout = store.layout();
  seen.clear();
  for (std::size_t q = 0; q < layout.chunk_count(); ++q) {
    if (!store.is_live(q)) continue;
    const chunk::LiveChunk& lc = store.live(q);
    for (std::size_t slot = 0; slot < lc.cells.size(); ++slot) {
      const auto& members = lc.cells[slot].members;
      if (members.empty()) continue;
      const CellId id = layout.cell_at(q, slot);
      const auto i = static_cast<double>(id.i);
      const auto j = static_cast<double>(id.j);
      for (const Entity& p : members) {
        if (!seen.insert(p.id).second) {
          return Violation{"Invariant2", id,
                           to_string(p.id) + " appears in two cells"};
        }
        const bool in_bounds = p.center.x - half >= i - eps &&
                               p.center.x + half <= i + 1.0 + eps &&
                               p.center.y - half >= j - eps &&
                               p.center.y + half <= j + 1.0 + eps;
        if (!in_bounds) {
          return Violation{"Invariant1", id,
                           to_string(p.id) + " at " + to_string(p.center)};
        }
      }
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          const Vec2 pa = members[a].center;
          const Vec2 pb = members[b].center;
          if (std::abs(pa.x - pb.x) < d - eps &&
              std::abs(pa.y - pb.y) < d - eps) {
            return Violation{"Safe", id,
                             to_string(members[a].id) + " vs " +
                                 to_string(members[b].id)};
          }
          const Rect ra = members[a].footprint(l);
          const Rect rb = members[b].footprint(l);
          if (ra.overlaps(rb) || ra.linf_gap(rb) < rs - eps) {
            return Violation{"FootprintGap", id,
                             to_string(members[a].id) + " vs " +
                                 to_string(members[b].id)};
          }
        }
      }
    }
  }
  return std::nullopt;
}

/// The --store=chunked driver: a manual round loop over the sparse-world
/// engine (the Simulator and its observers drive the dense System only),
/// auditing every round with the oracle scan above.
int run_chunked_mode(const SystemConfig& cfg, const std::string& policy,
                     std::uint64_t seed, RoundScheduler scheduler,
                     std::uint64_t threads, std::uint64_t rounds, double pf,
                     double pr, const std::string& metrics_out,
                     std::uint64_t metrics_every, const SnapshotOptions& snap) {
  chunk::ChunkedSystem sys(cfg, make_choose_policy(policy, seed));
  sys.set_round_scheduler(scheduler);
  if (threads > 0)
    sys.set_parallel_policy(
        ParallelPolicy::parallel(static_cast<int>(threads)));

  // Same environment construction as the dense shared driver (seed ^
  // 0x51D, one Bernoulli per cell per round), so the two stores see the
  // identical fail/recover schedule for the same flags.
  std::unique_ptr<FailureModel> failures;
  ChunkedFailEnv* env = nullptr;
  if (pf > 0.0) {
    auto owned = std::make_unique<ChunkedFailEnv>(pf, pr, seed ^ 0x51D);
    env = owned.get();
    failures = std::move(owned);
  } else {
    failures = std::make_unique<NoFailures>();
  }

  if (!snap.restore.empty()) {
    try {
      snapshot::restore(sys, snapshot::read_file(snap.restore),
                        failures.get());
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  obs::MetricsRegistry registry;
  std::ofstream jsonl_file;
  if (!metrics_out.empty()) {
    sys.set_metrics(&registry);
    if (metrics_every > 0) {
      jsonl_file.open(metrics_out + ".jsonl");
      if (!jsonl_file) {
        std::cerr << "cannot open " << metrics_out << ".jsonl\n";
        return 2;
      }
    }
  }

  std::string violation_report;
  std::unordered_set<EntityId> oracle_scratch;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    if (env != nullptr) env->apply_chunked(sys);
    sys.update();
    if (violation_report.empty()) {
      if (const auto v = check_chunked_safety(sys, oracle_scratch)) {
        violation_report = v->predicate + " at " + to_string(v->cell) +
                           " round " + std::to_string(k) + ": " + v->detail;
      }
    }
    if (jsonl_file.is_open() && (k + 1) % metrics_every == 0)
      jsonl_file << obs::jsonl_snapshot(registry, k + 1);
    if (!snap.out.empty() && snap.every > 0 && (k + 1) % snap.every == 0) {
      try {
        snapshot::write_file(snap.out, snapshot::save(sys, failures.get()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
      }
    }
  }
  if (jsonl_file.is_open()) jsonl_file << obs::jsonl_snapshot(registry, rounds);
  if (!snap.out.empty()) {
    try {
      snapshot::write_file(snap.out, snapshot::save(sys, failures.get()));
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << '\n';
      return 2;
    }
    out << obs::to_prometheus(registry);
  }

  const chunk::ChunkedCellStore& store = sys.store();
  std::cout << "store=chunked round=" << sys.round()
            << " arrivals=" << sys.total_arrivals()
            << " injected=" << sys.total_injected() << '\n'
            << "throughput: "
            << (static_cast<double>(sys.total_arrivals()) /
                static_cast<double>(rounds))
            << "  entities in system: " << sys.entity_count() << '\n'
            << "chunks: live=" << store.live_count()
            << " parked=" << store.parked_count() << " virgin="
            << (store.chunk_count() - store.live_count() -
                store.parked_count())
            << "  resident bytes: " << store.resident_bytes()
            << "  materialized total: " << store.stats().materialized_total
            << '\n'
            << "safety: "
            << (violation_report.empty() ? "CLEAN" : violation_report)
            << '\n';
  return violation_report.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto side = static_cast<int>(cli.get_uint("side", 8, "grid side N"));
  const double l = cli.get_double("l", 0.25, "entity side length");
  const double rs = cli.get_double("rs", 0.05, "safety gap");
  const double v = cli.get_double("v", 0.1, "cell velocity");
  const std::string source_s =
      cli.get_string("source", "1,0", "source cell i,j");
  const std::string target_s =
      cli.get_string("target", "", "target cell i,j (default: top of source column)");
  const auto rounds = cli.get_uint("rounds", 2500, "rounds to simulate");
  const double pf = cli.get_double("pf", 0.0, "per-round failure probability");
  const double pr = cli.get_double("pr", 0.1, "per-round recovery probability");
  const std::string policy =
      cli.get_string("policy", "round-robin", "token policy: round-robin|random|lowest-id");
  const std::string movement =
      cli.get_string("movement", "coupled", "movement rule: coupled|compacting");
  const auto carve_turns = cli.get_int("carve-turns", -1,
                                       "carve a length-8 path with N turns (-1: off)");
  const auto render_every =
      cli.get_uint("render-every", 0, "ASCII render every N rounds (0: off)");
  const bool dump_trace = cli.get_bool("trace", false, "print the event trace");
  const bool emit_csv = cli.get_bool("csv", false, "print a CSV summary record");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  const auto threads = cli.get_uint(
      "threads", 0,
      "round-engine worker threads (0: $CELLFLOW_THREADS or serial)");
  const std::string scheduler_s = cli.get_string(
      "scheduler", "active",
      "round scheduler: active (skip quiescent cells) | exhaustive");
  const std::string metrics_out = cli.get_string(
      "metrics-out", "", "write a Prometheus text snapshot here");
  const auto metrics_every = cli.get_uint(
      "metrics-every", 0,
      "also stream a JSONL metrics line every N rounds to "
      "<metrics-out>.jsonl (0: off)");
  const std::string profile_out = cli.get_string(
      "profile-out", "", "write a Chrome trace_event JSON profile here");
  const bool telemetry = cli.get_bool(
      "telemetry", false,
      "add engine telemetry (round decomposition, imbalance, serial "
      "fraction) to the --metrics-out registry");
  const std::string realization = cli.get_string(
      "realization", "shared",
      "protocol realization: shared (variable) | message (passing)");
  const std::string store_s = cli.get_string(
      "store", "dense",
      "cell store: dense (N^2 vector) | chunked (sparse 32x32 tiles)");
  NetOptions net;
  net.loss =
      cli.get_double("net-loss", 0.0, "message drop probability (message)");
  net.dup = cli.get_double("net-dup", 0.0,
                           "message duplication probability (message)");
  net.delay =
      cli.get_double("net-delay", 0.0, "message delay probability (message)");
  net.delay_max = cli.get_uint("net-delay-max", 1,
                               "max delay in rounds (message)");
  net.until = cli.get_uint(
      "net-until", 0, "last faulty round (0: faults never cease) (message)");
  net.seed = cli.get_uint("net-seed", 1, "fault-schedule rng seed (message)");
  net.partition = cli.get_string(
      "partition", "",
      "cut columns j<COL for rounds [START,END): START:END:COL (message)");
  SnapshotOptions snap;
  snap.out = cli.get_string("snapshot-out", "",
                            "write the final engine state snapshot here");
  snap.every = cli.get_uint(
      "snapshot-every", 0,
      "also rewrite --snapshot-out every N rounds (0: end of run only)");
  snap.restore = cli.get_string(
      "restore", "", "warm-start from a snapshot taken under the same flags");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  if (realization != "shared" && realization != "message") {
    std::cerr << "unknown realization: " << realization << '\n';
    return 2;
  }
  if (store_s != "dense" && store_s != "chunked") {
    std::cerr << "unknown store: " << store_s << '\n';
    return 2;
  }
  if (store_s == "chunked" && realization == "message") {
    std::cerr << "--store=chunked requires --realization=shared\n";
    return 2;
  }
  if (snap.every > 0 && snap.out.empty()) {
    std::cerr << "--snapshot-every requires --snapshot-out\n";
    return 2;
  }
  if (realization == "shared" && (net.any() || net.until > 0)) {
    std::cerr << "--net-*/--partition require --realization=message\n";
    return 2;
  }
  if (realization == "message") {
    if (movement != "coupled" || carve_turns >= 0 || threads > 0 ||
        policy != "round-robin" || dump_trace || !profile_out.empty() ||
        render_every > 0 || emit_csv || scheduler_s != "active") {
      std::cerr << "--realization=message supports only the core flags "
                   "(side/l/rs/v/source/target/rounds/pf/pr/seed, --net-*, "
                   "--partition, --metrics-*)\n";
      return 2;
    }
    MsgSystemConfig mcfg;
    mcfg.side = side;
    mcfg.params = Params(l, rs, v);
    const CellId msource = parse_cell(source_s);
    mcfg.sources = {msource};
    mcfg.target = target_s.empty() ? CellId{msource.i, side - 1}
                                   : parse_cell(target_s);
    return run_message_mode(mcfg, rounds, pf, pr, seed, net, metrics_out,
                            metrics_every, telemetry, snap);
  }

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  if (movement == "coupled") {
    cfg.movement_rule = MovementRule::kCoupled;
  } else if (movement == "compacting") {
    cfg.movement_rule = MovementRule::kCompacting;
  } else {
    std::cerr << "unknown movement rule: " << movement << '\n';
    return 2;
  }

  if (store_s == "chunked") {
    // Observer-based instrumentation drives the dense System only, and
    // carving would fail (hence materialize) every off-path chunk —
    // defeating the sparse store. Typed rejection, same taxonomy as the
    // message-mode check.
    if (carve_turns >= 0 || dump_trace || emit_csv || render_every > 0 ||
        !profile_out.empty() || telemetry) {
      std::cerr << "--store=chunked supports only the core flags "
                   "(side/l/rs/v/source/target/rounds/pf/pr/seed), "
                   "--policy, --movement, --threads, --scheduler, "
                   "--metrics-*, and --snapshot-*/--restore\n";
      return 2;
    }
    const CellId source = parse_cell(source_s);
    cfg.sources = {source};
    cfg.target = target_s.empty() ? CellId{source.i, side - 1}
                                  : parse_cell(target_s);
    RoundScheduler scheduler;
    if (scheduler_s == "active") {
      scheduler = RoundScheduler::kActiveSet;
    } else if (scheduler_s == "exhaustive") {
      scheduler = RoundScheduler::kExhaustive;
    } else {
      std::cerr << "unknown scheduler: " << scheduler_s << '\n';
      return 2;
    }
    return run_chunked_mode(cfg, policy, seed, scheduler, threads, rounds, pf,
                            pr, metrics_out, metrics_every, snap);
  }

  std::optional<Path> carved;
  if (carve_turns >= 0) {
    const Grid grid(side);
    carved = make_turning_path(grid, CellId{0, 0}, Direction::kNorth,
                               Direction::kEast, 8,
                               static_cast<std::size_t>(carve_turns));
    cfg.sources = {carved->source()};
    cfg.target = carved->target();
  } else {
    const CellId source = parse_cell(source_s);
    cfg.sources = {source};
    cfg.target = target_s.empty() ? CellId{source.i, side - 1}
                                  : parse_cell(target_s);
  }

  System sys(cfg, make_choose_policy(policy, seed));
  if (scheduler_s == "active") {
    sys.set_round_scheduler(RoundScheduler::kActiveSet);
  } else if (scheduler_s == "exhaustive") {
    sys.set_round_scheduler(RoundScheduler::kExhaustive);
  } else {
    std::cerr << "unknown scheduler: " << scheduler_s << '\n';
    return 2;
  }
  if (threads > 0)
    sys.set_parallel_policy(
        ParallelPolicy::parallel(static_cast<int>(threads)));
  if (carved.has_value()) carve_path(sys, *carved);

  std::unique_ptr<FailureModel> failures;
  if (pf > 0.0) {
    failures = std::make_unique<RandomFailRecover>(pf, pr, seed ^ 0x51D);
  } else {
    failures = std::make_unique<NoFailures>();
  }

  if (!snap.restore.empty()) {
    try {
      snapshot::restore(sys, snapshot::read_file(snap.restore),
                        failures.get());
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  Simulator sim(sys, *failures);
  ThroughputMeter meter;
  SafetyMonitor safety;
  BlockingStats blocking;
  OccupancyTracker occupancy;
  ProgressTracker progress;
  TraceRecorder trace;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(blocking);
  sim.add_observer(occupancy);
  sim.add_observer(progress);
  if (dump_trace) sim.add_observer(trace);

  obs::MetricsRegistry registry;
  std::optional<MetricsObserver> metrics_obs;
  std::ofstream jsonl_file;
  if (!metrics_out.empty()) {
    sim.set_metrics(&registry);
    metrics_obs.emplace(registry);
    if (metrics_every > 0) {
      jsonl_file.open(metrics_out + ".jsonl");
      if (!jsonl_file) {
        std::cerr << "cannot open " << metrics_out << ".jsonl\n";
        return 2;
      }
      metrics_obs->stream_jsonl(&jsonl_file, metrics_every);
    }
    sim.add_observer(*metrics_obs);
  }
  std::optional<obs::EngineTelemetry> engine_telemetry;
  if (telemetry) {
    engine_telemetry.emplace(registry, "shared");
    sim.set_telemetry(&*engine_telemetry);
  }
  obs::PhaseProfiler profiler;
  if (!profile_out.empty()) sim.set_profiler(&profiler);

  for (std::uint64_t k = 0; k < rounds; ++k) {
    sim.step();
    if (render_every > 0 && (k + 1) % render_every == 0) {
      std::cout << "-- " << render_summary(sys) << " --\n"
                << render_ascii(sys) << '\n';
    }
    if (!snap.out.empty() && snap.every > 0 && (k + 1) % snap.every == 0) {
      try {
        snapshot::write_file(snap.out,
                             snapshot::save(sys, failures.get()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
      }
    }
  }
  sim.finish();

  if (!snap.out.empty()) {
    try {
      snapshot::write_file(snap.out, snapshot::save(sys, failures.get()));
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << '\n';
      return 2;
    }
    out << obs::to_prometheus(registry);
  }
  if (!profile_out.empty()) {
    std::ofstream out(profile_out);
    if (!out) {
      std::cerr << "cannot open " << profile_out << '\n';
      return 2;
    }
    out << obs::to_chrome_trace(profiler);
  }

  if (dump_trace) std::cout << trace.serialize();

  std::cout << render_summary(sys) << '\n'
            << "throughput: " << meter.throughput()
            << "  mean latency: " << progress.latency().mean()
            << "  mean population: " << occupancy.population().mean()
            << "  blocked/round: " << blocking.mean_blocked_per_round()
            << '\n'
            << "safety: " << (safety.clean() ? "CLEAN" : safety.report())
            << '\n';

  if (emit_csv) {
    CsvWriter csv(std::cout);
    csv.header({"side", "l", "rs", "v", "pf", "pr", "policy", "movement",
                "rounds", "throughput", "mean_latency", "safety_clean"});
    csv.field(std::uint64_t{static_cast<std::uint64_t>(side)})
        .field(l)
        .field(rs)
        .field(v)
        .field(pf)
        .field(pr)
        .field(policy)
        .field(movement)
        .field(rounds)
        .field(meter.throughput())
        .field(progress.latency().mean())
        .field(std::uint64_t{safety.clean() ? 1u : 0u});
    csv.end_row();
  }
  return safety.clean() ? 0 : 1;
}
