// cellflow_sim — the general-purpose simulation driver: run any
// configuration of the protocol from the command line, with all the
// instrumentation the library offers, without writing C++.
//
//   cellflow_sim --side=8 --l=0.25 --rs=0.05 --v=0.1
//                --source=1,0 --target=1,7 --rounds=2500
//                [--pf=0.02 --pr=0.1] [--policy=round-robin]
//                [--movement=coupled|compacting] [--carve-turns=N]
//                [--render-every=0] [--trace=false] [--csv=false]
//                [--seed=1] [--threads=0]
//                [--metrics-out=FILE] [--metrics-every=0]
//                [--profile-out=FILE]
//
// Prints a one-line summary plus (optionally) periodic ASCII renders, the
// full event trace, and a machine-readable CSV record. --metrics-out
// writes a Prometheus text snapshot (plus a JSONL stream next to it when
// --metrics-every > 0); --profile-out writes a Chrome trace_event JSON
// viewable in Perfetto. Exits nonzero if any §III-A safety oracle fires —
// so the tool doubles as a conformance checker for modified protocol
// variants.
#include <fstream>
#include <iostream>
#include <string>

#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "obs/export.hpp"
#include "sim/observers.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace cellflow;

/// Parses "i,j" into a CellId.
CellId parse_cell(const std::string& s) {
  const auto comma = s.find(',');
  if (comma == std::string::npos)
    throw std::runtime_error("expected i,j — got '" + s + "'");
  return CellId{std::stoi(s.substr(0, comma)), std::stoi(s.substr(comma + 1))};
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto side = static_cast<int>(cli.get_uint("side", 8, "grid side N"));
  const double l = cli.get_double("l", 0.25, "entity side length");
  const double rs = cli.get_double("rs", 0.05, "safety gap");
  const double v = cli.get_double("v", 0.1, "cell velocity");
  const std::string source_s =
      cli.get_string("source", "1,0", "source cell i,j");
  const std::string target_s =
      cli.get_string("target", "", "target cell i,j (default: top of source column)");
  const auto rounds = cli.get_uint("rounds", 2500, "rounds to simulate");
  const double pf = cli.get_double("pf", 0.0, "per-round failure probability");
  const double pr = cli.get_double("pr", 0.1, "per-round recovery probability");
  const std::string policy =
      cli.get_string("policy", "round-robin", "token policy: round-robin|random|lowest-id");
  const std::string movement =
      cli.get_string("movement", "coupled", "movement rule: coupled|compacting");
  const auto carve_turns = cli.get_int("carve-turns", -1,
                                       "carve a length-8 path with N turns (-1: off)");
  const auto render_every =
      cli.get_uint("render-every", 0, "ASCII render every N rounds (0: off)");
  const bool dump_trace = cli.get_bool("trace", false, "print the event trace");
  const bool emit_csv = cli.get_bool("csv", false, "print a CSV summary record");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  const auto threads = cli.get_uint(
      "threads", 0,
      "round-engine worker threads (0: $CELLFLOW_THREADS or serial)");
  const std::string metrics_out = cli.get_string(
      "metrics-out", "", "write a Prometheus text snapshot here");
  const auto metrics_every = cli.get_uint(
      "metrics-every", 0,
      "also stream a JSONL metrics line every N rounds to "
      "<metrics-out>.jsonl (0: off)");
  const std::string profile_out = cli.get_string(
      "profile-out", "", "write a Chrome trace_event JSON profile here");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  if (movement == "coupled") {
    cfg.movement_rule = MovementRule::kCoupled;
  } else if (movement == "compacting") {
    cfg.movement_rule = MovementRule::kCompacting;
  } else {
    std::cerr << "unknown movement rule: " << movement << '\n';
    return 2;
  }

  std::optional<Path> carved;
  if (carve_turns >= 0) {
    const Grid grid(side);
    carved = make_turning_path(grid, CellId{0, 0}, Direction::kNorth,
                               Direction::kEast, 8,
                               static_cast<std::size_t>(carve_turns));
    cfg.sources = {carved->source()};
    cfg.target = carved->target();
  } else {
    const CellId source = parse_cell(source_s);
    cfg.sources = {source};
    cfg.target = target_s.empty() ? CellId{source.i, side - 1}
                                  : parse_cell(target_s);
  }

  System sys(cfg, make_choose_policy(policy, seed));
  if (threads > 0)
    sys.set_parallel_policy(
        ParallelPolicy::parallel(static_cast<int>(threads)));
  if (carved.has_value()) carve_path(sys, *carved);

  std::unique_ptr<FailureModel> failures;
  if (pf > 0.0) {
    failures = std::make_unique<RandomFailRecover>(pf, pr, seed ^ 0x51D);
  } else {
    failures = std::make_unique<NoFailures>();
  }

  Simulator sim(sys, *failures);
  ThroughputMeter meter;
  SafetyMonitor safety;
  BlockingStats blocking;
  OccupancyTracker occupancy;
  ProgressTracker progress;
  TraceRecorder trace;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(blocking);
  sim.add_observer(occupancy);
  sim.add_observer(progress);
  if (dump_trace) sim.add_observer(trace);

  obs::MetricsRegistry registry;
  std::optional<MetricsObserver> metrics_obs;
  std::ofstream jsonl_file;
  if (!metrics_out.empty()) {
    sim.set_metrics(&registry);
    metrics_obs.emplace(registry);
    if (metrics_every > 0) {
      jsonl_file.open(metrics_out + ".jsonl");
      if (!jsonl_file) {
        std::cerr << "cannot open " << metrics_out << ".jsonl\n";
        return 2;
      }
      metrics_obs->stream_jsonl(&jsonl_file, metrics_every);
    }
    sim.add_observer(*metrics_obs);
  }
  obs::PhaseProfiler profiler;
  if (!profile_out.empty()) sim.set_profiler(&profiler);

  for (std::uint64_t k = 0; k < rounds; ++k) {
    sim.step();
    if (render_every > 0 && (k + 1) % render_every == 0) {
      std::cout << "-- " << render_summary(sys) << " --\n"
                << render_ascii(sys) << '\n';
    }
  }
  sim.finish();

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << '\n';
      return 2;
    }
    out << obs::to_prometheus(registry);
  }
  if (!profile_out.empty()) {
    std::ofstream out(profile_out);
    if (!out) {
      std::cerr << "cannot open " << profile_out << '\n';
      return 2;
    }
    out << obs::to_chrome_trace(profiler);
  }

  if (dump_trace) std::cout << trace.serialize();

  std::cout << render_summary(sys) << '\n'
            << "throughput: " << meter.throughput()
            << "  mean latency: " << progress.latency().mean()
            << "  mean population: " << occupancy.population().mean()
            << "  blocked/round: " << blocking.mean_blocked_per_round()
            << '\n'
            << "safety: " << (safety.clean() ? "CLEAN" : safety.report())
            << '\n';

  if (emit_csv) {
    CsvWriter csv(std::cout);
    csv.header({"side", "l", "rs", "v", "pf", "pr", "policy", "movement",
                "rounds", "throughput", "mean_latency", "safety_clean"});
    csv.field(std::uint64_t{static_cast<std::uint64_t>(side)})
        .field(l)
        .field(rs)
        .field(v)
        .field(pf)
        .field(pr)
        .field(policy)
        .field(movement)
        .field(rounds)
        .field(meter.throughput())
        .field(progress.latency().mean())
        .field(std::uint64_t{safety.clean() ? 1u : 0u});
    csv.end_row();
  }
  return safety.clean() ? 0 : 1;
}
