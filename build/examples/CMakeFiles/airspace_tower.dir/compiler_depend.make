# Empty compiler generated dependencies file for airspace_tower.
# This may be replaced when dependencies are built.
