file(REMOVE_RECURSE
  "CMakeFiles/airspace_tower.dir/airspace_tower.cpp.o"
  "CMakeFiles/airspace_tower.dir/airspace_tower.cpp.o.d"
  "airspace_tower"
  "airspace_tower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airspace_tower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
