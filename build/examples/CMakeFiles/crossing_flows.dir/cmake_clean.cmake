file(REMOVE_RECURSE
  "CMakeFiles/crossing_flows.dir/crossing_flows.cpp.o"
  "CMakeFiles/crossing_flows.dir/crossing_flows.cpp.o.d"
  "crossing_flows"
  "crossing_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossing_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
