# Empty compiler generated dependencies file for crossing_flows.
# This may be replaced when dependencies are built.
