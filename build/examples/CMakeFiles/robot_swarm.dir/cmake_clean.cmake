file(REMOVE_RECURSE
  "CMakeFiles/robot_swarm.dir/robot_swarm.cpp.o"
  "CMakeFiles/robot_swarm.dir/robot_swarm.cpp.o.d"
  "robot_swarm"
  "robot_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
