file(REMOVE_RECURSE
  "CMakeFiles/highway_corridor.dir/highway_corridor.cpp.o"
  "CMakeFiles/highway_corridor.dir/highway_corridor.cpp.o.d"
  "highway_corridor"
  "highway_corridor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_corridor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
