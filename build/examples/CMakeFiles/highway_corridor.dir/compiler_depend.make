# Empty compiler generated dependencies file for highway_corridor.
# This may be replaced when dependencies are built.
