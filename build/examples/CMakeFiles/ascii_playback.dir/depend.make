# Empty dependencies file for ascii_playback.
# This may be replaced when dependencies are built.
