file(REMOVE_RECURSE
  "CMakeFiles/ascii_playback.dir/ascii_playback.cpp.o"
  "CMakeFiles/ascii_playback.dir/ascii_playback.cpp.o.d"
  "ascii_playback"
  "ascii_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
