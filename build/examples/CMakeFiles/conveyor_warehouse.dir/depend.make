# Empty dependencies file for conveyor_warehouse.
# This may be replaced when dependencies are built.
