file(REMOVE_RECURSE
  "CMakeFiles/conveyor_warehouse.dir/conveyor_warehouse.cpp.o"
  "CMakeFiles/conveyor_warehouse.dir/conveyor_warehouse.cpp.o.d"
  "conveyor_warehouse"
  "conveyor_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conveyor_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
