# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart" "--rounds=120")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.highway_corridor "/root/repo/build/examples/highway_corridor" "--rounds=400")
set_tests_properties(example.highway_corridor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.conveyor_warehouse "/root/repo/build/examples/conveyor_warehouse" "--rounds=800")
set_tests_properties(example.conveyor_warehouse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.failure_storm "/root/repo/build/examples/failure_storm" "--rounds=600")
set_tests_properties(example.failure_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.ascii_playback "/root/repo/build/examples/ascii_playback" "--rounds=12" "--every=6")
set_tests_properties(example.ascii_playback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.crossing_flows "/root/repo/build/examples/crossing_flows" "--rounds=400")
set_tests_properties(example.crossing_flows PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.airspace_tower "/root/repo/build/examples/airspace_tower" "--rounds=600")
set_tests_properties(example.airspace_tower PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.robot_swarm "/root/repo/build/examples/robot_swarm" "--rounds=300")
set_tests_properties(example.robot_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
