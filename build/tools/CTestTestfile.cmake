# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool.sim.default "/root/repo/build/tools/cellflow_sim" "--rounds=400")
set_tests_properties(tool.sim.default PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.sim.failures "/root/repo/build/tools/cellflow_sim" "--rounds=600" "--pf=0.02" "--pr=0.1" "--policy=random")
set_tests_properties(tool.sim.failures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.sim.compacting "/root/repo/build/tools/cellflow_sim" "--rounds=400" "--movement=compacting")
set_tests_properties(tool.sim.compacting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.sim.carved "/root/repo/build/tools/cellflow_sim" "--rounds=400" "--carve-turns=3")
set_tests_properties(tool.sim.carved PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool.sim.trace_csv "/root/repo/build/tools/cellflow_sim" "--rounds=100" "--trace=true" "--csv=true" "--render-every=50")
set_tests_properties(tool.sim.trace_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
