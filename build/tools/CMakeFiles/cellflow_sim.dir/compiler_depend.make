# Empty compiler generated dependencies file for cellflow_sim.
# This may be replaced when dependencies are built.
