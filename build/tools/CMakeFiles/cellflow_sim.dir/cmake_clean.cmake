file(REMOVE_RECURSE
  "CMakeFiles/cellflow_sim.dir/cellflow_sim.cpp.o"
  "CMakeFiles/cellflow_sim.dir/cellflow_sim.cpp.o.d"
  "cellflow_sim"
  "cellflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
