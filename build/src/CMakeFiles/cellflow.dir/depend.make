# Empty dependencies file for cellflow.
# This may be replaced when dependencies are built.
