file(REMOVE_RECURSE
  "libcellflow.a"
)
