
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/choose.cpp" "src/CMakeFiles/cellflow.dir/core/choose.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/choose.cpp.o.d"
  "/root/repo/src/core/move.cpp" "src/CMakeFiles/cellflow.dir/core/move.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/move.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/cellflow.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/params.cpp.o.d"
  "/root/repo/src/core/predicates.cpp" "src/CMakeFiles/cellflow.dir/core/predicates.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/predicates.cpp.o.d"
  "/root/repo/src/core/route.cpp" "src/CMakeFiles/cellflow.dir/core/route.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/route.cpp.o.d"
  "/root/repo/src/core/signal.cpp" "src/CMakeFiles/cellflow.dir/core/signal.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/signal.cpp.o.d"
  "/root/repo/src/core/source.cpp" "src/CMakeFiles/cellflow.dir/core/source.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/source.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/cellflow.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/core/system.cpp.o.d"
  "/root/repo/src/failure/failure_model.cpp" "src/CMakeFiles/cellflow.dir/failure/failure_model.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/failure/failure_model.cpp.o.d"
  "/root/repo/src/flow3d/grid3.cpp" "src/CMakeFiles/cellflow.dir/flow3d/grid3.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/flow3d/grid3.cpp.o.d"
  "/root/repo/src/flow3d/predicates3.cpp" "src/CMakeFiles/cellflow.dir/flow3d/predicates3.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/flow3d/predicates3.cpp.o.d"
  "/root/repo/src/flow3d/system3.cpp" "src/CMakeFiles/cellflow.dir/flow3d/system3.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/flow3d/system3.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/CMakeFiles/cellflow.dir/grid/grid.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/grid/grid.cpp.o.d"
  "/root/repo/src/grid/mask.cpp" "src/CMakeFiles/cellflow.dir/grid/mask.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/grid/mask.cpp.o.d"
  "/root/repo/src/grid/path.cpp" "src/CMakeFiles/cellflow.dir/grid/path.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/grid/path.cpp.o.d"
  "/root/repo/src/hexflow/hex_grid.cpp" "src/CMakeFiles/cellflow.dir/hexflow/hex_grid.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/hexflow/hex_grid.cpp.o.d"
  "/root/repo/src/hexflow/hex_system.cpp" "src/CMakeFiles/cellflow.dir/hexflow/hex_system.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/hexflow/hex_system.cpp.o.d"
  "/root/repo/src/msg/msg_system.cpp" "src/CMakeFiles/cellflow.dir/msg/msg_system.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/msg/msg_system.cpp.o.d"
  "/root/repo/src/msg/network.cpp" "src/CMakeFiles/cellflow.dir/msg/network.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/msg/network.cpp.o.d"
  "/root/repo/src/multiflow/mf_predicates.cpp" "src/CMakeFiles/cellflow.dir/multiflow/mf_predicates.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/multiflow/mf_predicates.cpp.o.d"
  "/root/repo/src/multiflow/mf_system.cpp" "src/CMakeFiles/cellflow.dir/multiflow/mf_system.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/multiflow/mf_system.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/cellflow.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/observers.cpp" "src/CMakeFiles/cellflow.dir/sim/observers.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/sim/observers.cpp.o.d"
  "/root/repo/src/sim/render.cpp" "src/CMakeFiles/cellflow.dir/sim/render.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/sim/render.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/cellflow.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/cellflow.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/cellflow.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/cellflow.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/dist_value.cpp" "src/CMakeFiles/cellflow.dir/util/dist_value.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/dist_value.cpp.o.d"
  "/root/repo/src/util/ids.cpp" "src/CMakeFiles/cellflow.dir/util/ids.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/ids.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/cellflow.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/cellflow.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/cellflow.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/cellflow.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cellflow.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
