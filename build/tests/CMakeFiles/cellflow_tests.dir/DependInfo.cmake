
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_choose.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_choose.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_choose.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_dist_value.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_dist_value.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_dist_value.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failure_model.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_failure_model.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_failure_model.cpp.o.d"
  "/root/repo/tests/test_fairness.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_fairness.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_fairness.cpp.o.d"
  "/root/repo/tests/test_flow3d.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_flow3d.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_flow3d.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_golden_trace.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_golden_trace.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_golden_trace.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_hexflow.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_hexflow.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_hexflow.cpp.o.d"
  "/root/repo/tests/test_ids.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_ids.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_ids.cpp.o.d"
  "/root/repo/tests/test_lemmas.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_lemmas.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_lemmas.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_mask.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_mask.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_mask.cpp.o.d"
  "/root/repo/tests/test_move.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_move.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_move.cpp.o.d"
  "/root/repo/tests/test_msg_system.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_msg_system.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_msg_system.cpp.o.d"
  "/root/repo/tests/test_multiflow.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_multiflow.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_multiflow.cpp.o.d"
  "/root/repo/tests/test_observers.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_observers.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_observers.cpp.o.d"
  "/root/repo/tests/test_parallel_system.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_parallel_system.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_parallel_system.cpp.o.d"
  "/root/repo/tests/test_params.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_params.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_params.cpp.o.d"
  "/root/repo/tests/test_path.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_path.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_path.cpp.o.d"
  "/root/repo/tests/test_predicates.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_predicates.cpp.o.d"
  "/root/repo/tests/test_progress.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_progress.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_progress.cpp.o.d"
  "/root/repo/tests/test_random_topology.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_random_topology.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_random_topology.cpp.o.d"
  "/root/repo/tests/test_relaxed_coupling.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_relaxed_coupling.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_relaxed_coupling.cpp.o.d"
  "/root/repo/tests/test_render.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_render.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_render.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_route.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_route.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_route.cpp.o.d"
  "/root/repo/tests/test_route_stabilization.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_route_stabilization.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_route_stabilization.cpp.o.d"
  "/root/repo/tests/test_safety_random.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_safety_random.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_safety_random.cpp.o.d"
  "/root/repo/tests/test_self_stabilization.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_self_stabilization.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_self_stabilization.cpp.o.d"
  "/root/repo/tests/test_signal.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_signal.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_signal.cpp.o.d"
  "/root/repo/tests/test_signal_necessity.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_signal_necessity.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_signal_necessity.cpp.o.d"
  "/root/repo/tests/test_source.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_source.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_source.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_theory_bounds.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_theory_bounds.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_theory_bounds.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trends.cpp" "tests/CMakeFiles/cellflow_tests.dir/test_trends.cpp.o" "gcc" "tests/CMakeFiles/cellflow_tests.dir/test_trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cellflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
