# Empty dependencies file for cellflow_tests.
# This may be replaced when dependencies are built.
