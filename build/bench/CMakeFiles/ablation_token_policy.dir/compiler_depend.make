# Empty compiler generated dependencies file for ablation_token_policy.
# This may be replaced when dependencies are built.
