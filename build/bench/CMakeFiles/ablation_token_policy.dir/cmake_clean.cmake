file(REMOVE_RECURSE
  "CMakeFiles/ablation_token_policy.dir/ablation_token_policy.cpp.o"
  "CMakeFiles/ablation_token_policy.dir/ablation_token_policy.cpp.o.d"
  "ablation_token_policy"
  "ablation_token_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_token_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
