# Empty compiler generated dependencies file for ext_hex_throughput.
# This may be replaced when dependencies are built.
