file(REMOVE_RECURSE
  "CMakeFiles/ext_hex_throughput.dir/ext_hex_throughput.cpp.o"
  "CMakeFiles/ext_hex_throughput.dir/ext_hex_throughput.cpp.o.d"
  "ext_hex_throughput"
  "ext_hex_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hex_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
