# Empty compiler generated dependencies file for ablation_signal_necessity.
# This may be replaced when dependencies are built.
