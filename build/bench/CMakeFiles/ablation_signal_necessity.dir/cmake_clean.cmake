file(REMOVE_RECURSE
  "CMakeFiles/ablation_signal_necessity.dir/ablation_signal_necessity.cpp.o"
  "CMakeFiles/ablation_signal_necessity.dir/ablation_signal_necessity.cpp.o.d"
  "ablation_signal_necessity"
  "ablation_signal_necessity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signal_necessity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
