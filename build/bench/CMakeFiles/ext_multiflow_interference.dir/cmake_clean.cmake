file(REMOVE_RECURSE
  "CMakeFiles/ext_multiflow_interference.dir/ext_multiflow_interference.cpp.o"
  "CMakeFiles/ext_multiflow_interference.dir/ext_multiflow_interference.cpp.o.d"
  "ext_multiflow_interference"
  "ext_multiflow_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiflow_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
