file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_distribution.dir/ablation_latency_distribution.cpp.o"
  "CMakeFiles/ablation_latency_distribution.dir/ablation_latency_distribution.cpp.o.d"
  "ablation_latency_distribution"
  "ablation_latency_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
