# Empty dependencies file for ablation_latency_distribution.
# This may be replaced when dependencies are built.
