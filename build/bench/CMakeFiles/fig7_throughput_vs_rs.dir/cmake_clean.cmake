file(REMOVE_RECURSE
  "CMakeFiles/fig7_throughput_vs_rs.dir/fig7_throughput_vs_rs.cpp.o"
  "CMakeFiles/fig7_throughput_vs_rs.dir/fig7_throughput_vs_rs.cpp.o.d"
  "fig7_throughput_vs_rs"
  "fig7_throughput_vs_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_throughput_vs_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
