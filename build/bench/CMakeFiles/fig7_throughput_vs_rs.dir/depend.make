# Empty dependencies file for fig7_throughput_vs_rs.
# This may be replaced when dependencies are built.
