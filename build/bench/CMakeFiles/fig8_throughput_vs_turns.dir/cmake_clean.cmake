file(REMOVE_RECURSE
  "CMakeFiles/fig8_throughput_vs_turns.dir/fig8_throughput_vs_turns.cpp.o"
  "CMakeFiles/fig8_throughput_vs_turns.dir/fig8_throughput_vs_turns.cpp.o.d"
  "fig8_throughput_vs_turns"
  "fig8_throughput_vs_turns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_throughput_vs_turns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
