file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing_stabilization.dir/ablation_routing_stabilization.cpp.o"
  "CMakeFiles/ablation_routing_stabilization.dir/ablation_routing_stabilization.cpp.o.d"
  "ablation_routing_stabilization"
  "ablation_routing_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
