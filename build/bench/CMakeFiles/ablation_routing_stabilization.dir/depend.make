# Empty dependencies file for ablation_routing_stabilization.
# This may be replaced when dependencies are built.
