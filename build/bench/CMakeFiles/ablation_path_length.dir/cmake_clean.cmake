file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_length.dir/ablation_path_length.cpp.o"
  "CMakeFiles/ablation_path_length.dir/ablation_path_length.cpp.o.d"
  "ablation_path_length"
  "ablation_path_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
