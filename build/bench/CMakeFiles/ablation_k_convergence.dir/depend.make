# Empty dependencies file for ablation_k_convergence.
# This may be replaced when dependencies are built.
