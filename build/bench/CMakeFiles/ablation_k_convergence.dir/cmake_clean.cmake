file(REMOVE_RECURSE
  "CMakeFiles/ablation_k_convergence.dir/ablation_k_convergence.cpp.o"
  "CMakeFiles/ablation_k_convergence.dir/ablation_k_convergence.cpp.o.d"
  "ablation_k_convergence"
  "ablation_k_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
