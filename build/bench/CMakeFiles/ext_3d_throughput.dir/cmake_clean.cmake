file(REMOVE_RECURSE
  "CMakeFiles/ext_3d_throughput.dir/ext_3d_throughput.cpp.o"
  "CMakeFiles/ext_3d_throughput.dir/ext_3d_throughput.cpp.o.d"
  "ext_3d_throughput"
  "ext_3d_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_3d_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
