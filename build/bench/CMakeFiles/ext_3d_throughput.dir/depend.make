# Empty dependencies file for ext_3d_throughput.
# This may be replaced when dependencies are built.
