file(REMOVE_RECURSE
  "CMakeFiles/fig9_throughput_vs_failures.dir/fig9_throughput_vs_failures.cpp.o"
  "CMakeFiles/fig9_throughput_vs_failures.dir/fig9_throughput_vs_failures.cpp.o.d"
  "fig9_throughput_vs_failures"
  "fig9_throughput_vs_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_throughput_vs_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
