# Empty compiler generated dependencies file for fig9_throughput_vs_failures.
# This may be replaced when dependencies are built.
