# Empty dependencies file for ablation_relaxed_coupling.
# This may be replaced when dependencies are built.
