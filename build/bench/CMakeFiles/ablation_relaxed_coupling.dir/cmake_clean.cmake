file(REMOVE_RECURSE
  "CMakeFiles/ablation_relaxed_coupling.dir/ablation_relaxed_coupling.cpp.o"
  "CMakeFiles/ablation_relaxed_coupling.dir/ablation_relaxed_coupling.cpp.o.d"
  "ablation_relaxed_coupling"
  "ablation_relaxed_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relaxed_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
