# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench.fig7 "/root/repo/build/bench/fig7_throughput_vs_rs" "--rounds=200" "--seeds=1")
set_tests_properties(bench.fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.fig8 "/root/repo/build/bench/fig8_throughput_vs_turns" "--rounds=200" "--seeds=1")
set_tests_properties(bench.fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.fig9 "/root/repo/build/bench/fig9_throughput_vs_failures" "--rounds=400" "--seeds=1")
set_tests_properties(bench.fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.path_length "/root/repo/build/bench/ablation_path_length" "--rounds=300" "--seeds=1")
set_tests_properties(bench.path_length PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.routing_stabilization "/root/repo/build/bench/ablation_routing_stabilization" "--seeds=2")
set_tests_properties(bench.routing_stabilization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.token_policy "/root/repo/build/bench/ablation_token_policy" "--rounds=300" "--seeds=1")
set_tests_properties(bench.token_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.signal_necessity "/root/repo/build/bench/ablation_signal_necessity" "--rounds=300")
set_tests_properties(bench.signal_necessity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.relaxed_coupling "/root/repo/build/bench/ablation_relaxed_coupling" "--rounds=300")
set_tests_properties(bench.relaxed_coupling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.k_convergence "/root/repo/build/bench/ablation_k_convergence")
set_tests_properties(bench.k_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.multiflow "/root/repo/build/bench/ext_multiflow_interference" "--rounds=400")
set_tests_properties(bench.multiflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.flow3d "/root/repo/build/bench/ext_3d_throughput" "--rounds=300")
set_tests_properties(bench.flow3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.hex "/root/repo/build/bench/ext_hex_throughput" "--rounds=300")
set_tests_properties(bench.hex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.latency "/root/repo/build/bench/ablation_latency_distribution" "--rounds=1500")
set_tests_properties(bench.latency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench.parallel_scaling "/root/repo/build/bench/micro_parallel_scaling" "--rounds=30" "--warmup=15" "--max-side=20")
set_tests_properties(bench.parallel_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
