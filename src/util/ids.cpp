#include "util/ids.hpp"

#include <ostream>

namespace cellflow {

std::ostream& operator<<(std::ostream& os, CellId id) {
  return os << '<' << id.i << ',' << id.j << '>';
}

std::ostream& operator<<(std::ostream& os, EntityId id) {
  return os << 'p' << id.value;
}

}  // namespace cellflow
