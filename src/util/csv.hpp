// Minimal CSV emission (RFC-4180 quoting) used by the benchmark harness so
// every figure's series can be re-plotted from a file as well as read off
// the console table.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cellflow {

/// Streams rows to an std::ostream. The writer owns no buffer and never
/// seeks, so it works with files, stringstreams, and stdout alike.
class CsvWriter {
 public:
  /// The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row. Precondition: called at most once, before rows.
  void header(std::initializer_list<std::string_view> names);

  /// Appends one field to the current row (quoting if needed).
  CsvWriter& field(std::string_view s);
  CsvWriter& field(double v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);

  /// Terminates the current row.
  void end_row();

  /// Convenience: an entire row of doubles.
  void row(std::initializer_list<double> values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void sep();
  static std::string quote(std::string_view s);

  std::ostream* out_;
  bool at_row_start_ = true;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Parses one CSV line into fields (handles RFC-4180 quoting); used by
/// round-trip tests and the trace replayer.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace cellflow
