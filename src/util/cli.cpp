#include "util/cli.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace cellflow {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("cli: " + msg);
}

bool looks_like_flag(std::string_view s) {
  return s.size() > 2 && s.substr(0, 2) == "--";
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (!looks_like_flag(arg)) fail("expected --flag, got '" + std::string(arg) + "'");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace(std::string(arg.substr(0, eq)),
                      std::string(arg.substr(eq + 1)));
    } else if (k + 1 < argc && !looks_like_flag(argv[k + 1])) {
      values_.emplace(std::string(arg), std::string(argv[k + 1]));
      ++k;
    } else {
      values_.emplace(std::string(arg), "true");  // bare boolean
    }
  }
}

std::optional<std::string> CliArgs::raw(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void CliArgs::note(std::string_view name, std::string_view help,
                   std::string fallback) {
  registered_.emplace(std::string(name),
                      FlagDoc{std::string(help), std::move(fallback)});
}

double CliArgs::get_double(std::string_view name, double fallback,
                           std::string_view help) {
  note(name, help, std::to_string(fallback));
  const auto v = raw(name);
  if (!v) return fallback;
  // Full-match from_chars, like the integer getters: std::stod would
  // silently accept trailing garbage ("0.5x" → 0.5) and parses the
  // decimal separator per the global locale.
  double out = 0.0;
  const auto res = std::from_chars(v->data(), v->data() + v->size(), out);
  if (res.ec != std::errc{} || res.ptr != v->data() + v->size())
    fail("flag --" + std::string(name) + " expects a number, got '" + *v + "'");
  return out;
}

std::int64_t CliArgs::get_int(std::string_view name, std::int64_t fallback,
                              std::string_view help) {
  note(name, help, std::to_string(fallback));
  const auto v = raw(name);
  if (!v) return fallback;
  std::int64_t out = 0;
  const auto res = std::from_chars(v->data(), v->data() + v->size(), out);
  if (res.ec != std::errc{} || res.ptr != v->data() + v->size())
    fail("flag --" + std::string(name) + " expects an integer, got '" + *v + "'");
  return out;
}

std::uint64_t CliArgs::get_uint(std::string_view name, std::uint64_t fallback,
                                std::string_view help) {
  note(name, help, std::to_string(fallback));
  const auto v = raw(name);
  if (!v) return fallback;
  std::uint64_t out = 0;
  const auto res = std::from_chars(v->data(), v->data() + v->size(), out);
  if (res.ec != std::errc{} || res.ptr != v->data() + v->size())
    fail("flag --" + std::string(name) + " expects a non-negative integer, got '" +
         *v + "'");
  return out;
}

bool CliArgs::get_bool(std::string_view name, bool fallback,
                       std::string_view help) {
  note(name, help, fallback ? "true" : "false");
  const auto v = raw(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  fail("flag --" + std::string(name) + " expects a boolean, got '" + *v + "'");
}

std::string CliArgs::get_string(std::string_view name,
                                std::string_view fallback,
                                std::string_view help) {
  note(name, help, std::string(fallback));
  const auto v = raw(name);
  return v ? *v : std::string(fallback);
}

std::string CliArgs::help_text() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, doc] : registered_) {
    os << "  --" << name << " (default " << doc.fallback << ')';
    if (!doc.help.empty()) os << "  " << doc.help;
    os << '\n';
  }
  return os.str();
}

void CliArgs::finish() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (registered_.find(name) == registered_.end())
      fail("unknown flag --" + name);
  }
}

}  // namespace cellflow
