#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace cellflow {

std::string format_sig(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::set_header(std::vector<std::string> names) {
  CF_EXPECTS(!names.empty());
  header_ = std::move(names);
}

void TextTable::add_row(std::vector<std::string> cells) {
  CF_EXPECTS_MSG(cells.size() == header_.size(),
                 "row width must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(std::string label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(std::move(label));
  for (const double v : values) cells.push_back(format_sig(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  CF_EXPECTS_MSG(!header_.empty(), "table has no header");
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      os << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w;
  total += 2 * (width.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace cellflow
