#include "util/csv.hpp"

#include <charconv>
#include <cmath>

#include "util/check.hpp"

namespace cellflow {

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  CF_EXPECTS_MSG(!header_written_ && rows_ == 0 && at_row_start_,
                 "header must be first");
  for (const auto n : names) field(n);
  end_row();
  header_written_ = true;
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::sep() {
  if (!at_row_start_) *out_ << ',';
  at_row_start_ = false;
}

std::string CsvWriter::quote(std::string_view s) {
  const bool needs = s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs) return std::string(s);
  std::string q = "\"";
  for (const char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

CsvWriter& CsvWriter::field(std::string_view s) {
  sep();
  *out_ << quote(s);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::general, 10);
  out_->write(buf, res.ptr - buf);
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  *out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  at_row_start_ = true;
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> values) {
  for (const double v : values) field(v);
  end_row();
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t k = 0; k < line.size(); ++k) {
    const char c = line[k];
    if (in_quotes) {
      if (c == '"') {
        if (k + 1 < line.size() && line[k + 1] == '"') {
          cur += '"';
          ++k;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // swallow CR of CRLF
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace cellflow
