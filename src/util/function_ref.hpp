// FunctionRef<R(Args...)>: a non-owning, trivially copyable reference to
// a callable — two words (object pointer + trampoline), never allocating.
//
// std::function's small-buffer optimization tops out at two pointers of
// captured state on libstdc++; the round hot path's phase lambdas capture
// more and would spill to the heap every round. FunctionRef cannot spill:
// it points at the caller's callable instead of copying it. The flip side
// is a lifetime contract — the referenced callable must outlive every
// call — which the synchronous pool (ThreadPool::run blocks until all
// tasks finish) satisfies by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace cellflow {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Empty reference; calling it is undefined. Exists so holders (the
  /// pool's current-batch slot) can be declared before a batch is set.
  constexpr FunctionRef() noexcept = default;
  constexpr FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Binds to any callable lvalue (or a temporary that outlives the
  /// call, e.g. a lambda passed directly to a blocking function).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(runtime/explicit)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          using Fn = std::remove_reference_t<F>;
          return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return call_ != nullptr;
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace cellflow
