#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>

namespace cellflow {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::ostream* g_sink = nullptr;  // guarded by g_write_mutex
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Logger::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
void Logger::set_sink(std::ostream* sink) noexcept {
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  g_sink = sink;
}

void Logger::write(LogLevel level, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::clog;
  out << '[' << level_name(level) << "] " << message << '\n';
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::runtime_error("unknown log level: " + std::string(name));
}

}  // namespace cellflow
