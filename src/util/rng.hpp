// Deterministic pseudo-random number generation substrate.
//
// All stochastic pieces of the simulation (the fail/recover model of §IV,
// seeded token-choice policies, randomized test sweeps) draw from explicit
// per-component generator objects. There is no global RNG: determinism
// under a seed is a hard requirement for trace replay (sim/trace.hpp) and
// for reproducing every number in EXPERIMENTS.md.
//
// Xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the standard
// construction; both are tiny, fast, and well-studied.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace cellflow {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and usable
/// on its own for cheap decorrelated stream splitting.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the simulation's workhorse generator.
/// Satisfies UniformRandomBitGenerator, so it also composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of entropy per draw.
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  constexpr double uniform(double lo, double hi) {
    CF_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  /// Rejection sampling: unbiased for every n.
  constexpr std::uint64_t below(std::uint64_t n) {
    CF_EXPECTS(n > 0);
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return draw % n;
  }

  /// Bernoulli trial with success probability p ∈ [0, 1].
  constexpr bool bernoulli(double p) {
    CF_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
  }

  /// A decorrelated child stream, for handing to sub-components.
  constexpr Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

  /// The four xoshiro words, in the order the update rule indexes them.
  /// This IS the serialized stream format (src/snapshot writes these words
  /// verbatim, little-endian); the word order and the seed-expansion used
  /// by the constructor are pinned by golden values in tests/test_rng.cpp.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Overwrites the stream position with previously captured state().
  constexpr void set_state(
      const std::array<std::uint64_t, 4>& words) noexcept {
    state_ = words;
  }

  /// Rebuilds a generator mid-stream from state() words.
  [[nodiscard]] static constexpr Xoshiro256 from_state(
      const std::array<std::uint64_t, 4>& words) noexcept {
    Xoshiro256 g(0);
    g.state_ = words;
    return g;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cellflow
