// Statistics substrate used by observers, the experiment harness, and the
// benchmark tables: streaming moments (Welford), extrema, confidence
// intervals across seeds, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace cellflow {

/// Streaming accumulator for count/mean/variance/min/max.
/// Numerically stable (Welford's algorithm); O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Mean of the observations. Returns 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 points.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation, 1.96 sigma/sqrt(n)).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used by latency observers.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t b) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Left edge of bin b.
  [[nodiscard]] double bin_lo(std::size_t b) const;
  [[nodiscard]] double bin_hi(std::size_t b) const;

  /// Value below which fraction q of samples lie (linear within-bin
  /// interpolation; empty bins carry no mass, so q = 0 is the left edge
  /// of the first nonempty bin and q = 1 the right edge of the last).
  /// An empty histogram returns the range's lower bound — exporters may
  /// query quantiles before any sample lands. Precondition: 0 <= q <= 1.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (for example binaries).
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Mean of a span; 0 when empty.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;
/// Sample standard deviation of a span; 0 for fewer than 2 elements.
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

/// Ordinary least-squares slope of y against x.
/// Precondition: xs.size() == ys.size() and at least 2 points with
/// non-constant x. Used by trend assertions in tests.
[[nodiscard]] double ols_slope(std::span<const double> xs,
                               std::span<const double> ys);

/// Pearson correlation coefficient; precondition as ols_slope.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace cellflow
