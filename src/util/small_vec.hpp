// SmallVec<T, N>: a contiguous, vector-like sequence with N elements of
// inline (in-object) capacity, spilling to the heap only beyond N.
//
// Motivation (DESIGN.md §10): the round hot path manipulates many tiny
// per-cell sequences — NEPrev is at most 4 ids on the square grid (6 on
// hex / 3d lattices), Signal's rotation candidates at most |NEPrev|, a
// cell's crossing batch usually a handful of entities. Storing those in
// std::vector means one heap allocation per sequence per round; with
// inline capacity 8 they never touch the allocator at all, and iteration
// stays within the owning cache line(s).
//
// Scope: deliberately a subset of std::vector —
//   * contiguous storage, raw-pointer iterators (works with std::span,
//     std::sort, <algorithm>, range-for);
//   * push_back/emplace_back/pop_back/insert/erase/resize/reserve/clear
//     with std::vector growth semantics (amortized doubling once heap);
//   * copy/move/assign between SmallVecs; assign(first, last) from any
//     input range; operator= from an initializer list;
//   * shrinking (clear/resize-down/erase) never releases storage — the
//     arena discipline the round scratch buffers rely on.
// No allocator parameter, no strong exception guarantee beyond what the
// element operations give (the protocol stores trivially copyable ids
// and entities). Equivalence with a std::vector oracle over randomized
// operation sequences is pinned by tests/test_small_vec.cpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <span>
#include <utility>

#include "util/check.hpp"

namespace cellflow {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N >= 1, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;

  // User-provided (not `= default`) so a `const SmallVec` — and any const
  // aggregate holding one, e.g. `const CellState st;` in tests — is
  // const-default-constructible despite the deliberately uninitialized
  // inline buffer.
  SmallVec() noexcept {}

  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename InputIt>
  SmallVec(InputIt first, InputIt last) {
    assign(first, last);
  }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { steal_from(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    destroy_all();
    release_heap();
    steal_from(other);
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVec() {
    destroy_all();
    release_heap();
  }

  // --- capacity --------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while the elements live in the in-object buffer.
  [[nodiscard]] bool is_inline() const noexcept {
    return data_ == inline_data();
  }
  [[nodiscard]] static constexpr std::size_t inline_capacity() noexcept {
    return N;
  }

  void reserve(std::size_t want) {
    if (want > capacity_) grow_to(want);
  }

  // --- element access --------------------------------------------------

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t k) {
    CF_EXPECTS(k < size_);
    return data_[k];
  }
  [[nodiscard]] const T& operator[](std::size_t k) const {
    CF_EXPECTS(k < size_);
    return data_[k];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  // --- modifiers -------------------------------------------------------

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(size_ + 1);
    T* slot = data_ + size_;
    std::construct_at(slot, std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    CF_EXPECTS(size_ > 0);
    std::destroy_at(data_ + size_ - 1);
    --size_;
  }

  /// Inserts `v` before `pos`, shifting the tail right (std::vector
  /// semantics). Returns the iterator at the inserted element.
  iterator insert(const_iterator pos, const T& v) {
    const std::size_t at = index_of(pos);
    T copy(v);  // v may alias an element about to shift
    if (size_ == capacity_) grow_to(size_ + 1);
    if (at == size_) {
      std::construct_at(data_ + size_, std::move(copy));
    } else {
      std::construct_at(data_ + size_, std::move(data_[size_ - 1]));
      std::move_backward(data_ + at, data_ + size_ - 1, data_ + size_);
      data_[at] = std::move(copy);
    }
    ++size_;
    return data_ + at;
  }

  /// Erases the element at `pos`, shifting the tail left. Returns the
  /// iterator past the removed element.
  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  /// Erases [first, last), shifting the tail left.
  iterator erase(const_iterator first, const_iterator last) {
    const std::size_t lo = index_of(first);
    const std::size_t hi = index_of(last);
    CF_EXPECTS(lo <= hi && hi <= size_);
    if (lo != hi) {
      std::move(data_ + hi, data_ + size_, data_ + lo);
      std::destroy(data_ + size_ - (hi - lo), data_ + size_);
      size_ -= hi - lo;
    }
    return data_ + lo;
  }

  void resize(std::size_t n) {
    if (n < size_) {
      std::destroy(data_ + n, data_ + size_);
    } else if (n > size_) {
      if (n > capacity_) grow_to(n);
      for (std::size_t k = size_; k < n; ++k) std::construct_at(data_ + k);
    }
    size_ = n;
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_buf_));
  }
  [[nodiscard]] const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_buf_));
  }

  [[nodiscard]] std::size_t index_of(const_iterator pos) const noexcept {
    return static_cast<std::size_t>(pos - data_);
  }

  void destroy_all() noexcept { std::destroy(data_, data_ + size_); }

  void release_heap() noexcept {
    if (!is_inline())
      ::operator delete(static_cast<void*>(data_),
                        std::align_val_t{alignof(T)});
    data_ = inline_data();
    capacity_ = N;
  }

  /// Moves to a heap buffer of at least `want` slots (std::vector's
  /// amortized doubling). Never shrinks.
  void grow_to(std::size_t want) {
    const std::size_t cap = std::max(want, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(
        cap * sizeof(T), std::align_val_t{alignof(T)}));
    std::uninitialized_move(data_, data_ + size_, fresh);
    destroy_all();
    release_heap();
    data_ = fresh;
    capacity_ = cap;
  }

  /// Move-construct from `other`, leaving it empty (and inline). Heap
  /// storage is stolen; inline elements are moved one by one.
  void steal_from(SmallVec& other) noexcept {
    if (other.is_inline()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      std::uninitialized_move(other.data_, other.data_ + other.size_, data_);
      other.destroy_all();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  alignas(T) std::byte inline_buf_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

/// Order-agnostic equality against any sized range (primarily the
/// std::vector oracle in tests and span-typed views in callers).
template <typename T, std::size_t N, typename Range>
[[nodiscard]] bool equals_range(const SmallVec<T, N>& v, const Range& r) {
  return std::equal(v.begin(), v.end(), std::begin(r), std::end(r));
}

}  // namespace cellflow
