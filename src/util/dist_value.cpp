#include "util/dist_value.hpp"

#include <ostream>

namespace cellflow {

std::ostream& operator<<(std::ostream& os, Dist d) {
  if (d.is_infinite()) return os << "inf";
  return os << d.hops();
}

}  // namespace cellflow
