// Contract-checking macros used at public API boundaries.
//
// The C++ Core Guidelines (I.6, I.8, E.12) recommend stating preconditions
// and postconditions explicitly. Until contracts land in the language we use
// lightweight macros that throw `cellflow::ContractViolation`: throwing (as
// opposed to aborting) keeps violations testable from gtest and lets a
// simulation embedder decide how to react.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cellflow {

/// Thrown when a CF_EXPECTS/CF_ENSURES/CF_CHECK contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace cellflow

/// Precondition check. Active in all build types: simulation correctness
/// depends on these and their cost is negligible next to the round loop.
#define CF_EXPECTS(cond)                                                      \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cellflow::detail::contract_fail("precondition", #cond, __FILE__,      \
                                        __LINE__, "");                        \
  } while (false)

#define CF_EXPECTS_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cellflow::detail::contract_fail("precondition", #cond, __FILE__,      \
                                        __LINE__, (msg));                     \
  } while (false)

/// Postcondition check.
#define CF_ENSURES(cond)                                                      \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cellflow::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                        __LINE__, "");                        \
  } while (false)

/// Internal-invariant check (mid-function).
#define CF_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cellflow::detail::contract_fail("invariant", #cond, __FILE__,         \
                                        __LINE__, "");                        \
  } while (false)

#define CF_CHECK_MSG(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cellflow::detail::contract_fail("invariant", #cond, __FILE__,         \
                                        __LINE__, (msg));                     \
  } while (false)
