// Leveled logging for the simulator and example binaries.
//
// Deliberately minimal: a process-wide level, a sink ostream, and a macro
// that avoids formatting cost when the level is disabled. The simulator
// uses Debug for per-round detail, Info for phase summaries, and Warn for
// recoverable configuration anomalies.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string_view>

namespace cellflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration. Thread-safe: the level is an
/// atomic and write() serializes sink access under a mutex, so CF_LOG
/// may fire from parallel-engine worker threads (lines interleave whole,
/// never torn). set_sink still belongs in single-threaded setup code —
/// it swaps the destination, not the lifetime of what it points at.
class Logger {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Redirects output (default std::clog). Pass nullptr to restore default.
  static void set_sink(std::ostream* sink) noexcept;

  /// Emits one line: "[LEVEL] message". Internal — use the CF_LOG macro.
  static void write(LogLevel level, std::string_view message);

  [[nodiscard]] static bool enabled(LogLevel level) noexcept {
    return level >= Logger::level();
  }
};

/// Parses "debug"/"info"/"warn"/"error"/"off"; throws on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

}  // namespace cellflow

/// Usage: CF_LOG(kInfo) << "round " << r << " done";
/// The stream expression is not evaluated when the level is disabled.
#define CF_LOG(level_suffix)                                                \
  if (!::cellflow::Logger::enabled(::cellflow::LogLevel::level_suffix)) {  \
  } else                                                                    \
    ::cellflow::detail::LogLine(::cellflow::LogLevel::level_suffix).stream()

namespace cellflow::detail {

/// RAII line buffer: flushes to Logger::write on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, os_.str()); }

  std::ostringstream& stream() noexcept { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace cellflow::detail
