// Strongly-typed identifiers for the cellular-flow model.
//
// The paper indexes cells by pairs ⟨i,j⟩ ∈ [N−1]×[N−1] and entities by an
// abstract infinite set P. We use small value types with total orderings:
// the protocol's Route function breaks distance ties by comparing neighbor
// identifiers (Figure 4), so CellId ordering is part of the algorithm, not
// a convenience.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>

namespace cellflow {

/// Identifier of a cell: ⟨i,j⟩, the bottom-left corner of its unit square.
/// Ordered lexicographically (i first) — this is the tie-break order used
/// by Route's argmin (Figure 4, line 4).
struct CellId {
  std::int32_t i = 0;
  std::int32_t j = 0;

  friend constexpr auto operator<=>(const CellId&, const CellId&) = default;
};

/// ID⊥ from the paper: either a cell identifier or ⊥ (absent).
using OptCellId = std::optional<CellId>;

/// Identifier of an entity, unique over the lifetime of a System
/// (entities consumed by the target never reuse an id).
struct EntityId {
  std::uint64_t value = 0;

  friend constexpr auto operator<=>(const EntityId&, const EntityId&) = default;
};

/// Human-readable "⟨i,j⟩" (ASCII "<i,j>") form, as in the paper's figures.
inline std::string to_string(CellId id) {
  std::ostringstream os;
  os << '<' << id.i << ',' << id.j << '>';
  return os.str();
}

inline std::string to_string(const OptCellId& id) {
  return id.has_value() ? to_string(*id) : std::string("_|_");
}

inline std::string to_string(EntityId id) {
  std::ostringstream os;
  os << 'p' << id.value;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, CellId id);
std::ostream& operator<<(std::ostream& os, EntityId id);

}  // namespace cellflow

template <>
struct std::hash<cellflow::CellId> {
  std::size_t operator()(const cellflow::CellId& id) const noexcept {
    // Cells live on small grids; mix i into the high half.
    const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.i));
    const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.j));
    return std::hash<std::uint64_t>{}((a << 32) | b);
  }
};

template <>
struct std::hash<cellflow::EntityId> {
  std::size_t operator()(const cellflow::EntityId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
