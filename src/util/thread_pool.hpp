// Fixed-size worker pool and deterministic range sharding for the
// parallel round engine (core/system.hpp's ParallelPolicy).
//
// Determinism contract: parallelism here is *structural only*. Work is
// split into contiguous shards whose boundaries depend solely on
// (range size, shard count) — never on scheduling — so a caller that
// keeps one output buffer per shard and concatenates them in shard
// order obtains a result that is bit-identical across runs and across
// thread counts (shard s always covers the same indices). Which worker
// executes which shard, and when, is deliberately unspecified.
//
// The pool is intentionally tiny: a fixed set of workers, one blocking
// run() at a time, no task queue, no futures. That is exactly what a
// barrier-synchronized phase loop needs, and nothing more. Batches are
// passed as FunctionRef (util/function_ref.hpp) so dispatching a phase
// performs no heap allocation regardless of how much the phase lambda
// captures — part of the zero-allocation round contract (DESIGN.md §10).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/function_ref.hpp"

namespace cellflow {

/// Half-open index range [begin, end) assigned to one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  friend constexpr bool operator==(const ShardRange&,
                                   const ShardRange&) = default;
};

/// Number of shards shard_ranges(size, shards) would produce: at most
/// `shards`, never more than `size`. Precondition: shards >= 1.
[[nodiscard]] std::size_t shard_count(std::size_t size, int shards);

/// Shard `s` of the deterministic partition of [0, size) into `count`
/// contiguous ascending ranges (the first size % count shards are one
/// element longer). Pure arithmetic — no allocation — so phase loops can
/// compute their shard on the fly. Precondition: 1 <= count <= size and
/// s < count (i.e. count came from shard_count on the same size).
[[nodiscard]] ShardRange shard_range_at(std::size_t size, std::size_t count,
                                        std::size_t s);

/// Deterministic partition of [0, size) into at most `shards` contiguous,
/// ascending, non-empty ranges. The first (size % count) shards are one
/// element longer, so boundaries are a pure function of (size, shards):
/// the same pair always yields the same partition, on any machine.
/// size == 0 yields no shards. Precondition: shards >= 1.
/// (Materialized convenience over shard_range_at; hot loops use the
/// arithmetic form directly.)
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t size,
                                                   int shards);

/// A fixed set of worker threads executing one indexed task batch at a
/// time. run() blocks the caller until every task finished; the pool is
/// idle between run() calls. Not reentrant: run() must not be called
/// concurrently or from inside a task (the latter would deadlock).
class ThreadPool {
 public:
  /// Spawns `threads` workers. Precondition: threads >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers (any in-flight run() must have returned).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Executes task(k) for every k in [0, count), distributed over the
  /// workers, and returns when all have completed. If tasks threw, the
  /// exception of the *lowest* task index is rethrown (a deterministic
  /// choice, independent of scheduling); the remaining tasks still ran.
  /// The task callable only needs to outlive this (blocking) call.
  void run(std::size_t count, FunctionRef<void(std::size_t)> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current batch, guarded by mu_.
  FunctionRef<void(std::size_t)> task_;
  std::size_t task_count_ = 0;
  std::size_t next_task_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

/// Runs body(shard_index, range) over the shard_ranges() partition of
/// [0, size): on the pool when one is given, serially in ascending shard
/// order when `pool` is nullptr (then the partition has a single shard).
/// Callers needing merged output keep one buffer per shard — indexed by
/// shard_index — and concatenate in shard order; see the file comment.
void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body);

/// Element-wise convenience over parallel_for_shards: body(k) for every
/// k in [0, size), sharded the same deterministic way.
void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body);

}  // namespace cellflow
