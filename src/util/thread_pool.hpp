// Persistent worker pool and deterministic range sharding for the
// parallel round engine (core/system.hpp's ParallelPolicy).
//
// Determinism contract: parallelism here is *structural only*. Work is
// split into contiguous shards whose boundaries depend solely on
// (range size, shard count) — never on scheduling — so a caller that
// keeps one output buffer per shard and concatenates them in shard
// order obtains a result that is bit-identical across runs and across
// thread counts (shard s always covers the same indices). Which worker
// executes which shard, and when, is deliberately unspecified.
//
// Orchestration model (DESIGN.md §6): ThreadPool(threads) spawns
// threads - 1 OS workers and enlists the *calling* thread as executor 0,
// so a pool of width 1 runs everything inline with zero synchronization.
// Workers are persistent: between batches they spin briefly on an atomic
// epoch counter and then park on a condition variable, so dispatching a
// batch is one atomic increment plus (only when someone actually parked)
// a wakeup — not a mutex/condvar round-trip per phase. run_plan() goes
// further and publishes a whole round's stage sequence up front: one
// dispatch covers every phase, the caller opens stages with a single
// atomic store each, and workers ride from stage to stage without
// re-parking when the stages are close together.
//
// Batches are passed as FunctionRef (util/function_ref.hpp) so
// dispatching performs no heap allocation regardless of how much the
// phase lambda captures — part of the zero-allocation round contract
// (DESIGN.md §10).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "util/function_ref.hpp"

namespace cellflow {

/// Half-open index range [begin, end) assigned to one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  friend constexpr bool operator==(const ShardRange&,
                                   const ShardRange&) = default;
};

/// Number of shards shard_ranges(size, shards) would produce: at most
/// `shards`, never more than `size`. Precondition: shards >= 1.
[[nodiscard]] std::size_t shard_count(std::size_t size, int shards);

/// Shard `s` of the deterministic partition of [0, size) into `count`
/// contiguous ascending ranges (the first size % count shards are one
/// element longer). Pure arithmetic — no allocation — so phase loops can
/// compute their shard on the fly. Precondition: 1 <= count <= size and
/// s < count (i.e. count came from shard_count on the same size).
[[nodiscard]] ShardRange shard_range_at(std::size_t size, std::size_t count,
                                        std::size_t s);

/// Deterministic partition of [0, size) into at most `shards` contiguous,
/// ascending, non-empty ranges. The first (size % count) shards are one
/// element longer, so boundaries are a pure function of (size, shards):
/// the same pair always yields the same partition, on any machine.
/// size == 0 yields no shards. Precondition: shards >= 1.
/// (Materialized convenience over shard_range_at; hot loops use the
/// arithmetic form directly.)
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t size,
                                                   int shards);

/// Cumulative per-executor wall-time accounting for a pool with timing
/// enabled (ThreadPool::set_timing). All fields are sums over every
/// batch the executor participated in since construction / the last
/// reset_timings(). Timings are observational only — they are outside
/// the determinism contract (DESIGN.md §6/§7) and never influence which
/// shard runs where (the serial cutover consumes *round-level* timing
/// via core/system.hpp, and by §6 both engines are bit-identical, so
/// even that choice cannot change results).
/// For every executor that ran >= 1 task in a batch,
/// dispatch_ns + busy_ns + barrier_wait_ns partitions the batch's
/// dispatch -> batch-done wall span exactly; busy_ns >= work_ns, the
/// surplus being claim contention and OS preemption gaps between task
/// bodies (which is why round accounting sums busy, not work — on an
/// oversubscribed machine the difference is most of the story).
/// Executor 0 is the dispatching thread itself, so its dispatch_ns is 0.
struct WorkerTimings {
  std::uint64_t work_ns = 0;          ///< time spent inside task bodies
  std::uint64_t busy_ns = 0;          ///< first wake -> own last task end
  std::uint64_t barrier_wait_ns = 0;  ///< finished own tasks, batch not done
  std::uint64_t dispatch_ns = 0;      ///< dispatch published -> executor woke
  std::uint64_t tasks = 0;            ///< task bodies executed
  std::uint64_t batches = 0;          ///< dispatched batches participated in

  WorkerTimings& operator+=(const WorkerTimings& o) noexcept {
    work_ns += o.work_ns;
    busy_ns += o.busy_ns;
    barrier_wait_ns += o.barrier_wait_ns;
    dispatch_ns += o.dispatch_ns;
    tasks += o.tasks;
    batches += o.batches;
    return *this;
  }
  friend WorkerTimings operator-(WorkerTimings a,
                                 const WorkerTimings& b) noexcept {
    a.work_ns -= b.work_ns;
    a.busy_ns -= b.busy_ns;
    a.barrier_wait_ns -= b.barrier_wait_ns;
    a.dispatch_ns -= b.dispatch_ns;
    a.tasks -= b.tasks;
    a.batches -= b.batches;
    return a;
  }
};

/// How often the pool woke workers, and how: a spin wake observed the
/// new epoch while still spinning (cheap), a park wake needed the
/// condvar (a futex round-trip). Observational, cumulative, monotone.
struct DispatchStats {
  std::uint64_t dispatches = 0;  ///< run()/run_plan() batches published
  std::uint64_t spin_wakes = 0;  ///< executor waits resolved while spinning
  std::uint64_t park_wakes = 0;  ///< executor waits that parked on the cv
};

/// A fixed set of persistent executors running one indexed task batch
/// (or one multi-stage plan) at a time. run()/run_plan() block the
/// caller — which doubles as executor 0 — until everything finished; the
/// pool is idle between calls. Not reentrant: run()/run_plan() must not
/// be called concurrently or from inside a task (the latter would
/// deadlock).
class ThreadPool {
 public:
  using Clock = std::chrono::steady_clock;

  /// One stage of a run_plan() batch. Parallel stages execute
  /// task(k) for k in [0, count) across all executors; serial stages
  /// execute task(0) on the caller while the workers hold at the stage
  /// boundary (so a serial stage may safely touch any state the
  /// preceding parallel stages wrote). Stages are strictly barriered:
  /// stage s+1 never starts before every task of stage s completed.
  struct PlanStage {
    bool parallel = true;
    std::size_t count = 0;  ///< tasks for a parallel stage; ignored serial
    FunctionRef<void(std::size_t)> task;
  };

  /// One executor's participation in the most recent batch; valid
  /// between run() calls, only for executors that ran >= 1 task.
  struct BatchWorkerSample {
    int worker = -1;
    Clock::time_point wake;             ///< first wake after dispatch
    Clock::time_point first_task_start;
    Clock::time_point last_task_end;
    std::uint64_t work_ns = 0;
    std::uint64_t tasks = 0;
  };

  /// Makes a pool of `threads` executors: threads - 1 spawned workers
  /// plus the calling thread of each run()/run_plan(). threads == 1
  /// spawns nothing and runs batches inline. Precondition: threads >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers (any in-flight run() must have returned).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept { return threads_; }

  /// Executes task(k) for every k in [0, count), distributed over the
  /// executors, and returns when all have completed. If tasks threw, the
  /// exception of the *lowest* task index is rethrown (a deterministic
  /// choice, independent of scheduling); the remaining tasks still ran.
  /// The task callable only needs to outlive this (blocking) call.
  void run(std::size_t count, FunctionRef<void(std::size_t)> task);

  /// Executes a stage sequence under a single dispatch: workers wake
  /// once, then ride the plan's stage barriers (opened by the caller
  /// with one atomic store each) instead of being re-dispatched per
  /// phase. If any task threw, stages after the faulting one are not
  /// started (the faulting stage still runs to completion) and the
  /// exception of the lowest (stage, task) pair is rethrown. The stage
  /// array and every referenced callable must outlive the call.
  void run_plan(const PlanStage* stages, std::size_t count);

  /// Enables/disables per-executor timing. Off by default: when off,
  /// batch execution performs zero clock reads. Takes effect at the next
  /// batch; must not be called concurrently with run()/run_plan().
  void set_timing(bool enabled);
  [[nodiscard]] bool timing_enabled() const noexcept {
    return timing_.load(std::memory_order_relaxed);
  }

  /// Sum of every executor's cumulative timings since construction or
  /// the last reset_timings(). Callable between batches.
  [[nodiscard]] WorkerTimings total_timings() const;

  /// Per-executor cumulative timings, indexed by executor. out is
  /// cleared and refilled (capacity reuse keeps repeated calls
  /// allocation-free).
  void timings_by_worker(std::vector<WorkerTimings>& out) const;

  void reset_timings();

  /// Per-executor samples of the most recent batch (only executors that
  /// ran >= 1 task appear, in executor order). Empty when timing is off
  /// or no batch has run. out is cleared and refilled.
  void last_batch_samples(std::vector<BatchWorkerSample>& out) const;

  /// Timestamps bracketing the most recent timed batch: when the tasks
  /// were published and when the last task completed.
  [[nodiscard]] Clock::time_point last_batch_dispatch() const;
  [[nodiscard]] Clock::time_point last_batch_done() const;

  /// Cumulative dispatch/wake counters (never reset; reads are cheap).
  [[nodiscard]] DispatchStats dispatch_stats() const;

 private:
  // Per-parallel-stage claim state. next hands out task indices via
  // fetch_add; completed counts finished bodies. Re-zeroed by the
  // caller before each plan is published (workers are quiescent then).
  struct StageCtl {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  // Per-executor timing slot for the current epoch. Written only by the
  // owning executor while the epoch runs; the caller reads it after the
  // owner retired (release/acquire via retired_), so no locks needed.
  struct BatchSlot {
    std::uint64_t epoch = 0;
    Clock::time_point wake;
    Clock::time_point first_task;
    Clock::time_point last_task;
    std::uint64_t work_ns = 0;
    std::uint64_t tasks = 0;
  };

  void worker_loop(std::size_t self);
  // Spin-then-park until v != old (returns true) or stopping_ (false).
  bool wait_change(const std::atomic<std::uint64_t>& v, std::uint64_t old);
  void wake_parked();
  // Executes every claimable task of the published plan until the plan
  // is fully claimed (or aborted); used by workers for the whole epoch.
  void drain_plan(BatchSlot* slot);
  void run_one(std::size_t stage, std::size_t k, BatchSlot* slot);
  void caller_finish_stage(std::size_t stage, BatchSlot* slot);
  // Waits for every worker to retire the last epoch and folds its
  // timing slots into timings_. Idempotent per epoch; called before
  // reusing plan storage and by the observational accessors.
  void quiesce() const;

  int threads_ = 1;
  std::vector<std::thread> workers_;

  // Plan published before each seq_ bump. Stage descriptors are copied
  // into pool-owned storage because stragglers may still *scan* them
  // (never invoke — every task is claimed before run_plan returns)
  // after the caller's frame is gone; stable until the next quiesce()
  // proves all workers retired.
  std::vector<PlanStage> plan_stages_;
  const PlanStage* plan_ = nullptr;
  std::size_t plan_size_ = 0;
  std::unique_ptr<StageCtl[]> stage_ctl_;
  std::size_t stage_cap_ = 0;
  std::atomic<std::size_t> stage_limit_{0};  ///< stages open to workers
  std::atomic<bool> abort_{false};

  std::atomic<std::uint64_t> seq_{0};      ///< epoch: bumps per dispatch
  std::atomic<std::uint64_t> advance_{0};  ///< bumps per stage open/abort
  std::atomic<bool> stopping_{false};
  std::atomic<int> parked_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;

  std::atomic<int> retired_{0};  ///< workers done with the current epoch
  std::atomic<bool> caller_waiting_{false};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::mutex err_mu_;
  std::atomic<int> err_count_{0};
  std::vector<std::tuple<std::size_t, std::size_t, std::exception_ptr>>
      errors_;

  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> spin_wakes_{0};
  std::atomic<std::uint64_t> park_wakes_{0};

  std::atomic<bool> timing_{false};
  bool epoch_timed_ = false;
  bool in_run_ = false;
  std::uint64_t epoch_ = 0;  ///< seq_ value of the current/last plan
  Clock::time_point dispatched_at_;
  Clock::time_point batch_done_;
  mutable std::uint64_t quiesced_epoch_ = 0;
  mutable std::vector<BatchSlot> slots_;
  mutable std::vector<WorkerTimings> timings_;
};

/// Runs body(shard_index, range) over the shard_ranges() partition of
/// [0, size): on the pool when one is given, serially in ascending shard
/// order when `pool` is nullptr (then the partition has a single shard).
/// Callers needing merged output keep one buffer per shard — indexed by
/// shard_index — and concatenate in shard order; see the file comment.
void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body);

/// Element-wise convenience over parallel_for_shards: body(k) for every
/// k in [0, size), sharded the same deterministic way.
void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body);

}  // namespace cellflow
