// Fixed-size worker pool and deterministic range sharding for the
// parallel round engine (core/system.hpp's ParallelPolicy).
//
// Determinism contract: parallelism here is *structural only*. Work is
// split into contiguous shards whose boundaries depend solely on
// (range size, shard count) — never on scheduling — so a caller that
// keeps one output buffer per shard and concatenates them in shard
// order obtains a result that is bit-identical across runs and across
// thread counts (shard s always covers the same indices). Which worker
// executes which shard, and when, is deliberately unspecified.
//
// The pool is intentionally tiny: a fixed set of workers, one blocking
// run() at a time, no task queue, no futures. That is exactly what a
// barrier-synchronized phase loop needs, and nothing more. Batches are
// passed as FunctionRef (util/function_ref.hpp) so dispatching a phase
// performs no heap allocation regardless of how much the phase lambda
// captures — part of the zero-allocation round contract (DESIGN.md §10).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/function_ref.hpp"

namespace cellflow {

/// Half-open index range [begin, end) assigned to one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  friend constexpr bool operator==(const ShardRange&,
                                   const ShardRange&) = default;
};

/// Number of shards shard_ranges(size, shards) would produce: at most
/// `shards`, never more than `size`. Precondition: shards >= 1.
[[nodiscard]] std::size_t shard_count(std::size_t size, int shards);

/// Shard `s` of the deterministic partition of [0, size) into `count`
/// contiguous ascending ranges (the first size % count shards are one
/// element longer). Pure arithmetic — no allocation — so phase loops can
/// compute their shard on the fly. Precondition: 1 <= count <= size and
/// s < count (i.e. count came from shard_count on the same size).
[[nodiscard]] ShardRange shard_range_at(std::size_t size, std::size_t count,
                                        std::size_t s);

/// Deterministic partition of [0, size) into at most `shards` contiguous,
/// ascending, non-empty ranges. The first (size % count) shards are one
/// element longer, so boundaries are a pure function of (size, shards):
/// the same pair always yields the same partition, on any machine.
/// size == 0 yields no shards. Precondition: shards >= 1.
/// (Materialized convenience over shard_range_at; hot loops use the
/// arithmetic form directly.)
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t size,
                                                   int shards);

/// Cumulative per-worker wall-time accounting for a pool with timing
/// enabled (ThreadPool::set_timing). All fields are sums over every
/// batch the worker participated in since construction / the last
/// reset_timings(). Timings are observational only — they are outside
/// the determinism contract (DESIGN.md §6/§7) and never influence which
/// shard runs where.
/// For every worker that executed >= 1 task in a batch,
/// dispatch_ns + busy_ns + barrier_wait_ns partitions the batch's
/// dispatch -> batch-done wall span exactly; busy_ns >= work_ns, the
/// surplus being queue-claim lock waits and OS preemption gaps between
/// task bodies (which is why round accounting sums busy, not work —
/// on an oversubscribed machine the difference is most of the story).
struct WorkerTimings {
  std::uint64_t work_ns = 0;          ///< time spent inside task bodies
  std::uint64_t busy_ns = 0;          ///< first wake -> own last task end
  std::uint64_t barrier_wait_ns = 0;  ///< finished own tasks, batch not done
  std::uint64_t dispatch_ns = 0;      ///< run() notified -> worker woke
  std::uint64_t tasks = 0;            ///< task bodies executed
  std::uint64_t batches = 0;          ///< run() batches the worker woke for

  WorkerTimings& operator+=(const WorkerTimings& o) noexcept {
    work_ns += o.work_ns;
    busy_ns += o.busy_ns;
    barrier_wait_ns += o.barrier_wait_ns;
    dispatch_ns += o.dispatch_ns;
    tasks += o.tasks;
    batches += o.batches;
    return *this;
  }
  friend WorkerTimings operator-(WorkerTimings a,
                                 const WorkerTimings& b) noexcept {
    a.work_ns -= b.work_ns;
    a.busy_ns -= b.busy_ns;
    a.barrier_wait_ns -= b.barrier_wait_ns;
    a.dispatch_ns -= b.dispatch_ns;
    a.tasks -= b.tasks;
    a.batches -= b.batches;
    return a;
  }
};

/// A fixed set of worker threads executing one indexed task batch at a
/// time. run() blocks the caller until every task finished; the pool is
/// idle between run() calls. Not reentrant: run() must not be called
/// concurrently or from inside a task (the latter would deadlock).
class ThreadPool {
 public:
  using Clock = std::chrono::steady_clock;

  /// One worker's participation in the most recent run() batch; valid
  /// between run() calls, only for workers that executed >= 1 task.
  struct BatchWorkerSample {
    int worker = -1;
    Clock::time_point wake;             ///< first wake after dispatch
    Clock::time_point first_task_start;
    Clock::time_point last_task_end;
    std::uint64_t work_ns = 0;
    std::uint64_t tasks = 0;
  };

  /// Spawns `threads` workers. Precondition: threads >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers (any in-flight run() must have returned).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Executes task(k) for every k in [0, count), distributed over the
  /// workers, and returns when all have completed. If tasks threw, the
  /// exception of the *lowest* task index is rethrown (a deterministic
  /// choice, independent of scheduling); the remaining tasks still ran.
  /// The task callable only needs to outlive this (blocking) call.
  void run(std::size_t count, FunctionRef<void(std::size_t)> task);

  /// Enables/disables per-worker timing. Off by default: when off, run()
  /// performs zero clock reads. All timing state is preallocated in the
  /// constructor and written only under the pool mutex, so enabling it
  /// keeps run() allocation-free and race-free. Takes effect at the next
  /// run(); must not be called concurrently with run().
  void set_timing(bool enabled);
  [[nodiscard]] bool timing_enabled() const noexcept { return timing_; }

  /// Sum of every worker's cumulative timings since construction or the
  /// last reset_timings(). Callable between run() calls.
  [[nodiscard]] WorkerTimings total_timings() const;

  /// Per-worker cumulative timings, indexed by worker. out is cleared
  /// and refilled (capacity reuse keeps repeated calls allocation-free).
  void timings_by_worker(std::vector<WorkerTimings>& out) const;

  void reset_timings();

  /// Per-worker samples of the most recent run() batch (only workers
  /// that executed >= 1 task appear, in worker order). Empty when timing
  /// is off or no batch has run. out is cleared and refilled.
  void last_batch_samples(std::vector<BatchWorkerSample>& out) const;

  /// Timestamps bracketing the most recent timed batch: when run()
  /// published the tasks and when the last task completed.
  [[nodiscard]] Clock::time_point last_batch_dispatch() const;
  [[nodiscard]] Clock::time_point last_batch_done() const;

 private:
  // Per-worker slot for the batch currently / most recently run;
  // guarded by mu_. `generation` tags which batch the slot belongs to.
  struct BatchSlot {
    std::uint64_t generation = 0;
    Clock::time_point wake;
    Clock::time_point first_task;
    Clock::time_point last_task;
    std::uint64_t work_ns = 0;
    std::uint64_t tasks = 0;
  };

  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current batch, guarded by mu_.
  FunctionRef<void(std::size_t)> task_;
  std::size_t task_count_ = 0;
  std::size_t next_task_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
  // Timing state, guarded by mu_. Preallocated to thread_count() slots.
  bool timing_ = false;
  Clock::time_point dispatched_at_;
  Clock::time_point batch_done_;
  std::uint64_t timed_generation_ = 0;  ///< generation of last timed batch
  std::vector<WorkerTimings> timings_;
  std::vector<BatchSlot> batch_;
};

/// Runs body(shard_index, range) over the shard_ranges() partition of
/// [0, size): on the pool when one is given, serially in ascending shard
/// order when `pool` is nullptr (then the partition has a single shard).
/// Callers needing merged output keep one buffer per shard — indexed by
/// shard_index — and concatenate in shard order; see the file comment.
void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body);

/// Element-wise convenience over parallel_for_shards: body(k) for every
/// k in [0, size), sharded the same deterministic way.
void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body);

}  // namespace cellflow
