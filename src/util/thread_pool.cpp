#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {

std::size_t shard_count(std::size_t size, int shards) {
  CF_EXPECTS(shards >= 1);
  return std::min(static_cast<std::size_t>(shards), size);
}

ShardRange shard_range_at(std::size_t size, std::size_t count,
                          std::size_t s) {
  CF_EXPECTS(count >= 1 && count <= size && s < count);
  const std::size_t base = size / count;
  const std::size_t extra = size % count;
  const std::size_t begin = s * base + std::min(s, extra);
  const std::size_t len = base + (s < extra ? 1 : 0);
  return ShardRange{begin, begin + len};
}

std::vector<ShardRange> shard_ranges(std::size_t size, int shards) {
  const std::size_t count = shard_count(size, shards);
  std::vector<ShardRange> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    out.push_back(shard_range_at(size, count, s));
  CF_ENSURES(out.empty() || out.back().end == size);
  return out;
}

namespace {

// steady_clock difference in whole nanoseconds, clamped at zero (the
// clock is monotonic, but clamping keeps arithmetic on derived pairs —
// e.g. done - last_task when they were read in opposite order — safe).
std::uint64_t ns_between(ThreadPool::Clock::time_point a,
                         ThreadPool::Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  CF_EXPECTS(threads >= 1);
  const auto n = static_cast<std::size_t>(threads);
  timings_.resize(n);
  batch_.resize(n);
  workers_.reserve(n);
  for (std::size_t t = 0; t < n; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lk, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    const bool timing = timing_;
    if (timing) {
      // All timing writes happen with mu_ held, so they are ordinary
      // (race-free) accesses even though run() reads them afterwards.
      const Clock::time_point wake = Clock::now();
      BatchSlot& slot = batch_[worker];
      slot.generation = seen;
      slot.wake = wake;
      slot.work_ns = 0;
      slot.tasks = 0;
      timings_[worker].dispatch_ns += ns_between(dispatched_at_, wake);
      ++timings_[worker].batches;
    }
    while (next_task_ < task_count_) {
      const std::size_t k = next_task_++;
      lk.unlock();
      Clock::time_point t0;
      if (timing) t0 = Clock::now();
      std::exception_ptr err;
      try {
        task_(k);
      } catch (...) {
        err = std::current_exception();
      }
      const Clock::time_point t1 = timing ? Clock::now() : Clock::time_point{};
      lk.lock();
      if (timing) {
        BatchSlot& slot = batch_[worker];
        if (slot.tasks == 0) slot.first_task = t0;
        slot.last_task = t1;
        const std::uint64_t dt = ns_between(t0, t1);
        slot.work_ns += dt;
        ++slot.tasks;
        timings_[worker].work_ns += dt;
        ++timings_[worker].tasks;
      }
      if (err) errors_.emplace_back(k, err);
      ++completed_;
      if (completed_ == task_count_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t count, FunctionRef<void(std::size_t)> task) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  CF_EXPECTS_MSG(!task_, "ThreadPool::run is not reentrant");
  task_ = task;
  task_count_ = count;
  next_task_ = 0;
  completed_ = 0;
  errors_.clear();
  if (timing_) dispatched_at_ = Clock::now();
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return completed_ == task_count_; });
  if (timing_) {
    // Barrier wait: each participating worker idled from its last task
    // end until the whole batch completed.
    batch_done_ = Clock::now();
    timed_generation_ = generation_;
    for (std::size_t w = 0; w < batch_.size(); ++w) {
      const BatchSlot& slot = batch_[w];
      if (slot.generation == generation_ && slot.tasks > 0) {
        timings_[w].busy_ns += ns_between(slot.wake, slot.last_task);
        timings_[w].barrier_wait_ns += ns_between(slot.last_task, batch_done_);
      }
    }
  }
  task_ = nullptr;
  task_count_ = 0;
  if (!errors_.empty()) {
    const auto lowest = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr err = lowest->second;
    errors_.clear();
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::set_timing(bool enabled) {
  const std::lock_guard<std::mutex> lk(mu_);
  timing_ = enabled;
}

WorkerTimings ThreadPool::total_timings() const {
  const std::lock_guard<std::mutex> lk(mu_);
  WorkerTimings total;
  for (const WorkerTimings& t : timings_) total += t;
  return total;
}

void ThreadPool::timings_by_worker(std::vector<WorkerTimings>& out) const {
  const std::lock_guard<std::mutex> lk(mu_);
  out.clear();
  out.insert(out.end(), timings_.begin(), timings_.end());
}

void ThreadPool::reset_timings() {
  const std::lock_guard<std::mutex> lk(mu_);
  for (WorkerTimings& t : timings_) t = WorkerTimings{};
  for (BatchSlot& slot : batch_) slot = BatchSlot{};
  timed_generation_ = 0;
}

void ThreadPool::last_batch_samples(std::vector<BatchWorkerSample>& out) const {
  const std::lock_guard<std::mutex> lk(mu_);
  out.clear();
  if (timed_generation_ == 0) return;
  for (std::size_t w = 0; w < batch_.size(); ++w) {
    const BatchSlot& slot = batch_[w];
    if (slot.generation != timed_generation_ || slot.tasks == 0) continue;
    BatchWorkerSample s;
    s.worker = static_cast<int>(w);
    s.wake = slot.wake;
    s.first_task_start = slot.first_task;
    s.last_task_end = slot.last_task;
    s.work_ns = slot.work_ns;
    s.tasks = slot.tasks;
    out.push_back(s);
  }
}

ThreadPool::Clock::time_point ThreadPool::last_batch_dispatch() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return dispatched_at_;
}

ThreadPool::Clock::time_point ThreadPool::last_batch_done() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return batch_done_;
}

void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body) {
  if (size == 0) return;
  const std::size_t count =
      shard_count(size, pool ? pool->thread_count() : 1);
  if (pool == nullptr || count <= 1) {
    for (std::size_t s = 0; s < count; ++s)
      body(s, shard_range_at(size, count, s));
    return;
  }
  const auto one = [&](std::size_t s) {
    body(s, shard_range_at(size, count, s));
  };
  pool->run(count, one);
}

void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body) {
  const auto per_shard = [&](std::size_t, ShardRange r) {
    for (std::size_t k = r.begin; k < r.end; ++k) body(k);
  };
  parallel_for_shards(pool, size, per_shard);
}

}  // namespace cellflow
