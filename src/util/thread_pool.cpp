#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {

std::size_t shard_count(std::size_t size, int shards) {
  CF_EXPECTS(shards >= 1);
  return std::min(static_cast<std::size_t>(shards), size);
}

ShardRange shard_range_at(std::size_t size, std::size_t count,
                          std::size_t s) {
  CF_EXPECTS(count >= 1 && count <= size && s < count);
  const std::size_t base = size / count;
  const std::size_t extra = size % count;
  const std::size_t begin = s * base + std::min(s, extra);
  const std::size_t len = base + (s < extra ? 1 : 0);
  return ShardRange{begin, begin + len};
}

std::vector<ShardRange> shard_ranges(std::size_t size, int shards) {
  const std::size_t count = shard_count(size, shards);
  std::vector<ShardRange> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    out.push_back(shard_range_at(size, count, s));
  CF_ENSURES(out.empty() || out.back().end == size);
  return out;
}

namespace {

// steady_clock difference in whole nanoseconds, clamped at zero (the
// clock is monotonic, but clamping keeps arithmetic on derived pairs —
// e.g. done - last_task when they were read in opposite order — safe).
std::uint64_t ns_between(ThreadPool::Clock::time_point a,
                         ThreadPool::Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

// Bounded spin before parking. Short enough that an oversubscribed box
// (fewer cores than executors) falls through to the condvar quickly —
// the periodic yield hands the CPU to whoever holds the work.
constexpr int kSpinIters = 2048;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  CF_EXPECTS(threads >= 1);
  threads_ = threads;
  const auto n = static_cast<std::size_t>(threads);
  slots_.resize(n);
  timings_.resize(n);
  workers_.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  quiesce();
  stopping_.store(true);
  wake_parked();
  for (std::thread& w : workers_) w.join();
}

// The park handshake is a Dekker pair: a waiter publishes parked_ and
// re-reads the watched counter (both seq_cst) before sleeping; a waker
// bumps the counter and then reads parked_ (both seq_cst). At least one
// side therefore observes the other — either the waiter sees the new
// value and never sleeps, or the waker sees parked_ > 0 and notifies.
// The empty lock_guard in wake_parked() orders the notify after any
// in-progress wait() entry on the same mutex, closing the check-to-sleep
// window.
bool ThreadPool::wait_change(const std::atomic<std::uint64_t>& v,
                             std::uint64_t old) {
  for (int i = 0; i < kSpinIters; ++i) {
    if (stopping_.load(std::memory_order_relaxed)) return false;
    if (v.load() != old) {
      spin_wakes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    cpu_relax();
    if ((i & 63) == 63) std::this_thread::yield();
  }
  parked_.fetch_add(1);
  bool stopped = false;
  {
    std::unique_lock<std::mutex> lk(park_mu_);
    park_cv_.wait(lk, [&] {
      return stopping_.load(std::memory_order_relaxed) || v.load() != old;
    });
    stopped = stopping_.load(std::memory_order_relaxed);
  }
  parked_.fetch_sub(1, std::memory_order_relaxed);
  park_wakes_.fetch_add(1, std::memory_order_relaxed);
  return !stopped;
}

void ThreadPool::wake_parked() {
  if (parked_.load() > 0) {
    { const std::lock_guard<std::mutex> lk(park_mu_); }
    park_cv_.notify_all();
  }
}

void ThreadPool::run_one(std::size_t stage, std::size_t k, BatchSlot* slot) {
  const PlanStage& st = plan_[stage];
  Clock::time_point t0{};
  if (slot != nullptr) t0 = Clock::now();
  std::exception_ptr err;
  try {
    st.task(k);
  } catch (...) {
    err = std::current_exception();
  }
  if (slot != nullptr) {
    const Clock::time_point t1 = Clock::now();
    if (slot->tasks == 0) slot->first_task = t0;
    slot->last_task = t1;
    slot->work_ns += ns_between(t0, t1);
    ++slot->tasks;
  }
  if (err) {
    const std::lock_guard<std::mutex> lk(err_mu_);
    errors_.emplace_back(stage, k, err);
    err_count_.fetch_add(1, std::memory_order_relaxed);
  }
  StageCtl& ctl = stage_ctl_[stage];
  const std::size_t done = ctl.completed.fetch_add(1) + 1;
  if (done == st.count && caller_waiting_.load()) {
    { const std::lock_guard<std::mutex> lk(done_mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::drain_plan(BatchSlot* slot) {
  for (;;) {
    const std::uint64_t adv = advance_.load();
    if (abort_.load()) return;
    const std::size_t limit = std::min(stage_limit_.load(), plan_size_);
    bool claimed = false;
    for (std::size_t s = 0; s < limit; ++s) {
      const PlanStage& st = plan_[s];
      if (!st.parallel) continue;
      StageCtl& ctl = stage_ctl_[s];
      while (ctl.next.load(std::memory_order_relaxed) < st.count) {
        const std::size_t k = ctl.next.fetch_add(1,
                                                 std::memory_order_relaxed);
        if (k >= st.count) break;
        run_one(s, k, slot);
        claimed = true;
      }
    }
    if (claimed) continue;
    // Nothing claimable. Once every stage is open the claim counters
    // can only stay exhausted, so the epoch is over for this executor.
    if (limit >= plan_size_) return;
    if (!wait_change(advance_, adv)) return;
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    if (!wait_change(seq_, seen)) return;
    seen = seq_.load();
    BatchSlot* slot = nullptr;
    if (timing_.load(std::memory_order_relaxed)) {
      slot = &slots_[self];
      slot->epoch = seen;
      slot->wake = Clock::now();
      slot->first_task = slot->last_task = slot->wake;
      slot->work_ns = 0;
      slot->tasks = 0;
    }
    drain_plan(slot);
    // Publishes every plain write above (timing slot, error list) to
    // the caller, whose quiesce() acquires retired_.
    retired_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::caller_finish_stage(std::size_t stage, BatchSlot* slot) {
  const PlanStage& st = plan_[stage];
  StageCtl& ctl = stage_ctl_[stage];
  while (ctl.next.load(std::memory_order_relaxed) < st.count) {
    const std::size_t k = ctl.next.fetch_add(1, std::memory_order_relaxed);
    if (k >= st.count) break;
    run_one(stage, k, slot);
  }
  int spins = 0;
  while (ctl.completed.load() < st.count) {
    if (++spins <= kSpinIters) {
      cpu_relax();
      if ((spins & 63) == 0) std::this_thread::yield();
      continue;
    }
    caller_waiting_.store(true);
    {
      std::unique_lock<std::mutex> lk(done_mu_);
      done_cv_.wait(lk, [&] { return ctl.completed.load() >= st.count; });
    }
    caller_waiting_.store(false, std::memory_order_relaxed);
  }
}

void ThreadPool::run_plan(const PlanStage* stages, std::size_t count) {
  CF_EXPECTS_MSG(!in_run_, "ThreadPool::run is not reentrant");
  if (count == 0) return;
  quiesce();  // prior epoch retired: plan/slot storage is ours again
  in_run_ = true;
  plan_stages_.assign(stages, stages + count);
  plan_ = plan_stages_.data();
  plan_size_ = count;
  if (stage_cap_ < count) {
    stage_ctl_ = std::make_unique<StageCtl[]>(count);
    stage_cap_ = count;
  }
  for (std::size_t s = 0; s < count; ++s) {
    stage_ctl_[s].next.store(0, std::memory_order_relaxed);
    stage_ctl_[s].completed.store(0, std::memory_order_relaxed);
  }
  abort_.store(false, std::memory_order_relaxed);
  stage_limit_.store(0, std::memory_order_relaxed);
  retired_.store(0, std::memory_order_relaxed);
  errors_.clear();
  err_count_.store(0, std::memory_order_relaxed);
  epoch_timed_ = timing_.load(std::memory_order_relaxed);
  BatchSlot* slot = nullptr;
  if (epoch_timed_) {
    dispatched_at_ = Clock::now();
    slot = &slots_[0];
    slot->epoch = epoch_ + 1;
    slot->wake = dispatched_at_;
    slot->first_task = slot->last_task = dispatched_at_;
    slot->work_ns = 0;
    slot->tasks = 0;
  }
  ++epoch_;
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  seq_.fetch_add(1);  // publish: everything above happens-before this
  wake_parked();

  bool aborted = false;
  for (std::size_t s = 0; s < count; ++s) {
    stage_limit_.store(s + 1);
    advance_.fetch_add(1);
    wake_parked();
    const PlanStage& st = stages[s];
    if (st.parallel) {
      caller_finish_stage(s, slot);
    } else {
      std::exception_ptr err;
      try {
        st.task(0);
      } catch (...) {
        err = std::current_exception();
      }
      if (err) {
        const std::lock_guard<std::mutex> lk(err_mu_);
        errors_.emplace_back(s, std::size_t{0}, err);
        err_count_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (err_count_.load(std::memory_order_relaxed) > 0 && s + 1 < count) {
      // Later stages must not start; workers waiting for them to open
      // are released by the abort flag instead.
      aborted = true;
      abort_.store(true);
      advance_.fetch_add(1);
      wake_parked();
      break;
    }
  }
  if (epoch_timed_) batch_done_ = Clock::now();
  in_run_ = false;
  if (aborted || err_count_.load(std::memory_order_relaxed) > 0) {
    quiesce();  // workers retired: errors_ is stable to read
    const auto lowest = std::min_element(
        errors_.begin(), errors_.end(), [](const auto& a, const auto& b) {
          return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                 std::make_pair(std::get<0>(b), std::get<1>(b));
        });
    const std::exception_ptr err = std::get<2>(*lowest);
    errors_.clear();
    err_count_.store(0, std::memory_order_relaxed);
    std::rethrow_exception(err);
  }
}

void ThreadPool::run(std::size_t count, FunctionRef<void(std::size_t)> task) {
  if (count == 0) return;
  PlanStage stage;
  stage.parallel = true;
  stage.count = count;
  stage.task = task;
  run_plan(&stage, 1);
}

void ThreadPool::quiesce() const {
  if (epoch_ == quiesced_epoch_) return;
  const int target = static_cast<int>(workers_.size());
  int spins = 0;
  while (retired_.load(std::memory_order_acquire) < target) {
    cpu_relax();
    if ((++spins & 63) == 0) std::this_thread::yield();
  }
  quiesced_epoch_ = epoch_;
  if (!epoch_timed_) return;
  for (std::size_t e = 0; e < slots_.size(); ++e) {
    const BatchSlot& s = slots_[e];
    if (s.epoch != epoch_) continue;
    WorkerTimings& t = timings_[e];
    t.dispatch_ns += ns_between(dispatched_at_, s.wake);
    ++t.batches;
    if (s.tasks > 0) {
      t.work_ns += s.work_ns;
      t.tasks += s.tasks;
      t.busy_ns += ns_between(s.wake, s.last_task);
      t.barrier_wait_ns += ns_between(s.last_task, batch_done_);
    }
  }
}

void ThreadPool::set_timing(bool enabled) {
  quiesce();
  timing_.store(enabled, std::memory_order_relaxed);
}

WorkerTimings ThreadPool::total_timings() const {
  quiesce();
  WorkerTimings total;
  for (const WorkerTimings& t : timings_) total += t;
  return total;
}

void ThreadPool::timings_by_worker(std::vector<WorkerTimings>& out) const {
  quiesce();
  out.clear();
  out.insert(out.end(), timings_.begin(), timings_.end());
}

void ThreadPool::reset_timings() {
  quiesce();
  for (WorkerTimings& t : timings_) t = WorkerTimings{};
  for (BatchSlot& s : slots_) s = BatchSlot{};
}

void ThreadPool::last_batch_samples(std::vector<BatchWorkerSample>& out) const {
  out.clear();
  quiesce();
  if (epoch_ == 0 || !epoch_timed_) return;
  for (std::size_t e = 0; e < slots_.size(); ++e) {
    const BatchSlot& s = slots_[e];
    if (s.epoch != epoch_ || s.tasks == 0) continue;
    BatchWorkerSample b;
    b.worker = static_cast<int>(e);
    b.wake = s.wake;
    b.first_task_start = s.first_task;
    b.last_task_end = s.last_task;
    b.work_ns = s.work_ns;
    b.tasks = s.tasks;
    out.push_back(b);
  }
}

ThreadPool::Clock::time_point ThreadPool::last_batch_dispatch() const {
  quiesce();
  return dispatched_at_;
}

ThreadPool::Clock::time_point ThreadPool::last_batch_done() const {
  quiesce();
  return batch_done_;
}

DispatchStats ThreadPool::dispatch_stats() const {
  DispatchStats s;
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.spin_wakes = spin_wakes_.load(std::memory_order_relaxed);
  s.park_wakes = park_wakes_.load(std::memory_order_relaxed);
  return s;
}

void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body) {
  if (size == 0) return;
  const std::size_t count =
      shard_count(size, pool ? pool->thread_count() : 1);
  if (pool == nullptr || count <= 1) {
    for (std::size_t s = 0; s < count; ++s)
      body(s, shard_range_at(size, count, s));
    return;
  }
  const auto one = [&](std::size_t s) {
    body(s, shard_range_at(size, count, s));
  };
  pool->run(count, one);
}

void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body) {
  const auto per_shard = [&](std::size_t, ShardRange r) {
    for (std::size_t k = r.begin; k < r.end; ++k) body(k);
  };
  parallel_for_shards(pool, size, per_shard);
}

}  // namespace cellflow
