#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {

std::size_t shard_count(std::size_t size, int shards) {
  CF_EXPECTS(shards >= 1);
  return std::min(static_cast<std::size_t>(shards), size);
}

ShardRange shard_range_at(std::size_t size, std::size_t count,
                          std::size_t s) {
  CF_EXPECTS(count >= 1 && count <= size && s < count);
  const std::size_t base = size / count;
  const std::size_t extra = size % count;
  const std::size_t begin = s * base + std::min(s, extra);
  const std::size_t len = base + (s < extra ? 1 : 0);
  return ShardRange{begin, begin + len};
}

std::vector<ShardRange> shard_ranges(std::size_t size, int shards) {
  const std::size_t count = shard_count(size, shards);
  std::vector<ShardRange> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    out.push_back(shard_range_at(size, count, s));
  CF_ENSURES(out.empty() || out.back().end == size);
  return out;
}

ThreadPool::ThreadPool(int threads) {
  CF_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lk, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    while (next_task_ < task_count_) {
      const std::size_t k = next_task_++;
      lk.unlock();
      std::exception_ptr err;
      try {
        task_(k);
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err) errors_.emplace_back(k, err);
      ++completed_;
      if (completed_ == task_count_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t count, FunctionRef<void(std::size_t)> task) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  CF_EXPECTS_MSG(!task_, "ThreadPool::run is not reentrant");
  task_ = task;
  task_count_ = count;
  next_task_ = 0;
  completed_ = 0;
  errors_.clear();
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return completed_ == task_count_; });
  task_ = nullptr;
  task_count_ = 0;
  if (!errors_.empty()) {
    const auto lowest = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr err = lowest->second;
    errors_.clear();
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void parallel_for_shards(ThreadPool* pool, std::size_t size,
                         FunctionRef<void(std::size_t, ShardRange)> body) {
  if (size == 0) return;
  const std::size_t count =
      shard_count(size, pool ? pool->thread_count() : 1);
  if (pool == nullptr || count <= 1) {
    for (std::size_t s = 0; s < count; ++s)
      body(s, shard_range_at(size, count, s));
    return;
  }
  const auto one = [&](std::size_t s) {
    body(s, shard_range_at(size, count, s));
  };
  pool->run(count, one);
}

void parallel_for(ThreadPool* pool, std::size_t size,
                  FunctionRef<void(std::size_t)> body) {
  const auto per_shard = [&](std::size_t, ShardRange r) {
    for (std::size_t k = r.begin; k < r.end; ++k) body(k);
  };
  parallel_for_shards(pool, size, per_shard);
}

}  // namespace cellflow
