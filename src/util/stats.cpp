#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace cellflow {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CF_EXPECTS(bins > 0);
  CF_EXPECTS(lo < hi);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto b = static_cast<std::ptrdiff_t>(
      std::floor((x - lo_) / span * static_cast<double>(counts_.size())));
  b = std::clamp<std::ptrdiff_t>(
      b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t b) const {
  CF_EXPECTS(b < counts_.size());
  return counts_[b];
}

double Histogram::bin_lo(std::size_t b) const {
  CF_EXPECTS(b < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const {
  CF_EXPECTS(b < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  CF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto c = static_cast<double>(counts_[b]);
    // Empty bins carry no mass: without this skip, q = 0 (target 0)
    // would resolve to the range's lower bound even when the leading
    // bins hold no samples.
    if (c == 0.0) continue;
    if (cum + c >= target) {
      const double frac = (target - cum) / c;
      return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b)
    peak = std::max(peak, counts_[b]);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak == 0 ? std::size_t{0}
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[b]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    os << '[';
    os.precision(4);
    os << bin_lo(b) << ", " << bin_hi(b) << ") ";
    os << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double ols_slope(std::span<const double> xs, std::span<const double> ys) {
  CF_EXPECTS(xs.size() == ys.size());
  CF_EXPECTS(xs.size() >= 2);
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    sxy += (xs[k] - mx) * (ys[k] - my);
    sxx += (xs[k] - mx) * (xs[k] - mx);
  }
  CF_EXPECTS_MSG(sxx > 0.0, "x values are constant");
  return sxy / sxx;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  CF_EXPECTS(xs.size() == ys.size());
  CF_EXPECTS(xs.size() >= 2);
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    sxy += (xs[k] - mx) * (ys[k] - my);
    sxx += (xs[k] - mx) * (xs[k] - mx);
    syy += (ys[k] - my) * (ys[k] - my);
  }
  CF_EXPECTS_MSG(sxx > 0.0 && syy > 0.0, "degenerate series");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace cellflow
