// N∞: the naturals extended with ∞, as used for the paper's `dist`
// variable (Figure 3: dist ∈ N∞, initially ∞; fail sets dist := ∞).
//
// Route (Figure 4) computes `min over neighbors of dist, plus one`.
// Arithmetic must saturate: ∞ + 1 = ∞. A plain integer with a sentinel is
// error-prone (UINT64_MAX + 1 wraps), so we wrap it in a small value type
// with only the operations the protocol needs.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace cellflow {

/// A hop-count distance in N ∪ {∞}. Totally ordered with ∞ as maximum.
class Dist {
 public:
  /// Default-constructed distance is ∞ (the paper's initial value).
  constexpr Dist() noexcept = default;

  /// A finite distance. Precondition: hops < infinity sentinel.
  static constexpr Dist finite(std::uint64_t hops) {
    CF_EXPECTS_MSG(hops < kInfinity, "finite distance out of range");
    return Dist{hops};
  }

  static constexpr Dist zero() noexcept { return Dist{0}; }
  static constexpr Dist infinity() noexcept { return Dist{kInfinity}; }

  [[nodiscard]] constexpr bool is_infinite() const noexcept {
    return raw_ == kInfinity;
  }
  [[nodiscard]] constexpr bool is_finite() const noexcept {
    return raw_ != kInfinity;
  }

  /// Number of hops. Precondition: finite.
  [[nodiscard]] constexpr std::uint64_t hops() const {
    CF_EXPECTS_MSG(is_finite(), "hops() on infinite distance");
    return raw_;
  }

  /// Saturating successor: ∞ + 1 = ∞. This is the only arithmetic Route
  /// ever performs on distances.
  [[nodiscard]] constexpr Dist plus_one() const noexcept {
    return is_infinite() ? infinity() : Dist{raw_ + 1};
  }

  /// Raw 64-bit encoding (∞ = UINT64_MAX), for bulk kernels that pack
  /// distances into integer lanes (core/route_kernel.hpp). Ordering on
  /// raw values equals ordering on Dist.
  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return raw_; }

  /// Inverse of raw(). Any 64-bit value is a valid encoding.
  static constexpr Dist from_raw(std::uint64_t raw) noexcept {
    return Dist{raw};
  }

  friend constexpr auto operator<=>(Dist a, Dist b) noexcept {
    return a.raw_ <=> b.raw_;
  }
  friend constexpr bool operator==(Dist, Dist) noexcept = default;

 private:
  static constexpr std::uint64_t kInfinity =
      std::numeric_limits<std::uint64_t>::max();

  constexpr explicit Dist(std::uint64_t raw) noexcept : raw_(raw) {}

  std::uint64_t raw_ = kInfinity;
};

inline std::string to_string(Dist d) {
  return d.is_infinite() ? std::string("inf") : std::to_string(d.hops());
}

std::ostream& operator<<(std::ostream& os, Dist d);

}  // namespace cellflow
