// Tiny command-line flag parser for the example and benchmark binaries.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error (surfacing typos beats silently ignoring
// them), and `--help` prints the registered flags. Kept deliberately
// small — the binaries need a dozen numeric knobs, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cellflow {

/// Parsed argv. Construct, register defaults via get_* calls, then call
/// `finish()` to reject unknown flags.
class CliArgs {
 public:
  /// Parses argv (argv[0] is skipped). Throws std::runtime_error on
  /// malformed input.
  CliArgs(int argc, const char* const* argv);

  /// Typed getters; each registers the flag (for --help / unknown-flag
  /// detection) and returns the parsed value or `fallback`.
  [[nodiscard]] double get_double(std::string_view name, double fallback,
                                  std::string_view help = "");
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback,
                                     std::string_view help = "");
  [[nodiscard]] std::uint64_t get_uint(std::string_view name,
                                       std::uint64_t fallback,
                                       std::string_view help = "");
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback,
                              std::string_view help = "");
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view fallback,
                                       std::string_view help = "");

  /// True if --help was passed; callers should print `help_text()` and exit.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string help_text() const;

  /// Throws if any flag on the command line was never registered.
  void finish() const;

 private:
  struct FlagDoc {
    std::string help;
    std::string fallback;
  };

  [[nodiscard]] std::optional<std::string> raw(std::string_view name) const;
  void note(std::string_view name, std::string_view help,
            std::string fallback);

  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, FlagDoc, std::less<>> registered_;
  bool help_ = false;
};

}  // namespace cellflow
