// Aligned console tables. The benchmark binaries print every reproduced
// figure as a right-aligned numeric table whose rows mirror the paper's
// series, so the output is directly comparable to the figures.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cellflow {

/// Accumulates rows of strings and renders them with per-column widths.
class TextTable {
 public:
  /// Sets the column headers; resets nothing else. Must be called before
  /// add_row so column count is known.
  void set_header(std::vector<std::string> names);

  /// Appends one row. Precondition: size matches the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience row builder: first cell is a label, remaining cells are
  /// numbers rendered with `precision` significant digits.
  void add_numeric_row(std::string label, const std::vector<double>& values,
                       int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a rule under the header; columns separated by two spaces.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v with `precision` significant digits (benchmark table cells).
[[nodiscard]] std::string format_sig(double v, int precision = 4);

}  // namespace cellflow
