#include "flow3d/grid3.hpp"

#include <sstream>

namespace cellflow {

std::string to_string(CellId3 id) {
  std::ostringstream os;
  os << '<' << id.x << ',' << id.y << ',' << id.z << '>';
  return os.str();
}

std::string to_string(const OptCellId3& id) {
  return id.has_value() ? to_string(*id) : std::string("_|_");
}

std::vector<CellId3> Grid3::neighbors(CellId3 id) const {
  CF_EXPECTS(contains(id));
  std::vector<CellId3> out;
  out.reserve(6);
  for (const Direction3 d : kAllDirections3) {
    if (const auto n = neighbor(id, d)) out.push_back(*n);
  }
  return out;
}

bool Grid3::are_neighbors(CellId3 a, CellId3 b) const noexcept {
  int nonzero = 0;
  int total = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const int delta = a[axis] - b[axis];
    const int mag = delta >= 0 ? delta : -delta;
    if (mag > 0) ++nonzero;
    total += mag;
  }
  return nonzero == 1 && total == 1;
}

Direction3 Grid3::direction_between(CellId3 from, CellId3 to) const {
  CF_EXPECTS_MSG(are_neighbors(from, to), "cells do not share a face");
  for (int axis = 0; axis < 3; ++axis) {
    if (to[axis] != from[axis])
      return Direction3{axis, to[axis] > from[axis] ? 1 : -1};
  }
  CF_CHECK(false);
  return Direction3{};
}

std::vector<CellId3> Grid3::all_cells() const {
  std::vector<CellId3> out;
  out.reserve(cell_count());
  for (std::size_t k = 0; k < cell_count(); ++k) out.push_back(id_of(k));
  return out;
}

}  // namespace cellflow
