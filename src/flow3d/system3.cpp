#include "flow3d/system3.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/check.hpp"

namespace cellflow {

bool entry_strip_clear3(CellId3 self, CellId3 toward,
                        std::span<const Entity3> members,
                        const Params& params) {
  int axis = -1;
  for (int a = 0; a < 3; ++a) {
    if (toward[a] == self[a]) continue;
    CF_EXPECTS_MSG(axis == -1 && (toward[a] == self[a] + 1 ||
                                  toward[a] == self[a] - 1),
                   "entry_strip_clear3: cells do not share a face");
    axis = a;
  }
  CF_EXPECTS_MSG(axis >= 0, "entry_strip_clear3: cells are identical");
  const int sign = toward[axis] > self[axis] ? 1 : -1;
  const double half = params.entity_length() / 2.0;
  const double d = params.center_spacing();
  const auto base = static_cast<double>(self[axis]);
  return std::all_of(members.begin(), members.end(), [&](const Entity3& p) {
    return sign > 0 ? p.center[axis] + half <= base + 1.0 - d
                    : p.center[axis] - half >= base + d;
  });
}

System3::System3(System3Config config)
    : config_(std::move(config)),
      grid_(config_.nx, config_.ny, config_.nz),
      cells_(grid_.cell_count()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId3 s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  cells_[grid_.index_of(config_.target)].dist = Dist::zero();
  dist_snapshot_.resize(cells_.size());
}

std::size_t System3::entity_count() const noexcept {
  std::size_t n = 0;
  for (const CellState3& c : cells_) n += c.members.size();
  return n;
}

std::vector<Dist> System3::reference_distances() const {
  std::vector<Dist> dist(grid_.cell_count(), Dist::infinity());
  if (cells_[grid_.index_of(config_.target)].failed) return dist;
  std::deque<CellId3> frontier;
  dist[grid_.index_of(config_.target)] = Dist::zero();
  frontier.push_back(config_.target);
  while (!frontier.empty()) {
    const CellId3 cur = frontier.front();
    frontier.pop_front();
    const Dist next_d = dist[grid_.index_of(cur)].plus_one();
    for (const CellId3 nb : grid_.neighbors(cur)) {
      if (cells_[grid_.index_of(nb)].failed) continue;
      if (dist[grid_.index_of(nb)].is_infinite()) {
        dist[grid_.index_of(nb)] = next_d;
        frontier.push_back(nb);
      }
    }
  }
  return dist;
}

void System3::fail(CellId3 id) {
  CF_EXPECTS(grid_.contains(id));
  CellState3& c = cells_[grid_.index_of(id)];
  c.failed = true;
  c.dist = Dist::infinity();
  c.next = std::nullopt;
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
}

void System3::recover(CellId3 id) {
  CF_EXPECTS(grid_.contains(id));
  CellState3& c = cells_[grid_.index_of(id)];
  if (!c.failed) return;
  c.failed = false;
  c.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  c.next = std::nullopt;
  c.token = std::nullopt;
  c.signal = std::nullopt;
  c.ne_prev.clear();
}

const RoundEvents3& System3::update() {
  events_ = RoundEvents3{};
  events_.round = round_;
  run_route_phase();
  run_signal_phase();
  run_move_phase();
  run_inject_phase();
  ++round_;
  return events_;
}

void System3::run_route_phase() {
  for (std::size_t k = 0; k < cells_.size(); ++k)
    dist_snapshot_[k] = cells_[k].dist;

  for (std::size_t k = 0; k < cells_.size(); ++k) {
    CellState3& c = cells_[k];
    if (c.failed) continue;
    const CellId3 id = grid_.id_of(k);
    if (id == config_.target) {
      c.dist = Dist::zero();
      c.next = std::nullopt;
      continue;
    }
    // argmin over (dist, id) among up to six neighbors.
    OptCellId3 best;
    Dist best_dist = Dist::infinity();
    for (const Direction3 d : kAllDirections3) {
      const auto nb = grid_.neighbor(id, d);
      if (!nb) continue;
      const Dist nd = dist_snapshot_[grid_.index_of(*nb)];
      if (!best.has_value() || nd < best_dist ||
          (nd == best_dist && *nb < *best)) {
        best = *nb;
        best_dist = nd;
      }
    }
    c.dist = best_dist.plus_one();
    c.next = c.dist.is_infinite() ? std::nullopt : best;
  }
}

CellId3 System3::rotate_choice(std::span<const CellId3> sorted_candidates,
                               const OptCellId3& previous) {
  CF_EXPECTS(!sorted_candidates.empty());
  if (!previous.has_value()) return sorted_candidates.front();
  const auto it = std::upper_bound(sorted_candidates.begin(),
                                   sorted_candidates.end(), *previous);
  return it == sorted_candidates.end() ? sorted_candidates.front() : *it;
}

void System3::run_signal_phase() {
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    CellState3& c = cells_[k];
    if (c.failed) continue;
    const CellId3 id = grid_.id_of(k);

    std::vector<CellId3> ne_prev;
    for (const Direction3 d : kAllDirections3) {
      const auto nb = grid_.neighbor(id, d);
      if (!nb) continue;
      const CellState3& nc = cells_[grid_.index_of(*nb)];
      if (nc.failed) continue;
      if (nc.next == OptCellId3{id} && nc.has_entities())
        ne_prev.push_back(*nb);
    }
    std::sort(ne_prev.begin(), ne_prev.end());

    // Stale-token hygiene, as in 2-D: drop non-neighbors (corruption).
    if (c.token.has_value() && !grid_.are_neighbors(id, *c.token))
      c.token = std::nullopt;
    if (!c.token.has_value() && !ne_prev.empty())
      c.token = rotate_choice(ne_prev, std::nullopt);

    if (!c.token.has_value()) {
      c.signal = std::nullopt;
      c.ne_prev = std::move(ne_prev);
      continue;
    }

    if (entry_strip_clear3(id, *c.token, c.members, config_.params)) {
      c.signal = c.token;
      if (ne_prev.size() > 1) {
        std::vector<CellId3> others;
        others.reserve(ne_prev.size());
        for (const CellId3 cand : ne_prev)
          if (cand != *c.token) others.push_back(cand);
        c.token = rotate_choice(others, c.token);
      } else if (ne_prev.size() == 1) {
        c.token = ne_prev.front();
      } else {
        c.token = std::nullopt;
      }
    } else {
      c.signal = std::nullopt;  // block; token unchanged (fairness)
    }
    c.ne_prev = std::move(ne_prev);
  }
}

void System3::run_move_phase() {
  struct Pending {
    Entity3 entity;
    CellId3 from;
    CellId3 to;
  };
  std::vector<Pending> pending;
  const double half = config_.params.entity_length() / 2.0;
  const double v = config_.params.velocity();

  for (std::size_t k = 0; k < cells_.size(); ++k) {
    CellState3& c = cells_[k];
    if (c.failed || !c.next.has_value()) continue;
    const CellId3 id = grid_.id_of(k);
    const CellId3 dest = *c.next;
    if (cells_[grid_.index_of(dest)].signal != OptCellId3{id}) continue;

    events_.moved.push_back(id);
    const Direction3 dir = grid_.direction_between(id, dest);
    const auto base = static_cast<double>(id[dir.axis]);

    std::vector<Entity3> staying;
    staying.reserve(c.members.size());
    for (Entity3 p : c.members) {
      p.center[dir.axis] += v * static_cast<double>(dir.sign);
      const bool crossed =
          dir.sign > 0 ? p.center[dir.axis] + half > base + 1.0
                       : p.center[dir.axis] - half < base;
      if (crossed) {
        // Entry placement flush with the destination face; perpendicular
        // coordinates preserved.
        const auto dbase = static_cast<double>(dest[dir.axis]);
        p.center[dir.axis] =
            dir.sign > 0 ? dbase + half : dbase + 1.0 - half;
        pending.push_back(Pending{p, id, dest});
      } else {
        staying.push_back(p);
      }
    }
    c.members = std::move(staying);
  }

  for (Pending& t : pending) {
    TransferEvent3 ev{t.entity.id, t.from, t.to, false};
    if (t.to == config_.target) {
      ev.consumed = true;
      ++total_arrivals_;
      ++events_.arrivals;
    } else {
      cells_[grid_.index_of(t.to)].members.push_back(t.entity);
    }
    events_.transfers.push_back(ev);
  }
}

bool System3::injection_is_safe(CellId3 id, Vec3 center) const {
  const Params& p = config_.params;
  const double half = p.entity_length() / 2.0;
  const double d = p.center_spacing();
  for (int axis = 0; axis < 3; ++axis) {
    const auto base = static_cast<double>(id[axis]);
    if (center[axis] - half < base || center[axis] + half > base + 1.0)
      return false;
  }
  const CellState3& c = cells_[grid_.index_of(id)];
  for (const Entity3& q : c.members) {
    bool separated = false;
    for (int axis = 0; axis < 3; ++axis) {
      if (std::abs(center[axis] - q.center[axis]) >= d) {
        separated = true;
        break;
      }
    }
    if (!separated) return false;
  }
  if (c.token.has_value()) {
    std::vector<Entity3> with_new(c.members.begin(), c.members.end());
    with_new.push_back(Entity3{EntityId{~0ULL}, center});
    const bool was_clear = entry_strip_clear3(id, *c.token, c.members, p);
    const bool still_clear = entry_strip_clear3(id, *c.token, with_new, p);
    if (was_clear && !still_clear) return false;
  }
  return true;
}

void System3::run_inject_phase() {
  const double half = config_.params.entity_length() / 2.0;
  for (const CellId3 s : config_.sources) {
    CellState3& c = cells_[grid_.index_of(s)];
    if (c.failed) continue;
    // Entry-face placement opposite the travel direction.
    Vec3 center{static_cast<double>(s.x) + 0.5,
                static_cast<double>(s.y) + 0.5,
                static_cast<double>(s.z) + 0.5};
    if (c.next.has_value()) {
      const Direction3 toward = grid_.direction_between(s, *c.next);
      const auto base = static_cast<double>(s[toward.axis]);
      center[toward.axis] =
          toward.sign > 0 ? base + half : base + 1.0 - half;
    }
    if (!injection_is_safe(s, center)) continue;
    const EntityId eid{next_entity_id_++};
    c.members.push_back(Entity3{eid, center});
    events_.injected.emplace_back(s, eid);
  }
}

EntityId System3::seed_entity(CellId3 id, Vec3 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS_MSG(injection_is_safe(id, center),
                 "seed_entity: placement violates the gap requirement or "
                 "cell bounds");
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(Entity3{eid, center});
  return eid;
}

}  // namespace cellflow
