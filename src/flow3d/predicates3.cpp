#include "flow3d/predicates3.hpp"

#include <cmath>
#include <unordered_set>

namespace cellflow {

std::optional<Violation3> check_safe3(const System3& sys, double eps) {
  const double d = sys.params().center_spacing();
  for (const CellId3 id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        bool separated = false;
        for (int axis = 0; axis < 3; ++axis) {
          if (std::abs(members[a].center[axis] - members[b].center[axis]) >=
              d - eps) {
            separated = true;
            break;
          }
        }
        if (!separated) {
          return Violation3{"Safe", id,
                            to_string(members[a].id) + " vs " +
                                to_string(members[b].id)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation3> check_bounds3(const System3& sys, double eps) {
  const double half = sys.params().entity_length() / 2.0;
  for (const CellId3 id : sys.grid().all_cells()) {
    for (const Entity3& p : sys.cell(id).members) {
      for (int axis = 0; axis < 3; ++axis) {
        const auto base = static_cast<double>(id[axis]);
        if (p.center[axis] - half < base - eps ||
            p.center[axis] + half > base + 1.0 + eps) {
          return Violation3{"Invariant1", id, to_string(p.id)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation3> check_disjoint3(const System3& sys) {
  std::unordered_set<EntityId> seen;
  for (const CellId3 id : sys.grid().all_cells()) {
    for (const Entity3& p : sys.cell(id).members) {
      if (!seen.insert(p.id).second)
        return Violation3{"Invariant2", id, to_string(p.id)};
    }
  }
  return std::nullopt;
}

std::optional<Violation3> check_h3(const System3& sys, double eps) {
  const double half = sys.params().entity_length() / 2.0;
  const double d = sys.params().center_spacing() - eps;
  for (const CellId3 id : sys.grid().all_cells()) {
    const CellState3& c = sys.cell(id);
    if (!c.signal.has_value()) continue;
    const CellId3 t = *c.signal;
    if (!sys.grid().are_neighbors(id, t))
      return Violation3{"H", id, "signal points at a non-neighbor"};
    int axis = 0;
    for (int a = 0; a < 3; ++a)
      if (t[a] != id[a]) axis = a;
    const int sign = t[axis] > id[axis] ? 1 : -1;
    const auto base = static_cast<double>(id[axis]);
    for (const Entity3& p : c.members) {
      const bool ok = sign > 0 ? p.center[axis] + half <= base + 1.0 - d
                               : p.center[axis] - half >= base + d;
      if (!ok) {
        return Violation3{"H", id,
                          "strip toward " + to_string(t) + " occupied by " +
                              to_string(p.id)};
      }
    }
  }
  return std::nullopt;
}

std::vector<Violation3> check_all3(const System3& sys, double eps) {
  std::vector<Violation3> out;
  if (auto v = check_safe3(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_bounds3(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_disjoint3(sys)) out.push_back(*std::move(v));
  return out;
}

std::string to_string(const Violation3& v) {
  return v.predicate + " violated at " + to_string(v.cell) + ": " + v.detail;
}

}  // namespace cellflow
