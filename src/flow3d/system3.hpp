// The full ICDCS'10 protocol on the 3-D box lattice (paper §V extension).
// Semantics mirror core/system.hpp phase for phase:
//
//   update = Route (phase-parallel Bellman–Ford over the 6-neighborhood)
//          ; Signal (token + axis-generic entry-strip blocking)
//          ; Move   (simultaneous displacement, face transfers, target
//                    consumption)
//          ; inject (≤1 entity per source per round, validated)
//
// Parameters and constraints are unchanged (v ≤ l < 1, rs + l < 1,
// d = rs + l); the safety predicate becomes "centers differ by ≥ d along
// some of the THREE axes", and Theorem 5's argument carries over because
// transfers still only reset the motion-axis coordinate.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "flow3d/grid3.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cellflow {

struct Entity3 {
  EntityId id;
  Vec3 center;

  friend bool operator==(const Entity3&, const Entity3&) noexcept = default;
};

/// Figure-3 variables, verbatim, over CellId3.
struct CellState3 {
  std::vector<Entity3> members;
  Dist dist = Dist::infinity();
  OptCellId3 next;
  OptCellId3 token;
  OptCellId3 signal;
  std::vector<CellId3> ne_prev;
  bool failed = false;

  [[nodiscard]] bool has_entities() const noexcept { return !members.empty(); }
  [[nodiscard]] const Entity3* find(EntityId id) const noexcept {
    for (const Entity3& e : members)
      if (e.id == id) return &e;
    return nullptr;
  }
};

struct TransferEvent3 {
  EntityId entity;
  CellId3 from;
  CellId3 to;
  bool consumed = false;
};

struct RoundEvents3 {
  std::uint64_t round = 0;
  std::vector<TransferEvent3> transfers;
  std::vector<CellId3> moved;
  std::vector<std::pair<CellId3, EntityId>> injected;
  std::uint64_t arrivals = 0;
};

struct System3Config {
  int nx = 4;
  int ny = 4;
  int nz = 8;
  Params params{0.25, 0.05, 0.1};
  CellId3 target{1, 1, 7};
  std::vector<CellId3> sources{CellId3{1, 1, 0}};
};

/// True iff the strip of depth d inward from the face of `self` shared
/// with `toward` is free of every member's safety region — the
/// axis-generic Figure 5 lines 4–7.
[[nodiscard]] bool entry_strip_clear3(CellId3 self, CellId3 toward,
                                      std::span<const Entity3> members,
                                      const Params& params);

class System3 {
 public:
  explicit System3(System3Config config);

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] CellId3 target() const noexcept { return config_.target; }

  [[nodiscard]] const CellState3& cell(CellId3 id) const {
    return cells_[grid_.index_of(id)];
  }
  [[nodiscard]] std::span<const CellState3> cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }
  [[nodiscard]] std::size_t entity_count() const noexcept;

  /// BFS reference ρ over the current failure pattern.
  [[nodiscard]] std::vector<Dist> reference_distances() const;

  void fail(CellId3 id);
  void recover(CellId3 id);

  const RoundEvents3& update();
  [[nodiscard]] const RoundEvents3& last_events() const noexcept {
    return events_;
  }

  /// Validated direct placement (tests / initial conditions).
  EntityId seed_entity(CellId3 id, Vec3 center);

 private:
  void run_route_phase();
  void run_signal_phase();
  void run_move_phase();
  void run_inject_phase();
  [[nodiscard]] bool injection_is_safe(CellId3 id, Vec3 center) const;

  // The paper's `choose` realized over CellId3 via the 2-D policy
  // interface is impossible (types differ), so System3 keeps its own
  // fair round-robin rotation (the default policy of the 2-D system).
  [[nodiscard]] static CellId3 rotate_choice(
      std::span<const CellId3> sorted_candidates, const OptCellId3& previous);

  System3Config config_;
  Grid3 grid_;
  std::vector<CellState3> cells_;

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  RoundEvents3 events_;
  std::vector<Dist> dist_snapshot_;
};

}  // namespace cellflow
