// 3-D extension (paper §V): "our algorithm is presented for a two
// dimensional square-grid partition, however, an extension to three
// dimensional rectangular partitions follows in an obvious way."
//
// This module makes the "obvious way" concrete. Cells are unit cubes on
// an nx×ny×nz box lattice; entities are l×l×l cubes; the neighborhood is
// the 6-face adjacency. Everything the 2-D protocol wrote as four
// directional cases becomes one axis-generic formula:
//
//   direction            = (axis ∈ {x,y,z}, sign ∈ {−1,+1})
//   entry strip clear    = ∀p: sign>0 ? p[axis]+l/2 ≤ base+1−d
//                              : p[axis]−l/2 ≥ base+d
//   boundary crossing    = sign>0 ? p[axis]+l/2 > base+1 : p[axis]−l/2 < base
//   entry placement      = p[axis] := sign>0 ? dest+l/2 : dest+1−l/2
//
// with the two perpendicular coordinates untouched — which is also why
// Theorem 5's proof generalizes verbatim: it only ever argues about the
// motion axis and "some axis" separation.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace cellflow {

/// Identifier of a 3-D cell: the integer corner of its unit cube.
/// Ordered lexicographically — the Route tie-break order, as in 2-D.
struct CellId3 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  friend constexpr auto operator<=>(const CellId3&, const CellId3&) = default;

  [[nodiscard]] constexpr std::int32_t operator[](int axis) const {
    return axis == 0 ? x : axis == 1 ? y : z;
  }
  constexpr std::int32_t& operator[](int axis) {
    return axis == 0 ? x : axis == 1 ? y : z;
  }
};

using OptCellId3 = std::optional<CellId3>;

[[nodiscard]] std::string to_string(CellId3 id);
[[nodiscard]] std::string to_string(const OptCellId3& id);

/// A point in 3-space (entity centers).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr bool operator==(Vec3, Vec3) noexcept = default;

  [[nodiscard]] constexpr double operator[](int axis) const {
    return axis == 0 ? x : axis == 1 ? y : z;
  }
  constexpr double& operator[](int axis) {
    return axis == 0 ? x : axis == 1 ? y : z;
  }
};

/// One of the six face directions: an axis and a sign.
struct Direction3 {
  int axis = 0;   ///< 0 = x, 1 = y, 2 = z
  int sign = 1;   ///< +1 or −1

  friend constexpr bool operator==(Direction3, Direction3) noexcept = default;
};

inline constexpr std::array<Direction3, 6> kAllDirections3 = {
    Direction3{0, 1}, Direction3{0, -1}, Direction3{1, 1},
    Direction3{1, -1}, Direction3{2, 1}, Direction3{2, -1}};

/// The rectangular box lattice.
class Grid3 {
 public:
  /// Preconditions: all extents >= 1.
  Grid3(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
    CF_EXPECTS_MSG(nx >= 1 && ny >= 1 && nz >= 1,
                   "grid extents must be positive");
  }

  [[nodiscard]] int nx() const noexcept { return nx_; }
  [[nodiscard]] int ny() const noexcept { return ny_; }
  [[nodiscard]] int nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_);
  }

  [[nodiscard]] bool contains(CellId3 id) const noexcept {
    return id.x >= 0 && id.x < nx_ && id.y >= 0 && id.y < ny_ && id.z >= 0 &&
           id.z < nz_;
  }

  [[nodiscard]] std::size_t index_of(CellId3 id) const {
    CF_EXPECTS(contains(id));
    return (static_cast<std::size_t>(id.z) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(id.y)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(id.x);
  }

  [[nodiscard]] CellId3 id_of(std::size_t index) const {
    CF_EXPECTS(index < cell_count());
    const auto nx = static_cast<std::size_t>(nx_);
    const auto ny = static_cast<std::size_t>(ny_);
    return CellId3{static_cast<std::int32_t>(index % nx),
                   static_cast<std::int32_t>((index / nx) % ny),
                   static_cast<std::int32_t>(index / (nx * ny))};
  }

  [[nodiscard]] OptCellId3 neighbor(CellId3 id, Direction3 d) const {
    CF_EXPECTS(contains(id));
    CellId3 n = id;
    n[d.axis] += d.sign;
    if (!contains(n)) return std::nullopt;
    return n;
  }

  [[nodiscard]] std::vector<CellId3> neighbors(CellId3 id) const;

  /// True iff the cells share a face.
  [[nodiscard]] bool are_neighbors(CellId3 a, CellId3 b) const noexcept;

  /// Direction from `from` to face-adjacent `to`.
  /// Precondition: are_neighbors(from, to).
  [[nodiscard]] Direction3 direction_between(CellId3 from, CellId3 to) const;

  [[nodiscard]] int manhattan(CellId3 a, CellId3 b) const noexcept {
    int d = 0;
    for (int axis = 0; axis < 3; ++axis) {
      const int delta = a[axis] - b[axis];
      d += delta >= 0 ? delta : -delta;
    }
    return d;
  }

  [[nodiscard]] std::vector<CellId3> all_cells() const;

 private:
  int nx_;
  int ny_;
  int nz_;
};

}  // namespace cellflow
