// §III-A oracles lifted to the 3-D extension: Safe (center separation ≥ d
// along SOME of the three axes), Invariant 1 (members inside their cube),
// Invariant 2 (disjoint membership), and predicate H (granted signal ⇒
// entry strip clear).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flow3d/system3.hpp"

namespace cellflow {

struct Violation3 {
  std::string predicate;
  CellId3 cell;
  std::string detail;
};

[[nodiscard]] std::optional<Violation3> check_safe3(const System3& sys,
                                                    double eps = 1e-9);
[[nodiscard]] std::optional<Violation3> check_bounds3(const System3& sys,
                                                      double eps = 1e-9);
[[nodiscard]] std::optional<Violation3> check_disjoint3(const System3& sys);
[[nodiscard]] std::optional<Violation3> check_h3(const System3& sys,
                                                 double eps = 1e-9);

[[nodiscard]] std::vector<Violation3> check_all3(const System3& sys,
                                                 double eps = 1e-9);

[[nodiscard]] std::string to_string(const Violation3& v);

}  // namespace cellflow
