// The protocol on the hexagonal tessellation — what changes and why.
//
// The square-grid design carries over wholesale: per-round Route
// (Bellman–Ford with id tie-break), the token/signal blocking discipline,
// simultaneous movement, source injection, fail/recover. Three things had
// to be re-derived for non-square cells:
//
// 1. MEMBERSHIP IS BY CENTER. On squares, entities transfer when their
//    *edge* touches the boundary and are then snapped flush inside the
//    next cell. The snap is what keeps Invariant 1 tidy there, but for
//    general polygons it breaks safety: two entities crossing together
//    would both be snapped to the same edge offset, collapsing the
//    component of their separation along the edge normal. Here an entity
//    belongs to the cell containing its CENTER, transfers happen when the
//    center crosses the shared edge, and positions are never adjusted —
//    transfer is pure relabeling. Identical motion plus relabeling means
//    every intra-cell pairwise distance is preserved by construction.
//    (Entities may physically straddle an edge mid-transit, the hex
//    analogue of the paper's tolerated adjacent-cell proximity.)
//
// 2. SAFE IS EUCLIDEAN. With circular entities (diameter l) the natural
//    predicate is pairwise center distance ≥ d = l + rs within each cell
//    (physical edge gap ≥ rs). Axis disjunctions don't generalize to six
//    edge directions; plain L2 does, and the continuous transfer of (1)
//    is exactly what makes it inductive.
//
// 3. STRIP DEPTH IS d + v, measured from the shared edge to entity
//    CENTERS — at grant time AND through the round. A grant admits an
//    entity whose center ends up to v PAST the edge (into the granting
//    cell), so for the pair to end the round ≥ d apart the residents
//    must still be ≥ d + v from the edge after their own movement; the
//    compaction step enforces this as an explicit per-entity floor
//    toward the promised edge. (Mutual grants cannot deliver in the
//    same round: the Lemma-4 argument survives verbatim — a cell about
//    to push an entity over an edge has that entity inside its own
//    strip toward the receiver, so it cannot simultaneously have
//    granted the reverse direction.)
//
// Feasibility: d + v ≤ a (the strip fits inside the inradius) and l ≤ a.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "hexflow/hex_grid.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

struct HexEntity {
  EntityId id;
  Vec2 center;

  friend bool operator==(const HexEntity&, const HexEntity&) noexcept =
      default;
};

struct HexCellState {
  std::vector<HexEntity> members;
  Dist dist = Dist::infinity();
  OptHexId next;
  OptHexId token;
  OptHexId signal;
  std::vector<HexId> ne_prev;
  bool failed = false;

  [[nodiscard]] bool has_entities() const noexcept { return !members.empty(); }
  [[nodiscard]] const HexEntity* find(EntityId id) const noexcept {
    for (const HexEntity& e : members)
      if (e.id == id) return &e;
    return nullptr;
  }
};

struct HexSystemConfig {
  int side = 6;                      ///< N×N rhombus of hexagons
  Params params{0.25, 0.05, 0.1};
  HexId target{1, 4};
  std::vector<HexId> sources{HexId{1, 0}};
};

/// True iff the params satisfy the hexagonal feasibility conditions
/// (d + v ≤ inradius, l ≤ inradius) on top of Params' own constraints.
[[nodiscard]] bool hex_feasible(const Params& params) noexcept;

class HexSystem {
 public:
  explicit HexSystem(HexSystemConfig config);

  [[nodiscard]] const HexGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] HexId target() const noexcept { return config_.target; }

  [[nodiscard]] const HexCellState& cell(HexId id) const {
    return cells_[grid_.index_of(id)];
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }
  [[nodiscard]] std::size_t entity_count() const noexcept;

  [[nodiscard]] std::vector<Dist> reference_distances() const;

  void fail(HexId id);
  void recover(HexId id);

  void update();

  /// Validated direct placement (tests / initial conditions): center
  /// inside the cell's hexagon, pairwise L2 spacing ≥ d.
  EntityId seed_entity(HexId id, Vec2 center);

  /// True iff the strip toward `toward` is clear: every member's center
  /// at distance ≥ d + v from the shared edge.
  [[nodiscard]] bool strip_clear(HexId self, HexId toward) const;

  /// Signed distance from a point to the edge shared with `toward`,
  /// positive inside `self` (i.e. a − projection onto the edge normal).
  [[nodiscard]] double edge_distance(HexId self, HexId toward, Vec2 p) const;

  /// True iff `p` lies inside cell `id`'s hexagon (strictly, up to eps).
  [[nodiscard]] bool inside_hex(HexId id, Vec2 p, double eps = 0.0) const;

 private:
  void run_route_phase();
  void run_signal_phase();
  void run_move_phase();
  void run_inject_phase();
  [[nodiscard]] static HexId rotate_choice(
      std::span<const HexId> sorted_candidates, const OptHexId& previous);

  HexSystemConfig config_;
  HexGrid grid_;
  std::vector<HexCellState> cells_;

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  std::vector<Dist> dist_snapshot_;
};

/// Safe-hex oracle: pairwise center distance ≥ d within every cell.
/// Returns a description of the first violation, or empty.
[[nodiscard]] std::string check_hex_safe(const HexSystem& sys,
                                         double eps = 1e-9);

/// Membership oracle: every entity's center inside its cell's hexagon.
[[nodiscard]] std::string check_hex_membership(const HexSystem& sys,
                                               double eps = 1e-9);

}  // namespace cellflow
