#include "hexflow/hex_grid.hpp"

#include <cmath>
#include <sstream>

namespace cellflow {

std::string to_string(HexId id) {
  std::ostringstream os;
  os << "<q" << id.q << ",r" << id.r << '>';
  return os.str();
}

std::string to_string(const OptHexId& id) {
  return id.has_value() ? to_string(*id) : std::string("_|_");
}

std::vector<HexId> HexGrid::neighbors(HexId id) const {
  CF_EXPECTS(contains(id));
  std::vector<HexId> out;
  out.reserve(6);
  for (int k = 0; k < 6; ++k) {
    if (const auto n = neighbor(id, k)) out.push_back(*n);
  }
  return out;
}

bool HexGrid::are_neighbors(HexId a, HexId b) const noexcept {
  const std::int32_t dq = b.q - a.q;
  const std::int32_t dr = b.r - a.r;
  for (const auto& d : kHexDirections) {
    if (d[0] == dq && d[1] == dr) return true;
  }
  return false;
}

Vec2 HexGrid::edge_normal(HexId from, HexId to) const {
  CF_EXPECTS_MSG(are_neighbors(from, to), "cells do not share an edge");
  const Vec2 delta = center(to) - center(from);
  const double len = std::hypot(delta.x, delta.y);
  return Vec2{delta.x / len, delta.y / len};
}

int HexGrid::hex_distance(HexId a, HexId b) const noexcept {
  // Axial-coordinate hex distance via the cube-coordinate identity.
  const int dq = a.q - b.q;
  const int dr = a.r - b.r;
  const int ds = -dq - dr;
  return (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
}

std::vector<HexId> HexGrid::all_cells() const {
  std::vector<HexId> out;
  out.reserve(cell_count());
  for (std::size_t k = 0; k < cell_count(); ++k) out.push_back(id_of(k));
  return out;
}

}  // namespace cellflow
