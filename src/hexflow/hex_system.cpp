#include "hexflow/hex_system.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace cellflow {

namespace {

/// Unit normal for direction slot k (independent of any concrete cell —
/// the lattice is translation-invariant).
Vec2 slot_normal(int k) {
  const auto dq = static_cast<double>(kHexDirections[static_cast<std::size_t>(k)][0]);
  const auto dr = static_cast<double>(kHexDirections[static_cast<std::size_t>(k)][1]);
  constexpr double kSqrt3 = 1.7320508075688772;
  const Vec2 delta{kSqrt3 * (dq + dr / 2.0), 1.5 * dr};
  const double len = std::hypot(delta.x, delta.y);
  return Vec2{delta.x / len, delta.y / len};
}

double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

}  // namespace

bool hex_feasible(const Params& params) noexcept {
  return params.center_spacing() + params.velocity() <= kHexInradius &&
         params.entity_length() <= kHexInradius;
}

HexSystem::HexSystem(HexSystemConfig config)
    : config_(std::move(config)),
      grid_(config_.side),
      cells_(grid_.cell_count()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  CF_EXPECTS_MSG(hex_feasible(config_.params),
                 "hex feasibility: d + v <= inradius and l <= inradius");
  for (const HexId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  cells_[grid_.index_of(config_.target)].dist = Dist::zero();
  dist_snapshot_.resize(cells_.size());
}

std::size_t HexSystem::entity_count() const noexcept {
  std::size_t n = 0;
  for (const HexCellState& c : cells_) n += c.members.size();
  return n;
}

std::vector<Dist> HexSystem::reference_distances() const {
  std::vector<Dist> dist(grid_.cell_count(), Dist::infinity());
  if (cells_[grid_.index_of(config_.target)].failed) return dist;
  std::deque<HexId> frontier;
  dist[grid_.index_of(config_.target)] = Dist::zero();
  frontier.push_back(config_.target);
  while (!frontier.empty()) {
    const HexId cur = frontier.front();
    frontier.pop_front();
    const Dist next_d = dist[grid_.index_of(cur)].plus_one();
    for (const HexId nb : grid_.neighbors(cur)) {
      if (cells_[grid_.index_of(nb)].failed) continue;
      if (dist[grid_.index_of(nb)].is_infinite()) {
        dist[grid_.index_of(nb)] = next_d;
        frontier.push_back(nb);
      }
    }
  }
  return dist;
}

void HexSystem::fail(HexId id) {
  CF_EXPECTS(grid_.contains(id));
  HexCellState& c = cells_[grid_.index_of(id)];
  c.failed = true;
  c.dist = Dist::infinity();
  c.next = std::nullopt;
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
}

void HexSystem::recover(HexId id) {
  CF_EXPECTS(grid_.contains(id));
  HexCellState& c = cells_[grid_.index_of(id)];
  if (!c.failed) return;
  c.failed = false;
  c.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  c.next = std::nullopt;
  c.token = std::nullopt;
  c.signal = std::nullopt;
  c.ne_prev.clear();
}

double HexSystem::edge_distance(HexId self, HexId toward, Vec2 p) const {
  const Vec2 n = grid_.edge_normal(self, toward);
  return kHexInradius - dot(p - grid_.center(self), n);
}

bool HexSystem::inside_hex(HexId id, Vec2 p, double eps) const {
  const Vec2 c = grid_.center(id);
  for (int k = 0; k < 6; ++k) {
    if (dot(p - c, slot_normal(k)) > kHexInradius + eps) return false;
  }
  return true;
}

bool HexSystem::strip_clear(HexId self, HexId toward) const {
  const double need = config_.params.center_spacing() +
                      config_.params.velocity();  // d + v (see header)
  for (const HexEntity& p : cells_[grid_.index_of(self)].members) {
    if (edge_distance(self, toward, p.center) < need) return false;
  }
  return true;
}

void HexSystem::update() {
  run_route_phase();
  run_signal_phase();
  run_move_phase();
  run_inject_phase();
  ++round_;
}

void HexSystem::run_route_phase() {
  for (std::size_t k = 0; k < cells_.size(); ++k)
    dist_snapshot_[k] = cells_[k].dist;
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    HexCellState& c = cells_[k];
    if (c.failed) continue;
    const HexId id = grid_.id_of(k);
    if (id == config_.target) {
      c.dist = Dist::zero();
      c.next = std::nullopt;
      continue;
    }
    OptHexId best;
    Dist best_dist = Dist::infinity();
    for (int slot = 0; slot < 6; ++slot) {
      const auto nb = grid_.neighbor(id, slot);
      if (!nb) continue;
      const Dist nd = dist_snapshot_[grid_.index_of(*nb)];
      if (!best.has_value() || nd < best_dist ||
          (nd == best_dist && *nb < *best)) {
        best = *nb;
        best_dist = nd;
      }
    }
    c.dist = best_dist.plus_one();
    c.next = c.dist.is_infinite() ? std::nullopt : best;
  }
}

HexId HexSystem::rotate_choice(std::span<const HexId> sorted_candidates,
                               const OptHexId& previous) {
  CF_EXPECTS(!sorted_candidates.empty());
  if (!previous.has_value()) return sorted_candidates.front();
  const auto it = std::upper_bound(sorted_candidates.begin(),
                                   sorted_candidates.end(), *previous);
  return it == sorted_candidates.end() ? sorted_candidates.front() : *it;
}

void HexSystem::run_signal_phase() {
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    HexCellState& c = cells_[k];
    if (c.failed) continue;
    const HexId id = grid_.id_of(k);

    std::vector<HexId> ne_prev;
    for (int slot = 0; slot < 6; ++slot) {
      const auto nb = grid_.neighbor(id, slot);
      if (!nb) continue;
      const HexCellState& nc = cells_[grid_.index_of(*nb)];
      if (nc.failed) continue;
      if (nc.next == OptHexId{id} && nc.has_entities())
        ne_prev.push_back(*nb);
    }
    std::sort(ne_prev.begin(), ne_prev.end());

    if (c.token.has_value() && !grid_.are_neighbors(id, *c.token))
      c.token = std::nullopt;  // corruption hygiene
    if (!c.token.has_value() && !ne_prev.empty())
      c.token = rotate_choice(ne_prev, std::nullopt);

    if (!c.token.has_value()) {
      c.signal = std::nullopt;
      c.ne_prev = std::move(ne_prev);
      continue;
    }
    if (strip_clear(id, *c.token)) {
      c.signal = c.token;
      if (ne_prev.size() > 1) {
        std::vector<HexId> others;
        for (const HexId cand : ne_prev)
          if (cand != *c.token) others.push_back(cand);
        c.token = rotate_choice(others, c.token);
      } else if (ne_prev.size() == 1) {
        c.token = ne_prev.front();
      } else {
        c.token = std::nullopt;
      }
    } else {
      c.signal = std::nullopt;  // blocked; token retained
    }
    c.ne_prev = std::move(ne_prev);
  }
}

void HexSystem::run_move_phase() {
  // Hexagonal movement uses the compaction discipline (see the header's
  // point 1: rigid coupling is unsound near hexagon corners). Entities
  // advance front-to-back along the motion normal; each is capped by the
  // five non-granted edge planes, by the promised-strip margin of this
  // cell's own signal, and by the d-ball of every already-moved
  // cellmate. Crossing the granted edge requires the permission.
  struct Pending {
    HexEntity entity;
    HexId from;
    HexId to;
  };
  std::vector<Pending> pending;
  const double d = config_.params.center_spacing();
  const double v = config_.params.velocity();

  for (std::size_t k = 0; k < cells_.size(); ++k) {
    HexCellState& c = cells_[k];
    if (c.failed || !c.next.has_value() || c.members.empty()) continue;
    const HexId id = grid_.id_of(k);
    const HexId dest = *c.next;
    const bool permitted =
        cells_[grid_.index_of(dest)].signal == OptHexId{id};
    const Vec2 n = grid_.edge_normal(id, dest);
    const Vec2 cc = grid_.center(id);

    // Front-to-back along the motion normal.
    std::sort(c.members.begin(), c.members.end(),
              [&](const HexEntity& a, const HexEntity& b) {
                return dot(a.center - cc, n) > dot(b.center - cc, n);
              });

    std::vector<HexEntity> placed;
    placed.reserve(c.members.size());
    // Crossed entities still constrain the entities behind them: two
    // cellmates can cross in the same round and land in the same
    // destination cell, so the d-spacing cap must hold against every
    // already-processed entity, not just the ones that stayed.
    std::vector<Vec2> processed;
    processed.reserve(c.members.size());
    for (HexEntity p : c.members) {
      double cap = v;
      // Edge-plane caps: for every direction slot, distance to that edge
      // shrinks at rate (n · n_slot) when positive.
      for (int slot = 0; slot < 6; ++slot) {
        const Vec2 ns = slot_normal(slot);
        const double rate = dot(n, ns);
        if (rate <= 1e-12) continue;
        const double dist_to_edge =
            kHexInradius - dot(p.center - cc, ns);
        const auto nb = grid_.neighbor(id, slot);
        double floor_dist = 0.0;  // may reach the plane, not beyond
        if (nb && *nb == dest && permitted) {
          continue;  // the granted edge: crossing allowed
        }
        if (c.signal.has_value() && nb && *nb == *c.signal) {
          // Keep the promised strip clear through the round: the
          // admitted entity may end up to v PAST the edge, so residents
          // must stay ≥ d + v from it for the pair to end ≥ d apart.
          floor_dist = d + v;
        }
        cap = std::min(cap, (dist_to_edge - floor_dist) / rate);
      }
      // Cellmate caps: stay ≥ d (Euclidean) from everyone already moved,
      // whether they stayed or crossed.
      for (const Vec2 q : processed) {
        const Vec2 w = q - p.center;
        const double along = dot(w, n);
        if (along <= 0.0) continue;
        const double perp2 = dot(w, w) - along * along;
        if (perp2 >= d * d) continue;
        cap = std::min(cap, along - std::sqrt(d * d - perp2));
      }
      cap = std::max(cap, 0.0);
      p.center += cap * n;
      processed.push_back(p.center);
      // Transfer when the center has crossed the granted edge plane.
      if (permitted &&
          dot(p.center - cc, n) > kHexInradius + 1e-15) {
        pending.push_back(Pending{p, id, dest});
      } else {
        placed.push_back(p);
      }
    }
    c.members = std::move(placed);
  }

  for (Pending& t : pending) {
    if (t.to == config_.target) {
      ++total_arrivals_;
    } else {
      cells_[grid_.index_of(t.to)].members.push_back(t.entity);
    }
  }
}

void HexSystem::run_inject_phase() {
  const double d = config_.params.center_spacing();
  for (const HexId s : config_.sources) {
    HexCellState& c = cells_[grid_.index_of(s)];
    if (c.failed) continue;
    // Inject at the point opposite the travel direction, pulled in so a
    // freshly injected entity sits (d + v) clear of the promised strip
    // region on the far side.
    Vec2 center = grid_.center(s);
    if (c.next.has_value()) {
      const Vec2 n = grid_.edge_normal(s, *c.next);
      center += (-(kHexInradius - d / 2.0)) * n;
    }
    // Validations: inside the hexagon, pairwise spacing, promised strip.
    if (!inside_hex(s, center)) continue;
    bool ok = true;
    for (const HexEntity& q : c.members) {
      if (l2_distance(center, q.center) < d) {
        ok = false;
        break;
      }
    }
    if (ok && c.token.has_value()) {
      const double dist_to_token_edge = edge_distance(s, *c.token, center);
      const bool was_clear = strip_clear(s, *c.token);
      if (was_clear &&
          dist_to_token_edge < d + config_.params.velocity())
        ok = false;  // would re-block the neighbor being served
    }
    if (!ok) continue;
    c.members.push_back(HexEntity{EntityId{next_entity_id_++}, center});
  }
}

EntityId HexSystem::seed_entity(HexId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS_MSG(inside_hex(id, center), "seed: center outside the hexagon");
  const double d = config_.params.center_spacing();
  for (const HexEntity& q : cells_[grid_.index_of(id)].members) {
    CF_EXPECTS_MSG(l2_distance(center, q.center) >= d,
                   "seed: violates the spacing requirement");
  }
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(HexEntity{eid, center});
  return eid;
}

std::string check_hex_safe(const HexSystem& sys, double eps) {
  const double d = sys.params().center_spacing();
  for (const HexId id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        if (l2_distance(members[a].center, members[b].center) < d - eps) {
          std::ostringstream os;
          os << "SafeHex violated at " << to_string(id) << ": "
             << to_string(members[a].id) << " vs "
             << to_string(members[b].id);
          return os.str();
        }
      }
    }
  }
  return {};
}

std::string check_hex_membership(const HexSystem& sys, double eps) {
  for (const HexId id : sys.grid().all_cells()) {
    for (const HexEntity& p : sys.cell(id).members) {
      if (!sys.inside_hex(id, p.center, eps)) {
        std::ostringstream os;
        os << "Membership violated at " << to_string(id) << ": "
           << to_string(p.id) << " center outside its hexagon";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace cellflow
