// Hexagonal tessellation (paper §V): "The case for arbitrary
// tessellations of the plane seems interesting as well as challenging,
// particularly if the algorithms are to have asymptotically optimal
// throughput." This module instantiates the protocol on the canonical
// non-square tessellation — the regular hexagonal grid — and documents
// exactly which parts of the square-grid design carry over and which had
// to change (see hex_system.hpp).
//
// Geometry: pointy-top regular hexagons of side s = 1, inradius
// a = √3/2, laid out in axial coordinates (q, r) over an N×N rhombus.
// A cell's six neighbors sit at center distance 2a; the shared edge is
// the perpendicular bisector of the center segment, so the *unit vector
// toward the neighbor's center is the shared edge's normal* — all strip,
// crossing, and movement arithmetic reduces to projections onto that
// normal.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "util/check.hpp"

namespace cellflow {

/// Axial-coordinate identifier of a hexagonal cell. Ordered
/// lexicographically (q, then r) — the Route tie-break order.
struct HexId {
  std::int32_t q = 0;
  std::int32_t r = 0;

  friend constexpr auto operator<=>(const HexId&, const HexId&) = default;
};

using OptHexId = std::optional<HexId>;

[[nodiscard]] std::string to_string(HexId id);
[[nodiscard]] std::string to_string(const OptHexId& id);

/// The six axial neighbor offsets, in the deterministic order used for
/// iteration (and thus token round-robin).
inline constexpr std::array<std::array<std::int32_t, 2>, 6> kHexDirections = {
    {{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}}};

/// Side length of every hexagon (fixed at 1).
inline constexpr double kHexSide = 1.0;
/// Inradius a = √3/2 · s: distance from a cell center to each edge.
inline constexpr double kHexInradius = 0.8660254037844386;

class HexGrid {
 public:
  /// N×N rhombus of cells, axial coordinates in [0,N)². N ≥ 1.
  explicit HexGrid(int side) : side_(side) {
    CF_EXPECTS_MSG(side >= 1, "hex grid side must be positive");
  }

  [[nodiscard]] int side() const noexcept { return side_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }

  [[nodiscard]] bool contains(HexId id) const noexcept {
    return id.q >= 0 && id.q < side_ && id.r >= 0 && id.r < side_;
  }

  [[nodiscard]] std::size_t index_of(HexId id) const {
    CF_EXPECTS(contains(id));
    return static_cast<std::size_t>(id.r) * static_cast<std::size_t>(side_) +
           static_cast<std::size_t>(id.q);
  }

  [[nodiscard]] HexId id_of(std::size_t index) const {
    CF_EXPECTS(index < cell_count());
    return HexId{
        static_cast<std::int32_t>(index % static_cast<std::size_t>(side_)),
        static_cast<std::int32_t>(index / static_cast<std::size_t>(side_))};
  }

  /// Euclidean center of a cell (pointy-top axial layout).
  [[nodiscard]] Vec2 center(HexId id) const noexcept {
    constexpr double kSqrt3 = 1.7320508075688772;
    return Vec2{kSqrt3 * (static_cast<double>(id.q) +
                          static_cast<double>(id.r) / 2.0),
                1.5 * static_cast<double>(id.r)};
  }

  /// Neighbor in direction slot k ∈ [0,6), or nullopt off the rhombus.
  [[nodiscard]] OptHexId neighbor(HexId id, int k) const {
    CF_EXPECTS(contains(id));
    CF_EXPECTS(k >= 0 && k < 6);
    const HexId n{id.q + kHexDirections[static_cast<std::size_t>(k)][0],
                  id.r + kHexDirections[static_cast<std::size_t>(k)][1]};
    if (!contains(n)) return std::nullopt;
    return n;
  }

  [[nodiscard]] std::vector<HexId> neighbors(HexId id) const;

  [[nodiscard]] bool are_neighbors(HexId a, HexId b) const noexcept;

  /// Unit normal of the edge shared with adjacent `to` — also the motion
  /// direction toward it. Precondition: are_neighbors(from, to).
  [[nodiscard]] Vec2 edge_normal(HexId from, HexId to) const;

  /// Hop (graph) distance on the axial lattice, ignoring failures.
  [[nodiscard]] int hex_distance(HexId a, HexId b) const noexcept;

  [[nodiscard]] std::vector<HexId> all_cells() const;

 private:
  int side_;
};

}  // namespace cellflow
