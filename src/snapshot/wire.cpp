#include "snapshot/wire.hpp"

#include <bit>

#include "util/check.hpp"

namespace cellflow::snapshot {

namespace {

constexpr std::size_t kMagicBytes = 4;
constexpr std::size_t kVersionBytes = 4;
constexpr std::size_t kChecksumBytes = 8;
constexpr std::size_t kSectionHeaderBytes = 4 + 8;  // tag + length

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v,
               std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xFFu));
  }
}

std::uint64_t read_le(std::span<const std::uint8_t> bytes, std::size_t at,
                      std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < n; ++b) {
    v |= static_cast<std::uint64_t>(bytes[at + b]) << (8 * b);
  }
  return v;
}

}  // namespace

const char* to_string(Errc code) noexcept {
  switch (code) {
    case Errc::kTruncated: return "truncated";
    case Errc::kBadMagic: return "bad magic";
    case Errc::kBadVersion: return "bad version";
    case Errc::kChecksumMismatch: return "checksum mismatch";
    case Errc::kUnknownTag: return "unknown tag";
    case Errc::kDuplicateTag: return "duplicate tag";
    case Errc::kOutOfOrderTag: return "out-of-order tag";
    case Errc::kMissingSection: return "missing section";
    case Errc::kMalformed: return "malformed field";
    case Errc::kTrailingBytes: return "trailing bytes in section";
    case Errc::kConfigMismatch: return "engine config mismatch";
  }
  return "unknown error";
}

void fail(Errc code, const std::string& what) {
  throw SnapshotError(code, std::string("snapshot: ") + to_string(code) +
                                ": " + what);
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void DigestAccumulator::f64(double value) noexcept {
  u64(std::bit_cast<std::uint64_t>(value));
}

Writer::Writer(std::array<std::uint8_t, 4> magic, std::uint32_t version) {
  bytes_.reserve(256);
  for (const std::uint8_t b : magic) bytes_.push_back(b);
  append_le(bytes_, version, kVersionBytes);
}

void Writer::begin_section(std::uint32_t tag) {
  CF_EXPECTS_MSG(!in_section_ && !finished_, "writer misuse");
  append_le(bytes_, tag, 4);
  section_start_ = bytes_.size();
  append_le(bytes_, 0, 8);  // length placeholder, patched by end_section
  in_section_ = true;
}

void Writer::end_section() {
  CF_EXPECTS_MSG(in_section_, "no open section");
  const std::uint64_t len =
      static_cast<std::uint64_t>(bytes_.size() - section_start_ - 8);
  for (std::size_t b = 0; b < 8; ++b) {
    bytes_[section_start_ + b] =
        static_cast<std::uint8_t>((len >> (8 * b)) & 0xFFu);
  }
  in_section_ = false;
}

void Writer::u8(std::uint8_t v) {
  CF_EXPECTS_MSG(in_section_, "write outside section");
  bytes_.push_back(v);
}

void Writer::u32(std::uint32_t v) {
  CF_EXPECTS_MSG(in_section_, "write outside section");
  append_le(bytes_, v, 4);
}

void Writer::u64(std::uint64_t v) {
  CF_EXPECTS_MSG(in_section_, "write outside section");
  append_le(bytes_, v, 8);
}

void Writer::i32(std::int32_t v) {
  u32(static_cast<std::uint32_t>(v));
}

void Writer::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

std::vector<std::uint8_t> Writer::finish() {
  CF_EXPECTS_MSG(!in_section_ && !finished_, "writer misuse");
  finished_ = true;
  const std::uint64_t checksum = fnv1a(bytes_);
  append_le(bytes_, checksum, kChecksumBytes);
  return std::move(bytes_);
}

Reader::Reader(std::span<const std::uint8_t> bytes,
               std::array<std::uint8_t, 4> magic, std::uint32_t version,
               std::uint32_t min_tag, std::uint32_t max_tag)
    : bytes_(bytes), min_tag_(min_tag), max_tag_(max_tag) {
  if (bytes_.size() < kMagicBytes + kVersionBytes + kChecksumBytes) {
    fail(Errc::kTruncated, "buffer smaller than envelope (" +
                               std::to_string(bytes_.size()) + " bytes)");
  }
  for (std::size_t b = 0; b < kMagicBytes; ++b) {
    if (bytes_[b] != magic[b]) fail(Errc::kBadMagic, "wrong file type");
  }
  const auto got_version =
      static_cast<std::uint32_t>(read_le(bytes_, kMagicBytes, 4));
  if (got_version != version) {
    fail(Errc::kBadVersion, "version " + std::to_string(got_version) +
                                ", expected " + std::to_string(version));
  }
  payload_end_ = bytes_.size() - kChecksumBytes;
  const std::uint64_t stored = read_le(bytes_, payload_end_, 8);
  const std::uint64_t actual = fnv1a(bytes_.subspan(0, payload_end_));
  if (stored != actual) {
    fail(Errc::kChecksumMismatch, "stored checksum does not match payload");
  }
  cursor_ = kMagicBytes + kVersionBytes;
  section_end_ = cursor_;
}

std::optional<std::uint32_t> Reader::next_section() {
  CF_EXPECTS_MSG(!in_section_, "previous section not closed");
  if (cursor_ == payload_end_) return std::nullopt;
  if (payload_end_ - cursor_ < kSectionHeaderBytes) {
    fail(Errc::kMalformed, "dangling partial section header");
  }
  const auto tag = static_cast<std::uint32_t>(read_le(bytes_, cursor_, 4));
  const std::uint64_t len = read_le(bytes_, cursor_ + 4, 8);
  cursor_ += kSectionHeaderBytes;
  if (tag < min_tag_ || tag > max_tag_) {
    fail(Errc::kUnknownTag, "tag " + std::to_string(tag));
  }
  if (last_tag_) {
    if (tag == *last_tag_) {
      fail(Errc::kDuplicateTag, "tag " + std::to_string(tag));
    }
    if (tag < *last_tag_) {
      fail(Errc::kOutOfOrderTag, "tag " + std::to_string(tag) + " after " +
                                     std::to_string(*last_tag_));
    }
  }
  last_tag_ = tag;
  if (len > payload_end_ - cursor_) {
    fail(Errc::kMalformed, "section length overruns buffer");
  }
  section_end_ = cursor_ + len;
  in_section_ = true;
  return tag;
}

void Reader::close_section() {
  CF_EXPECTS_MSG(in_section_, "no open section");
  if (cursor_ != section_end_) {
    fail(Errc::kTrailingBytes, std::to_string(section_end_ - cursor_) +
                                   " unconsumed bytes");
  }
  in_section_ = false;
}

void Reader::need(std::size_t n) const {
  CF_EXPECTS_MSG(in_section_, "read outside section");
  if (section_end_ - cursor_ < n) {
    fail(Errc::kMalformed, "field crosses section boundary");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint32_t Reader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(read_le(bytes_, cursor_, 4));
  cursor_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = read_le(bytes_, cursor_, 8);
  cursor_ += 8;
  return v;
}

std::int32_t Reader::i32() {
  return static_cast<std::int32_t>(u32());
}

double Reader::f64() {
  return std::bit_cast<double>(u64());
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail(Errc::kMalformed, "boolean byte not 0/1");
  return v == 1;
}

std::uint64_t Reader::count(std::uint64_t min_bytes_per_item) {
  CF_EXPECTS(min_bytes_per_item > 0);
  const std::uint64_t n = u64();
  if (n > section_remaining() / min_bytes_per_item) {
    fail(Errc::kMalformed, "element count overruns section");
  }
  return n;
}

}  // namespace cellflow::snapshot
