// Record-replay log for divergence bisection (ROADMAP item 5, DESIGN.md
// §11). A ReplayLog captures everything the *environment* fed a run —
// fail/recover events (whether scripted or drawn from a stochastic
// FailureModel), deliberate control-state corruptions, and the per-round
// injection trace — plus a state digest at every round boundary.
//
// Re-driving: restore any snapshot taken during the recorded run, then
// `replay()` the log. The engine's own Choose/Source policies resume from
// their snapshotted rng state, so injections re-arise naturally and the
// log's injection events act as a consistency check rather than an input.
// The per-boundary digests then pinpoint the FIRST round at which the
// replayed execution deviates from the recorded one — the bisection
// primitive: a corrupted or miscompiled engine state surfaces as
// `first_divergence == the boundary where the states first differ`, not
// as a vague end-of-run mismatch (tests/test_replay.cpp).
//
// The log itself travels in the same strict wire envelope as snapshots
// (magic "CFRL"), so adversarial bytes fail with typed SnapshotErrors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/entity.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {
class FailureModel;
class System;
}  // namespace cellflow

namespace cellflow::snapshot {

/// One round-stamped environment event. `round` is the round the event
/// belongs to: fail/recover/corrupt are applied at the boundary BEFORE
/// round `round` executes; an inject event records an injection performed
/// BY round `round` (an output echoed for consistency checking).
struct ReplayEvent {
  enum class Kind : std::uint8_t {
    kFail = 0,
    kRecover = 1,
    kCorrupt = 2,
    kInject = 3,
  };

  Kind kind = Kind::kFail;
  std::uint64_t round = 0;
  CellId cell;

  // kCorrupt payload: the values written into the cell's control state.
  Dist dist;
  OptCellId next;
  OptCellId token;
  OptCellId signal;

  // kInject payload.
  EntityId entity;
  Vec2 center;
};

/// The recorded run: a starting boundary (round + digest), the event
/// stream (rounds nondecreasing), and one digest per executed round.
/// digests[n] is the boundary digest after round start_round + n executed.
struct ReplayLog {
  std::uint64_t start_round = 0;
  std::uint64_t start_digest = 0;
  std::vector<ReplayEvent> events;
  std::vector<std::uint64_t> digests;

  /// Rounds covered: replay can start at any boundary in
  /// [start_round, start_round + digests.size()].
  [[nodiscard]] std::uint64_t end_round() const noexcept {
    return start_round + digests.size();
  }

  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  /// Strict decode (same guarantees as snapshot restore).
  /// @throws SnapshotError
  [[nodiscard]] static ReplayLog from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// Wraps a System (and optionally the FailureModel driving it) and
/// records a ReplayLog while the run progresses. Call step() instead of
/// `failures->apply(sys); sys.update()`.
class RunRecorder {
 public:
  /// Starts recording at sys's current round boundary. When `failures`
  /// is non-null, step() applies it and diffs the failed flags into
  /// fail/recover events — the stochastic schedule becomes a concrete
  /// recorded trace.
  explicit RunRecorder(System& sys, FailureModel* failures = nullptr);

  /// One recorded round: apply the failure model, execute the round,
  /// record the injection trace and the boundary digest.
  void step();

  /// Applies a deliberate control-state corruption at the current
  /// boundary AND records it, so a replay reproduces the perturbation.
  void note_corrupt(CellId id, Dist dist, OptCellId next, OptCellId token,
                    OptCellId signal);

  [[nodiscard]] const ReplayLog& log() const noexcept { return log_; }

 private:
  System& sys_;
  FailureModel* failures_;
  ReplayLog log_;
  std::vector<bool> prev_failed_;
};

struct ReplayReport {
  std::uint64_t rounds_replayed = 0;
  /// Earliest round boundary whose digest differs from the recording
  /// (the bisection answer); nullopt when the replay tracked the
  /// recording exactly.
  std::optional<std::uint64_t> first_divergence;
  /// False if the replayed engine's injections deviated from the
  /// recorded trace — the restored Source policy is not the one that
  /// drove the recording.
  bool inputs_consistent = true;
};

/// Re-drives `sys` — positioned at any boundary the log covers, e.g.
/// freshly restored from a mid-run snapshot — through the rest of the
/// recorded run, applying the logged environment events and comparing
/// digests at every boundary. Does not stop at the first divergence (the
/// report keeps the earliest); contract-checks that sys.round() lies
/// inside the log's range.
[[nodiscard]] ReplayReport replay(System& sys, const ReplayLog& log);

}  // namespace cellflow::snapshot
