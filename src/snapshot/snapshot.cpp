#include "snapshot/snapshot.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "chunk/chunked_system.hpp"
#include "core/choose.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "msg/msg_system.hpp"
#include "net/faulty_network.hpp"
#include "util/check.hpp"

namespace cellflow::snapshot {

namespace {

constexpr std::array<std::uint8_t, 4> kSnapMagic{'C', 'F', 'S', 'N'};
constexpr std::uint32_t kSnapVersion = 1;

// Section tags, in the exact order the writers emit them (the reader
// enforces strictly increasing tags, so this order IS the format).
enum Tag : std::uint32_t {
  kTagHeader = 1,       // kind, round, arrivals, next entity id
  kTagConfig = 2,       // engine configuration echo (validated on restore)
  kTagCells = 3,        // per-cell Figure-3 state + members
  kTagChoose = 4,       // shared: ChoosePolicy state words
  kTagSource = 5,       // shared: SourcePolicy state words
  kTagFailure = 6,      // shared, optional: FailureModel state words
  kTagLinks = 7,        // message: stop-and-wait sessions per link
  kTagMsgCounters = 8,  // message: realization-level counters
  kTagNetwork = 9,      // message: NetworkModel transport state
  kTagEnvRng = 10,      // message, optional: environment fail/recover rng
  kTagChunks = 11,      // chunked: materialized tiles (live + parked)
};
constexpr std::uint32_t kMinTag = kTagHeader;
constexpr std::uint32_t kMaxTag = kTagChunks;

constexpr std::uint8_t kKindShared = 0;
constexpr std::uint8_t kKindMessage = 1;
constexpr std::uint8_t kKindChunked = 2;

// Chunk state bytes on the wire (== ChunkedCellStore::State values;
// virgin chunks are simply absent from the section).
constexpr std::uint8_t kChunkLive = 1;
constexpr std::uint8_t kChunkParked = 2;

constexpr std::uint64_t kInfDist = ~0ULL;

// Minimum encoded sizes, for Reader::count() bounds.
constexpr std::uint64_t kEntityBytes = 8 + 8 + 8;  // id, x, y
constexpr std::uint64_t kCellBytes = 1 + 8 + 3 * 1 + 1 + 8;  // empty cell
constexpr std::uint64_t kDelayedBytes = 8 + 16 + 1 + 2;  // min payload=intent

std::uint64_t encode_dist(Dist d) {
  return d.is_infinite() ? kInfDist : d.hops();
}

Dist decode_dist(std::uint64_t raw) {
  return raw == kInfDist ? Dist::infinity() : Dist::finite(raw);
}

CellId read_cell_id(Reader& r, const Grid& grid) {
  const std::int32_t i = r.i32();
  const std::int32_t j = r.i32();
  const CellId id{i, j};
  if (!grid.contains(id)) fail(Errc::kMalformed, "cell id off the grid");
  return id;
}

void write_opt_cell(Writer& w, OptCellId c) {
  w.boolean(c.has_value());
  if (c) {
    w.i32(c->i);
    w.i32(c->j);
  }
}

OptCellId read_opt_cell(Reader& r, const Grid& grid) {
  if (!r.boolean()) return std::nullopt;
  return read_cell_id(r, grid);
}

void write_entity(Writer& w, const Entity& e) {
  w.u64(e.id.value);
  w.f64(e.center.x);
  w.f64(e.center.y);
}

Entity read_entity(Reader& r) {
  const std::uint64_t id = r.u64();
  const double x = r.f64();
  const double y = r.f64();
  return Entity{EntityId{id}, Vec2{x, y}};
}

void write_cell(Writer& w, const CellState& c) {
  w.boolean(c.failed);
  w.u64(encode_dist(c.dist));
  write_opt_cell(w, c.next);
  write_opt_cell(w, c.token);
  write_opt_cell(w, c.signal);
  w.u8(static_cast<std::uint8_t>(c.ne_prev.size()));
  for (const CellId id : c.ne_prev) {
    w.i32(id.i);
    w.i32(id.j);
  }
  w.u64(static_cast<std::uint64_t>(c.members.size()));
  for (const Entity& e : c.members) write_entity(w, e);
}

CellState read_cell(Reader& r, const Grid& grid) {
  CellState c;
  c.failed = r.boolean();
  c.dist = decode_dist(r.u64());
  c.next = read_opt_cell(r, grid);
  c.token = read_opt_cell(r, grid);
  c.signal = read_opt_cell(r, grid);
  const std::uint8_t nne = r.u8();
  if (nne > 8) fail(Errc::kMalformed, "NEPrev beyond lattice degree bound");
  for (std::uint8_t n = 0; n < nne; ++n) c.ne_prev.push_back(read_cell_id(r, grid));
  const std::uint64_t nm = r.count(kEntityBytes);
  c.members.reserve(static_cast<std::size_t>(nm));
  for (std::uint64_t n = 0; n < nm; ++n) c.members.push_back(read_entity(r));
  return c;
}

void write_words(Writer& w, std::span<const std::uint64_t> words) {
  w.u64(static_cast<std::uint64_t>(words.size()));
  for (const std::uint64_t word : words) w.u64(word);
}

std::vector<std::uint64_t> read_words(Reader& r) {
  const std::uint64_t n = r.count(8);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
  for (auto& word : words) word = r.u64();
  return words;
}

void write_payload(Writer& w, const Payload& p) {
  w.u8(static_cast<std::uint8_t>(p.index()));
  switch (payload_type_of(p)) {
    case PayloadType::kDist:
      w.u64(encode_dist(std::get<DistAnnounce>(p).dist));
      return;
    case PayloadType::kIntent: {
      const auto& intent = std::get<IntentAnnounce>(p);
      write_opt_cell(w, intent.next);
      w.boolean(intent.has_entities);
      return;
    }
    case PayloadType::kGrant: {
      const auto& grant = std::get<GrantAnnounce>(p);
      write_opt_cell(w, grant.signal);
      w.u64(grant.seq);
      w.u64(grant.round);
      return;
    }
    case PayloadType::kTransfer: {
      const auto& batch = std::get<TransferBatch>(p);
      w.u64(batch.seq);
      w.u64(static_cast<std::uint64_t>(batch.entities.size()));
      for (const Entity& e : batch.entities) write_entity(w, e);
      return;
    }
    case PayloadType::kAck:
      w.u64(std::get<TransferAck>(p).seq);
      return;
  }
}

Payload read_payload(Reader& r, const Grid& grid) {
  const std::uint8_t type = r.u8();
  switch (type) {
    case 0:
      return DistAnnounce{decode_dist(r.u64())};
    case 1: {
      IntentAnnounce intent;
      intent.next = read_opt_cell(r, grid);
      intent.has_entities = r.boolean();
      return intent;
    }
    case 2: {
      GrantAnnounce grant;
      grant.signal = read_opt_cell(r, grid);
      grant.seq = r.u64();
      grant.round = r.u64();
      return grant;
    }
    case 3: {
      TransferBatch batch;
      batch.seq = r.u64();
      const std::uint64_t n = r.count(kEntityBytes);
      batch.entities.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t k = 0; k < n; ++k)
        batch.entities.push_back(read_entity(r));
      return batch;
    }
    case 4:
      return TransferAck{r.u64()};
    default:
      fail(Errc::kMalformed, "payload type byte");
  }
}

void write_config(Writer& w, int side, const Params& params,
                  CellId target, std::span<const CellId> sources,
                  std::uint8_t signal_rule, std::uint8_t movement_rule) {
  w.u32(static_cast<std::uint32_t>(side));
  w.f64(params.entity_length());
  w.f64(params.safety_gap());
  w.f64(params.velocity());
  w.i32(target.i);
  w.i32(target.j);
  w.u8(signal_rule);
  w.u8(movement_rule);
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const CellId s : sources) {
    w.i32(s.i);
    w.i32(s.j);
  }
}

/// Reads the config echo and compares against the restore target; any
/// difference means the caller built a non-equivalent engine.
void check_config(Reader& r, int side, const Params& params,
                  CellId target, std::span<const CellId> sources,
                  std::uint8_t signal_rule, std::uint8_t movement_rule) {
  if (r.u32() != static_cast<std::uint32_t>(side)) {
    fail(Errc::kConfigMismatch, "grid side");
  }
  if (r.f64() != params.entity_length()) {
    fail(Errc::kConfigMismatch, "entity length l");
  }
  if (r.f64() != params.safety_gap()) {
    fail(Errc::kConfigMismatch, "safety gap rs");
  }
  if (r.f64() != params.velocity()) {
    fail(Errc::kConfigMismatch, "velocity v");
  }
  const std::int32_t ti = r.i32();
  const std::int32_t tj = r.i32();
  if (CellId{ti, tj} != target) fail(Errc::kConfigMismatch, "target cell");
  const std::uint8_t sig = r.u8();
  const std::uint8_t mov = r.u8();
  if (sig > 1 || mov > 1) fail(Errc::kMalformed, "protocol rule byte");
  if (sig != signal_rule) fail(Errc::kConfigMismatch, "signal rule");
  if (mov != movement_rule) fail(Errc::kConfigMismatch, "movement rule");
  const std::uint32_t nsources = r.u32();
  if (nsources != sources.size()) fail(Errc::kConfigMismatch, "source set");
  for (std::uint32_t k = 0; k < nsources; ++k) {
    const std::int32_t si = r.i32();
    const std::int32_t sj = r.i32();
    if (CellId{si, sj} != sources[k]) {
      fail(Errc::kConfigMismatch, "source set");
    }
  }
}

struct Header {
  std::uint8_t kind = 0;
  std::uint64_t round = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t next_entity_id = 0;
};

void write_header(Writer& w, std::uint8_t kind, std::uint64_t round,
                  std::uint64_t arrivals, std::uint64_t next_entity_id) {
  w.begin_section(kTagHeader);
  w.u8(kind);
  w.u64(round);
  w.u64(arrivals);
  w.u64(next_entity_id);
  w.end_section();
}

Header read_header(Reader& r) {
  Header h;
  h.kind = r.u8();
  if (h.kind > kKindChunked) fail(Errc::kMalformed, "realization kind byte");
  h.round = r.u64();
  h.arrivals = r.u64();
  h.next_entity_id = r.u64();
  return h;
}

void digest_cell(DigestAccumulator& d, const CellState& c) {
  d.boolean(c.failed);
  d.u64(encode_dist(c.dist));
  for (const OptCellId& opt : {c.next, c.token, c.signal}) {
    d.boolean(opt.has_value());
    if (opt) {
      d.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(opt->i)));
      d.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(opt->j)));
    }
  }
  d.u64(static_cast<std::uint64_t>(c.ne_prev.size()));
  for (const CellId id : c.ne_prev) {
    d.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.i)));
    d.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.j)));
  }
  d.u64(static_cast<std::uint64_t>(c.members.size()));
  for (const Entity& e : c.members) {
    d.u64(e.id.value);
    d.f64(e.center.x);
    d.f64(e.center.y);
  }
}

void digest_payload(DigestAccumulator& d, const Payload& p) {
  d.u64(static_cast<std::uint64_t>(p.index()));
  switch (payload_type_of(p)) {
    case PayloadType::kDist:
      d.u64(encode_dist(std::get<DistAnnounce>(p).dist));
      return;
    case PayloadType::kIntent: {
      const auto& intent = std::get<IntentAnnounce>(p);
      d.boolean(intent.next.has_value());
      if (intent.next) {
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(intent.next->i)));
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(intent.next->j)));
      }
      d.boolean(intent.has_entities);
      return;
    }
    case PayloadType::kGrant: {
      const auto& grant = std::get<GrantAnnounce>(p);
      d.boolean(grant.signal.has_value());
      if (grant.signal) {
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(grant.signal->i)));
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(grant.signal->j)));
      }
      d.u64(grant.seq);
      d.u64(grant.round);
      return;
    }
    case PayloadType::kTransfer: {
      const auto& batch = std::get<TransferBatch>(p);
      d.u64(batch.seq);
      d.u64(static_cast<std::uint64_t>(batch.entities.size()));
      for (const Entity& e : batch.entities) {
        d.u64(e.id.value);
        d.f64(e.center.x);
        d.f64(e.center.y);
      }
      return;
    }
    case PayloadType::kAck:
      d.u64(std::get<TransferAck>(p).seq);
      return;
  }
}

/// Rolls a policy back to previously captured words on a failed restore
/// (decode_state with the right count always succeeds, so this cannot
/// itself fail).
template <typename Policy>
void roll_back(Policy& policy, std::span<const std::uint64_t> old_words) {
  const bool ok = policy.decode_state(old_words);
  CF_CHECK_MSG(ok, "policy rollback failed");
}

}  // namespace

/// The one sanctioned backdoor into the engines' private state
/// (befriended by System, MessageSystem, NetworkModel, FaultyNetwork).
struct Access {
  // ---- shared-variable System ---------------------------------------

  static std::vector<std::uint8_t> save_system(const System& sys,
                                               const FailureModel* failures) {
    Writer w(kSnapMagic, kSnapVersion);
    write_header(w, kKindShared, sys.round(), sys.total_arrivals(),
                 sys.total_injected());

    const SystemConfig& cfg = sys.config();
    w.begin_section(kTagConfig);
    write_config(w, cfg.side, cfg.params, cfg.target, cfg.sources,
                 static_cast<std::uint8_t>(cfg.signal_rule),
                 static_cast<std::uint8_t>(cfg.movement_rule));
    w.end_section();

    w.begin_section(kTagCells);
    w.u64(static_cast<std::uint64_t>(sys.cells().size()));
    for (const CellState& c : sys.cells()) write_cell(w, c);
    w.end_section();

    std::vector<std::uint64_t> words;
    sys.choose_->encode_state(words);
    w.begin_section(kTagChoose);
    write_words(w, words);
    w.end_section();

    words.clear();
    sys.source_->encode_state(words);
    w.begin_section(kTagSource);
    write_words(w, words);
    w.end_section();

    if (failures != nullptr) {
      words.clear();
      failures->encode_state(words);
      w.begin_section(kTagFailure);
      write_words(w, words);
      w.end_section();
    }
    return w.finish();
  }

  static void restore_system(System& sys, std::span<const std::uint8_t> bytes,
                             FailureModel* failures) {
    Reader r(bytes, kSnapMagic, kSnapVersion, kMinTag, kMaxTag);

    Header header;
    std::vector<CellState> cells;
    std::vector<std::uint64_t> choose_words;
    std::vector<std::uint64_t> source_words;
    std::vector<std::uint64_t> failure_words;
    bool have_header = false, have_config = false, have_cells = false;
    bool have_choose = false, have_source = false, have_failure = false;

    while (const auto tag = r.next_section()) {
      switch (*tag) {
        case kTagHeader:
          header = read_header(r);
          have_header = true;
          break;
        case kTagConfig: {
          const SystemConfig& cfg = sys.config();
          check_config(r, cfg.side, cfg.params, cfg.target, cfg.sources,
                       static_cast<std::uint8_t>(cfg.signal_rule),
                       static_cast<std::uint8_t>(cfg.movement_rule));
          have_config = true;
          break;
        }
        case kTagCells: {
          const std::uint64_t n = r.count(kCellBytes);
          if (n != sys.grid().cell_count()) {
            fail(Errc::kMalformed, "cell count does not match the grid");
          }
          cells.reserve(static_cast<std::size_t>(n));
          for (std::uint64_t k = 0; k < n; ++k) {
            cells.push_back(read_cell(r, sys.grid()));
          }
          have_cells = true;
          break;
        }
        case kTagChoose:
          choose_words = read_words(r);
          have_choose = true;
          break;
        case kTagSource:
          source_words = read_words(r);
          have_source = true;
          break;
        case kTagFailure:
          failure_words = read_words(r);
          have_failure = true;
          break;
        default:
          // Tags 7–11 belong to the message/chunked realizations: the
          // bytes are well-formed, the engine kinds disagree.
          fail(Errc::kConfigMismatch,
               "snapshot was taken from a different realization");
      }
      r.close_section();
    }
    if (!have_header || !have_config || !have_cells || !have_choose ||
        !have_source) {
      fail(Errc::kMissingSection, "shared snapshot needs header, config, "
                                  "cells, choose, source");
    }
    if (header.kind != kKindShared) {
      fail(Errc::kConfigMismatch,
           "snapshot was taken from a different realization");
    }
    if (have_failure != (failures != nullptr)) {
      fail(Errc::kConfigMismatch,
           have_failure ? "snapshot carries failure-model state but none "
                          "was supplied"
                        : "failure model supplied but snapshot carries no "
                          "failure-model state");
    }

    // Commit point. Policies first, with rollback, so a mismatch in a
    // later policy leaves the earlier ones untouched; the engine state
    // itself is swapped in last and cannot fail.
    std::vector<std::uint64_t> old_choose;
    sys.choose_->encode_state(old_choose);
    if (!sys.choose_->decode_state(choose_words)) {
      fail(Errc::kConfigMismatch, "choose-policy state words");
    }
    std::vector<std::uint64_t> old_source;
    sys.source_->encode_state(old_source);
    if (!sys.source_->decode_state(source_words)) {
      roll_back(*sys.choose_, old_choose);
      fail(Errc::kConfigMismatch, "source-policy state words");
    }
    if (failures != nullptr && !failures->decode_state(failure_words)) {
      roll_back(*sys.choose_, old_choose);
      roll_back(*sys.source_, old_source);
      fail(Errc::kConfigMismatch, "failure-model state words");
    }

    sys.cells_ = std::move(cells);
    sys.round_ = header.round;
    sys.total_arrivals_ = header.arrivals;
    sys.next_entity_id_ = header.next_entity_id;
    sys.events_.clear();
    // Every derived structure — active sets, occupancy refcounts, dist
    // snapshot — is re-derived from the restored protocol state; valid
    // at any round boundary (same guarantee set_round_scheduler relies
    // on).
    sys.rebuild_active_sets();
  }

  // ---- chunk::ChunkedSystem ------------------------------------------

  static std::vector<std::uint8_t> save_chunked(
      const chunk::ChunkedSystem& sys, const FailureModel* failures) {
    Writer w(kSnapMagic, kSnapVersion);
    write_header(w, kKindChunked, sys.round(), sys.total_arrivals(),
                 sys.total_injected());

    const SystemConfig& cfg = sys.config();
    w.begin_section(kTagConfig);
    write_config(w, cfg.side, cfg.params, cfg.target, cfg.sources,
                 static_cast<std::uint8_t>(cfg.signal_rule),
                 static_cast<std::uint8_t>(cfg.movement_rule));
    w.end_section();

    std::vector<std::uint64_t> words;
    sys.choose_->encode_state(words);
    w.begin_section(kTagChoose);
    write_words(w, words);
    w.end_section();

    words.clear();
    sys.source_->encode_state(words);
    w.begin_section(kTagSource);
    write_words(w, words);
    w.end_section();

    if (failures != nullptr) {
      words.clear();
      failures->encode_state(words);
      w.begin_section(kTagFailure);
      write_words(w, words);
      w.end_section();
    }

    // Only materialized chunks go on the wire, ascending by chunk index:
    // live chunks as full cells, parked chunks as their summaries. Virgin
    // chunks are absent — their state is the initial state by definition.
    const chunk::ChunkedCellStore& store = sys.store();
    w.begin_section(kTagChunks);
    w.u64(static_cast<std::uint64_t>(store.live_count() +
                                     store.parked_count()));
    for (std::size_t q = 0; q < store.chunk_count(); ++q) {
      switch (store.state(q)) {
        case chunk::ChunkedCellStore::State::kVirgin:
          break;
        case chunk::ChunkedCellStore::State::kLive: {
          w.u32(static_cast<std::uint32_t>(q));
          w.u8(kChunkLive);
          for (const CellState& c : store.live(q).cells) write_cell(w, c);
          break;
        }
        case chunk::ChunkedCellStore::State::kParked: {
          w.u32(static_cast<std::uint32_t>(q));
          w.u8(kChunkParked);
          const chunk::ParkedChunk& p = store.parked(q);
          for (std::size_t slot = 0; slot < p.meta.size(); ++slot) {
            w.u8(p.meta[slot]);
            w.u32(p.dist[slot]);
          }
          break;
        }
      }
    }
    w.end_section();
    return w.finish();
  }

  static void restore_chunked(chunk::ChunkedSystem& sys,
                              std::span<const std::uint8_t> bytes,
                              FailureModel* failures) {
    Reader r(bytes, kSnapMagic, kSnapVersion, kMinTag, kMaxTag);
    const Grid& grid = sys.grid();
    const chunk::ChunkLayout& layout = sys.layout_;

    struct MatChunk {
      std::uint32_t q = 0;
      std::uint8_t state = 0;
      std::vector<CellState> cells;       // kChunkLive
      std::vector<std::uint8_t> meta;     // kChunkParked
      std::vector<std::uint32_t> dist;    // kChunkParked
    };
    Header header;
    std::vector<MatChunk> chunks;
    std::vector<std::uint64_t> choose_words;
    std::vector<std::uint64_t> source_words;
    std::vector<std::uint64_t> failure_words;
    bool have_header = false, have_config = false, have_chunks = false;
    bool have_choose = false, have_source = false, have_failure = false;

    while (const auto tag = r.next_section()) {
      switch (*tag) {
        case kTagHeader:
          header = read_header(r);
          have_header = true;
          break;
        case kTagConfig: {
          const SystemConfig& cfg = sys.config();
          check_config(r, cfg.side, cfg.params, cfg.target, cfg.sources,
                       static_cast<std::uint8_t>(cfg.signal_rule),
                       static_cast<std::uint8_t>(cfg.movement_rule));
          have_config = true;
          break;
        }
        case kTagChoose:
          choose_words = read_words(r);
          have_choose = true;
          break;
        case kTagSource:
          source_words = read_words(r);
          have_source = true;
          break;
        case kTagFailure:
          failure_words = read_words(r);
          have_failure = true;
          break;
        case kTagChunks: {
          // 5 bytes of header (index + state) per chunk at minimum.
          const std::uint64_t n = r.count(5);
          if (n > layout.chunk_count()) {
            fail(Errc::kMalformed, "more chunks than the grid holds");
          }
          chunks.reserve(static_cast<std::size_t>(n));
          std::int64_t prev = -1;
          for (std::uint64_t k = 0; k < n; ++k) {
            MatChunk mc;
            mc.q = r.u32();
            if (mc.q >= layout.chunk_count()) {
              fail(Errc::kMalformed, "chunk index off the grid");
            }
            if (static_cast<std::int64_t>(mc.q) <= prev) {
              fail(Errc::kMalformed, "chunk indices not strictly ascending");
            }
            prev = static_cast<std::int64_t>(mc.q);
            mc.state = r.u8();
            const std::size_t cells_n = layout.cells_in(mc.q);
            if (mc.state == kChunkLive) {
              mc.cells.reserve(cells_n);
              for (std::size_t slot = 0; slot < cells_n; ++slot) {
                mc.cells.push_back(read_cell(r, grid));
              }
            } else if (mc.state == kChunkParked) {
              mc.meta.resize(cells_n);
              mc.dist.resize(cells_n);
              for (std::size_t slot = 0; slot < cells_n; ++slot) {
                const std::uint8_t meta = r.u8();
                // Low 3 bits: next direction (0–3) or 4 = ⊥; bit 7:
                // failed; everything else must be zero.
                const std::uint8_t dir = meta & 0x07;
                if (dir > chunk::ParkedChunk::kNoDir ||
                    (meta & 0x78) != 0) {
                  fail(Errc::kMalformed, "parked cell meta byte");
                }
                if (dir < chunk::ParkedChunk::kNoDir) {
                  // The encoded next pointer must be a cell of the grid.
                  const CellId id = layout.cell_at(mc.q, slot);
                  const auto [di, dj] = step_of(kAllDirections[dir]);
                  if (!grid.contains(CellId{id.i + di, id.j + dj})) {
                    fail(Errc::kMalformed,
                         "parked next pointer off the grid");
                  }
                }
                mc.meta[slot] = meta;
                mc.dist[slot] = r.u32();
              }
            } else {
              fail(Errc::kMalformed, "chunk state byte");
            }
            chunks.push_back(std::move(mc));
          }
          have_chunks = true;
          break;
        }
        default:
          // Tags 3 and 7–10 belong to the dense realizations.
          fail(Errc::kConfigMismatch,
               "snapshot was taken from a different realization");
      }
      r.close_section();
    }
    if (!have_header || !have_config || !have_chunks || !have_choose ||
        !have_source) {
      fail(Errc::kMissingSection, "chunked snapshot needs header, config, "
                                  "choose, source, chunks");
    }
    if (header.kind != kKindChunked) {
      fail(Errc::kConfigMismatch,
           "snapshot was taken from a different realization");
    }
    if (have_failure != (failures != nullptr)) {
      fail(Errc::kConfigMismatch,
           have_failure ? "snapshot carries failure-model state but none "
                          "was supplied"
                        : "failure model supplied but snapshot carries no "
                          "failure-model state");
    }

    // Commit point, same discipline as the dense restore: policies first
    // (with rollback), then the store is rebuilt into a temporary and
    // swapped in whole — nothing below the policy checks can fail.
    std::vector<std::uint64_t> old_choose;
    sys.choose_->encode_state(old_choose);
    if (!sys.choose_->decode_state(choose_words)) {
      fail(Errc::kConfigMismatch, "choose-policy state words");
    }
    std::vector<std::uint64_t> old_source;
    sys.source_->encode_state(old_source);
    if (!sys.source_->decode_state(source_words)) {
      roll_back(*sys.choose_, old_choose);
      fail(Errc::kConfigMismatch, "source-policy state words");
    }
    if (failures != nullptr && !failures->decode_state(failure_words)) {
      roll_back(*sys.choose_, old_choose);
      roll_back(*sys.source_, old_source);
      fail(Errc::kConfigMismatch, "failure-model state words");
    }

    chunk::ChunkedCellStore store(sys.config().side, sys.config().target);
    for (MatChunk& mc : chunks) {
      chunk::LiveChunk& lc = store.ensure_live(mc.q);
      if (mc.state == kChunkLive) {
        for (std::size_t slot = 0; slot < mc.cells.size(); ++slot) {
          lc.cells[slot] = std::move(mc.cells[slot]);
        }
      } else {
        // Reconstruct the cells from the summary, then park again: the
        // restored store holds the identical ParkedChunk (park() re-
        // derives the compensation terms), and the validation above
        // guarantees park()'s encodability preconditions.
        for (std::size_t slot = 0; slot < mc.meta.size(); ++slot) {
          CellState& c = lc.cells[slot];
          c.dist = mc.dist[slot] == chunk::ParkedChunk::kInfDist32
                       ? Dist::infinity()
                       : Dist::finite(mc.dist[slot]);
          c.failed = (mc.meta[slot] & chunk::ParkedChunk::kFailedBit) != 0;
          const std::uint8_t dir = mc.meta[slot] & 0x07;
          if (dir < chunk::ParkedChunk::kNoDir) {
            const CellId id = layout.cell_at(mc.q, slot);
            const auto [di, dj] = step_of(kAllDirections[dir]);
            c.next = CellId{id.i + di, id.j + dj};
          }
        }
        store.park(mc.q);
      }
    }
    // The engine's pinned chunks (target + sources) are live by invariant;
    // enforce it on whatever the snapshot said.
    store.ensure_live(layout.chunk_of(sys.config().target));
    for (const CellId s : sys.config().sources) {
      store.ensure_live(layout.chunk_of(s));
    }
    if (sys.scheduler_ == RoundScheduler::kExhaustive) {
      for (std::size_t q = 0; q < store.chunk_count(); ++q) {
        store.ensure_live(q);
      }
    }

    sys.store_ = std::move(store);
    sys.round_ = header.round;
    sys.total_arrivals_ = header.arrivals;
    sys.next_entity_id_ = header.next_entity_id;
    sys.events_.clear();
    sys.rebuild_active_sets();
  }

  static std::uint64_t digest_chunked(const chunk::ChunkedSystem& sys) {
    // Same accumulation as the dense digest, over the same row-major cell
    // order — non-live cells contribute their (provable) rest state, so a
    // ChunkedSystem and a System in the same protocol state collide.
    DigestAccumulator d;
    d.u64(sys.round());
    d.u64(sys.total_arrivals());
    d.u64(sys.total_injected());
    const chunk::ChunkedCellStore& store = sys.store();
    const chunk::ChunkLayout& layout = sys.layout_;
    for (const CellId id : sys.grid().all_cells()) {
      const std::size_t q = layout.chunk_of(id);
      const std::size_t slot = layout.slot_of(id);
      if (store.is_live(q)) {
        digest_cell(d, store.live(q).cells[slot]);
      } else {
        const CellState c = store.rest_cell(q, slot);
        digest_cell(d, c);
      }
    }
    return d.value();
  }

  // ---- MessageSystem -------------------------------------------------

  struct NetState {
    std::uint8_t kind = 0;
    std::uint64_t round = 0;
    std::uint64_t total_messages = 0;
    std::uint64_t last_exchange = 0;
    std::uint64_t barriers = 0;
    std::array<std::uint64_t, kPayloadTypeCount> sent{};
    std::array<std::array<std::uint64_t, kPayloadTypeCount>, kNetFaultCount>
        faults{};
    std::array<std::uint64_t, 4> rng{};
    std::vector<FaultyNetwork::Delayed> delayed;
  };

  static void write_network(Writer& w, const NetworkModel& net) {
    // Snapshots are round-boundary-only: every exchange both sends and
    // delivers within update(), so nothing may sit in the queue here.
    CF_EXPECTS_MSG(net.in_flight_.empty(),
                   "snapshot taken mid-exchange (not at a round boundary)");
    const auto* faulty = dynamic_cast<const FaultyNetwork*>(&net);
    w.u8(faulty != nullptr ? std::uint8_t{1} : std::uint8_t{0});
    w.u64(net.round_);
    w.u64(net.total_messages_);
    w.u64(net.last_exchange_);
    w.u64(net.barriers_);
    for (const std::uint64_t c : net.sent_counts_) w.u64(c);
    for (const auto& row : net.fault_counts_) {
      for (const std::uint64_t c : row) w.u64(c);
    }
    if (faulty == nullptr) return;
    const NetFaultSpec& spec = faulty->spec_;
    w.f64(spec.drop_prob);
    w.f64(spec.dup_prob);
    w.f64(spec.delay_prob);
    w.u64(spec.max_delay_rounds);
    w.u64(spec.last_fault_round);
    w.u32(static_cast<std::uint32_t>(spec.partitions.size()));
    for (const NetPartition& part : spec.partitions) {
      w.u64(part.start_round);
      w.u64(part.end_round);
      const std::vector<CellId> side = part.side.set_cells();
      w.u32(static_cast<std::uint32_t>(part.side.side()));
      w.u64(static_cast<std::uint64_t>(side.size()));
      for (const CellId id : side) {
        w.i32(id.i);
        w.i32(id.j);
      }
    }
    const auto rng = faulty->rng_.state();
    for (const std::uint64_t word : rng) w.u64(word);
    w.u64(static_cast<std::uint64_t>(faulty->delayed_.size()));
    for (const FaultyNetwork::Delayed& d : faulty->delayed_) {
      w.u64(d.release_barrier);
      w.i32(d.message.sender.i);
      w.i32(d.message.sender.j);
      w.i32(d.message.receiver.i);
      w.i32(d.message.receiver.j);
      write_payload(w, d.message.payload);
    }
  }

  /// Decodes and validates the network section against the restore
  /// target (kind and, for a FaultyNetwork, the full fault spec — the
  /// spec is construction-time config, so it must match rather than be
  /// overwritten). Pure: mutates nothing.
  static NetState read_network(Reader& r, const Grid& grid,
                               const NetworkModel& net) {
    NetState s;
    s.kind = r.u8();
    if (s.kind > 1) fail(Errc::kMalformed, "network kind byte");
    const auto* faulty = dynamic_cast<const FaultyNetwork*>(&net);
    if ((s.kind == 1) != (faulty != nullptr)) {
      fail(Errc::kConfigMismatch, "network kind (sync vs faulty)");
    }
    s.round = r.u64();
    s.total_messages = r.u64();
    s.last_exchange = r.u64();
    s.barriers = r.u64();
    for (auto& c : s.sent) c = r.u64();
    for (auto& row : s.faults) {
      for (auto& c : row) c = r.u64();
    }
    if (faulty == nullptr) return s;
    const NetFaultSpec& spec = faulty->spec_;
    if (r.f64() != spec.drop_prob) {
      fail(Errc::kConfigMismatch, "network drop probability");
    }
    if (r.f64() != spec.dup_prob) {
      fail(Errc::kConfigMismatch, "network duplication probability");
    }
    if (r.f64() != spec.delay_prob) {
      fail(Errc::kConfigMismatch, "network delay probability");
    }
    if (r.u64() != spec.max_delay_rounds) {
      fail(Errc::kConfigMismatch, "network max delay");
    }
    if (r.u64() != spec.last_fault_round) {
      fail(Errc::kConfigMismatch, "network last fault round");
    }
    if (r.u32() != spec.partitions.size()) {
      fail(Errc::kConfigMismatch, "partition schedule");
    }
    for (const NetPartition& part : spec.partitions) {
      if (r.u64() != part.start_round || r.u64() != part.end_round) {
        fail(Errc::kConfigMismatch, "partition schedule");
      }
      if (r.u32() != static_cast<std::uint32_t>(part.side.side())) {
        fail(Errc::kConfigMismatch, "partition mask");
      }
      const std::uint64_t nset = r.count(8);
      CellMask mask(grid);
      for (std::uint64_t k = 0; k < nset; ++k) {
        mask.set(read_cell_id(r, grid));
      }
      if (mask != part.side) fail(Errc::kConfigMismatch, "partition mask");
    }
    for (auto& word : s.rng) word = r.u64();
    const std::uint64_t ndelayed = r.count(kDelayedBytes);
    s.delayed.reserve(static_cast<std::size_t>(ndelayed));
    for (std::uint64_t k = 0; k < ndelayed; ++k) {
      FaultyNetwork::Delayed d;
      d.release_barrier = r.u64();
      d.message.sender = read_cell_id(r, grid);
      d.message.receiver = read_cell_id(r, grid);
      d.message.payload = read_payload(r, grid);
      s.delayed.push_back(std::move(d));
    }
    return s;
  }

  static void apply_network(NetworkModel& net, NetState&& s) {
    net.in_flight_.clear();
    net.deliver_.clear();
    net.order_.clear();
    net.round_ = s.round;
    net.total_messages_ = s.total_messages;
    net.last_exchange_ = s.last_exchange;
    net.barriers_ = s.barriers;
    net.sent_counts_ = s.sent;
    net.fault_counts_ = s.faults;
    if (auto* faulty = dynamic_cast<FaultyNetwork*>(&net)) {
      faulty->rng_.set_state(s.rng);
      faulty->delayed_ = std::move(s.delayed);
    }
  }

  static std::vector<std::uint8_t> save_message(const MessageSystem& msg,
                                                const Xoshiro256* env_rng) {
    Writer w(kSnapMagic, kSnapVersion);
    write_header(w, kKindMessage, msg.round(), msg.total_arrivals(),
                 msg.total_injected());

    const MsgSystemConfig& cfg = msg.config_;
    w.begin_section(kTagConfig);
    write_config(w, cfg.side, cfg.params, cfg.target, cfg.sources, 0, 0);
    w.end_section();

    w.begin_section(kTagCells);
    w.u64(static_cast<std::uint64_t>(msg.processes_.size()));
    for (const MessageProcess& p : msg.processes_) write_cell(w, p.state);
    w.end_section();

    w.begin_section(kTagLinks);
    for (const MessageProcess& p : msg.processes_) {
      w.u32(static_cast<std::uint32_t>(p.nbrs.size()));
      for (std::size_t slot = 0; slot < p.nbrs.size(); ++slot) {
        const OutboundLink& ob = p.outbound[slot];
        w.u64(ob.heard_seq);
        w.u64(ob.batch_seq);
        w.u64(static_cast<std::uint64_t>(ob.batch.size()));
        for (const Entity& e : ob.batch) write_entity(w, e);
        const InboundLink& ib = p.inbound[slot];
        w.u64(ib.granted_seq);
        w.u64(ib.completed_seq);
      }
    }
    w.end_section();

    w.begin_section(kTagMsgCounters);
    w.u64(msg.last_round_messages_);
    w.u64(msg.expired_grants_);
    w.u64(msg.deferred_acceptances_);
    w.end_section();

    w.begin_section(kTagNetwork);
    write_network(w, *msg.network_);
    w.end_section();

    if (env_rng != nullptr) {
      w.begin_section(kTagEnvRng);
      for (const std::uint64_t word : env_rng->state()) w.u64(word);
      w.end_section();
    }
    return w.finish();
  }

  static void restore_message(MessageSystem& msg,
                              std::span<const std::uint8_t> bytes,
                              Xoshiro256* env_rng) {
    Reader r(bytes, kSnapMagic, kSnapVersion, kMinTag, kMaxTag);
    const Grid& grid = msg.grid_;

    struct LinkState {
      std::vector<OutboundLink> outbound;
      std::vector<InboundLink> inbound;
    };
    Header header;
    std::vector<CellState> cells;
    std::vector<LinkState> links;
    std::array<std::uint64_t, 3> counters{};
    NetState net;
    std::array<std::uint64_t, 4> env_words{};
    bool have_header = false, have_config = false, have_cells = false;
    bool have_links = false, have_counters = false, have_network = false;
    bool have_env = false;

    while (const auto tag = r.next_section()) {
      switch (*tag) {
        case kTagHeader:
          header = read_header(r);
          have_header = true;
          break;
        case kTagConfig: {
          const MsgSystemConfig& cfg = msg.config_;
          check_config(r, cfg.side, cfg.params, cfg.target, cfg.sources, 0,
                       0);
          have_config = true;
          break;
        }
        case kTagCells: {
          const std::uint64_t n = r.count(kCellBytes);
          if (n != grid.cell_count()) {
            fail(Errc::kMalformed, "cell count does not match the grid");
          }
          cells.reserve(static_cast<std::size_t>(n));
          for (std::uint64_t k = 0; k < n; ++k) {
            cells.push_back(read_cell(r, grid));
          }
          have_cells = true;
          break;
        }
        case kTagLinks: {
          links.reserve(msg.processes_.size());
          for (const MessageProcess& p : msg.processes_) {
            const std::uint32_t nslots = r.u32();
            if (nslots != p.nbrs.size()) {
              fail(Errc::kMalformed, "link slot count mismatch");
            }
            LinkState ls;
            ls.outbound.resize(nslots);
            ls.inbound.resize(nslots);
            for (std::uint32_t slot = 0; slot < nslots; ++slot) {
              OutboundLink& ob = ls.outbound[slot];
              ob.heard_seq = r.u64();
              ob.batch_seq = r.u64();
              const std::uint64_t nb = r.count(kEntityBytes);
              ob.batch.reserve(static_cast<std::size_t>(nb));
              for (std::uint64_t k = 0; k < nb; ++k) {
                ob.batch.push_back(read_entity(r));
              }
              InboundLink& ib = ls.inbound[slot];
              ib.granted_seq = r.u64();
              ib.completed_seq = r.u64();
            }
            links.push_back(std::move(ls));
          }
          have_links = true;
          break;
        }
        case kTagMsgCounters:
          for (auto& c : counters) c = r.u64();
          have_counters = true;
          break;
        case kTagNetwork:
          net = read_network(r, grid, *msg.network_);
          have_network = true;
          break;
        case kTagEnvRng:
          for (auto& word : env_words) word = r.u64();
          have_env = true;
          break;
        default:
          // Tags 4–6 and 11 belong to the shared/chunked realizations.
          fail(Errc::kConfigMismatch,
               "snapshot was taken from a different realization");
      }
      r.close_section();
    }
    if (!have_header || !have_config || !have_cells || !have_links ||
        !have_counters || !have_network) {
      fail(Errc::kMissingSection, "message snapshot needs header, config, "
                                  "cells, links, counters, network");
    }
    if (header.kind != kKindMessage) {
      fail(Errc::kConfigMismatch,
           "snapshot was taken from a different realization");
    }
    if (have_env != (env_rng != nullptr)) {
      fail(Errc::kConfigMismatch,
           have_env ? "snapshot carries an environment rng but none was "
                      "supplied"
                    : "environment rng supplied but snapshot carries none");
    }

    // Commit point: all validation done, nothing below can throw.
    for (std::size_t k = 0; k < msg.processes_.size(); ++k) {
      MessageProcess& p = msg.processes_[k];
      p.state = std::move(cells[k]);
      p.outbound = std::move(links[k].outbound);
      p.inbound = std::move(links[k].inbound);
      // Per-round views; rebuilt from received messages before every use.
      p.heard_dists.clear();
      p.heard_wanting.clear();
      p.heard_grants.clear();
      p.pending_acks.clear();
    }
    msg.round_ = header.round;
    msg.total_arrivals_ = header.arrivals;
    msg.next_entity_id_ = header.next_entity_id;
    msg.last_round_messages_ = counters[0];
    msg.expired_grants_ = counters[1];
    msg.deferred_acceptances_ = counters[2];
    for (auto& inbox : msg.inboxes_) inbox.clear();
    apply_network(*msg.network_, std::move(net));
    if (env_rng != nullptr) env_rng->set_state(env_words);
  }

  static std::uint64_t digest_message(const MessageSystem& msg) {
    DigestAccumulator d;
    d.u64(msg.round());
    d.u64(msg.total_arrivals());
    d.u64(msg.total_injected());
    for (const MessageProcess& p : msg.processes_) {
      digest_cell(d, p.state);
      for (std::size_t slot = 0; slot < p.nbrs.size(); ++slot) {
        const OutboundLink& ob = p.outbound[slot];
        d.u64(ob.heard_seq);
        d.u64(ob.batch_seq);
        d.u64(static_cast<std::uint64_t>(ob.batch.size()));
        for (const Entity& e : ob.batch) {
          d.u64(e.id.value);
          d.f64(e.center.x);
          d.f64(e.center.y);
        }
        d.u64(p.inbound[slot].granted_seq);
        d.u64(p.inbound[slot].completed_seq);
      }
    }
    d.u64(msg.last_round_messages_);
    d.u64(msg.expired_grants_);
    d.u64(msg.deferred_acceptances_);
    const NetworkModel& net = *msg.network_;
    d.u64(net.total_messages_);
    d.u64(net.last_exchange_);
    d.u64(net.barriers_);
    for (const std::uint64_t c : net.sent_counts_) d.u64(c);
    for (const auto& row : net.fault_counts_) {
      for (const std::uint64_t c : row) d.u64(c);
    }
    if (const auto* faulty = dynamic_cast<const FaultyNetwork*>(&net)) {
      for (const std::uint64_t word : faulty->rng_.state()) d.u64(word);
      d.u64(static_cast<std::uint64_t>(faulty->delayed_.size()));
      for (const FaultyNetwork::Delayed& del : faulty->delayed_) {
        d.u64(del.release_barrier);
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(del.message.sender.i)));
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(del.message.sender.j)));
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(del.message.receiver.i)));
        d.u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(del.message.receiver.j)));
        digest_payload(d, del.message.payload);
      }
    }
    return d.value();
  }
};

// ---- public API ------------------------------------------------------

std::vector<std::uint8_t> save(const System& sys,
                               const FailureModel* failures) {
  return Access::save_system(sys, failures);
}

void restore(System& sys, std::span<const std::uint8_t> bytes,
             FailureModel* failures) {
  Access::restore_system(sys, bytes, failures);
}

std::vector<std::uint8_t> save(const MessageSystem& msg,
                               const Xoshiro256* env_rng) {
  return Access::save_message(msg, env_rng);
}

void restore(MessageSystem& msg, std::span<const std::uint8_t> bytes,
             Xoshiro256* env_rng) {
  Access::restore_message(msg, bytes, env_rng);
}

std::uint64_t state_digest(const System& sys) {
  DigestAccumulator d;
  d.u64(sys.round());
  d.u64(sys.total_arrivals());
  d.u64(sys.total_injected());
  for (const CellState& c : sys.cells()) digest_cell(d, c);
  return d.value();
}

std::uint64_t state_digest(const MessageSystem& msg) {
  return Access::digest_message(msg);
}

std::vector<std::uint8_t> save(const chunk::ChunkedSystem& sys,
                               const FailureModel* failures) {
  return Access::save_chunked(sys, failures);
}

void restore(chunk::ChunkedSystem& sys, std::span<const std::uint8_t> bytes,
             FailureModel* failures) {
  Access::restore_chunked(sys, bytes, failures);
}

std::uint64_t state_digest(const chunk::ChunkedSystem& sys) {
  return Access::digest_chunked(sys);
}

void write_file(const std::string& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snapshot: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("snapshot: short write to " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(Errc::kTruncated, "cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return bytes;
}

}  // namespace cellflow::snapshot
