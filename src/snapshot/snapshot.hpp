// Versioned binary snapshots of full engine state (ROADMAP item 5,
// DESIGN.md §11).
//
// A snapshot captures everything a fresh, process-equivalent engine needs
// to continue a run bit-identically: for the shared-variable `System` the
// per-cell protocol state (Figure 3 variables + members + failed), the
// round/arrival/entity-id counters, and the mutable state of the attached
// Choose/Source policies and (optionally) the FailureModel; for the
// `MessageSystem` additionally the per-link stop-and-wait sessions
// (retained batches, seq ledgers — the "stable storage" of DESIGN.md §8)
// and the `NetworkModel` transport state including a FaultyNetwork's
// fault stream and delayed-message queue. All `Xoshiro256` streams travel
// as their four state words (util/rng.hpp pins the serialized format).
//
// The headline contract (pinned by tests/test_snapshot.cpp): save at
// round k, restore into a fresh engine built with the same configuration,
// run to k+m ⇒ state digest and every ProtocolCounts series bit-identical
// to the uninterrupted run — at every thread count, both realizations,
// both round schedulers, and under active network faults. Restores are
// atomic: on any error the target engine is untouched.
//
// What is deliberately NOT serialized (derived or per-round scratch):
// System's active-set scheduler structures (re-derived by
// rebuild_active_sets(), valid at any round boundary), the feed_ table
// (rewritten by Route each round), RoundEvents, and the MessageSystem's
// per-round heard_* views and inboxes (cleared before every use). The
// NetworkModel's exchange queue is empty at round boundaries — snapshots
// are boundary-only by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/wire.hpp"

namespace cellflow {
class FailureModel;
class MessageSystem;
class System;
class Xoshiro256;
}  // namespace cellflow

namespace cellflow::chunk {
class ChunkedSystem;
}  // namespace cellflow::chunk

namespace cellflow::snapshot {

/// Serializes the full state of `sys` (round boundary only). When
/// `failures` is non-null its mutable state rides along, so a restored
/// run reproduces the same fail/recover schedule.
[[nodiscard]] std::vector<std::uint8_t> save(const System& sys,
                                             const FailureModel* failures =
                                                 nullptr);

/// Restores a snapshot into `sys`, which must have been built with the
/// same SystemConfig and equivalent policies (same types/parameters; the
/// snapshot carries only their mutable state). Atomic: on throw, `sys`
/// and `failures` are unchanged.
/// @throws SnapshotError (see wire.hpp for the code taxonomy)
void restore(System& sys, std::span<const std::uint8_t> bytes,
             FailureModel* failures = nullptr);

/// MessageSystem form. `env_rng` is the environment's fail/recover stream
/// (the driver loop owns it — cellflow_sim's message mode); pass the same
/// pointer shape on save and restore.
[[nodiscard]] std::vector<std::uint8_t> save(const MessageSystem& msg,
                                             const Xoshiro256* env_rng =
                                                 nullptr);
void restore(MessageSystem& msg, std::span<const std::uint8_t> bytes,
             Xoshiro256* env_rng = nullptr);

/// ChunkedSystem form (DESIGN.md §12): only *materialized* chunks go on
/// the wire — live chunks as full per-cell state, parked chunks as their
/// {dist, meta} summaries — so snapshot size is proportional to the
/// active region, not N². Restore rebuilds the same chunk states (then
/// re-derives scheduler aux), so a restored engine parks, faults-in, and
/// computes exactly like the uninterrupted one.
[[nodiscard]] std::vector<std::uint8_t> save(const chunk::ChunkedSystem& sys,
                                             const FailureModel* failures =
                                                 nullptr);
void restore(chunk::ChunkedSystem& sys, std::span<const std::uint8_t> bytes,
             FailureModel* failures = nullptr);

/// FNV-1a-64 digest of the observable engine state (round, counters,
/// every cell's protocol + physical variables; the message form adds the
/// per-link sessions and transport state). Two engines with equal digests
/// at a round boundary continue identically under identical inputs — the
/// equality currency of the round-trip tests and the replay bisector.
[[nodiscard]] std::uint64_t state_digest(const System& sys);
[[nodiscard]] std::uint64_t state_digest(const MessageSystem& msg);
/// Digests the full N×N cell space in row-major order — materialized or
/// not (non-live cells via their rest-state reconstruction) — so the
/// value is comparable across storage models: a ChunkedSystem and a dense
/// System in the same protocol state produce the SAME digest.
[[nodiscard]] std::uint64_t state_digest(const chunk::ChunkedSystem& sys);

/// File helpers for the CLI. write_file throws std::runtime_error on I/O
/// failure; read_file throws SnapshotError{kTruncated} on a missing or
/// unreadable file.
void write_file(const std::string& path,
                std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace cellflow::snapshot
