#include "snapshot/replay.hpp"

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/wire.hpp"
#include "util/check.hpp"

namespace cellflow::snapshot {

namespace {

constexpr std::array<std::uint8_t, 4> kLogMagic{'C', 'F', 'R', 'L'};
constexpr std::uint32_t kLogVersion = 1;

enum Tag : std::uint32_t {
  kTagHeader = 1,   // start round, start digest
  kTagEvents = 2,   // the environment event stream
  kTagDigests = 3,  // one boundary digest per executed round
};

constexpr std::uint64_t kInfDist = ~0ULL;
// kind + round + cell: the minimum encoded event.
constexpr std::uint64_t kEventBytes = 1 + 8 + 8;

void write_opt_cell(Writer& w, OptCellId c) {
  w.boolean(c.has_value());
  if (c) {
    w.i32(c->i);
    w.i32(c->j);
  }
}

OptCellId read_opt_cell(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  const std::int32_t i = r.i32();
  const std::int32_t j = r.i32();
  return CellId{i, j};
}

void write_event(Writer& w, const ReplayEvent& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u64(e.round);
  w.i32(e.cell.i);
  w.i32(e.cell.j);
  switch (e.kind) {
    case ReplayEvent::Kind::kFail:
    case ReplayEvent::Kind::kRecover:
      return;
    case ReplayEvent::Kind::kCorrupt:
      w.u64(e.dist.is_infinite() ? kInfDist : e.dist.hops());
      write_opt_cell(w, e.next);
      write_opt_cell(w, e.token);
      write_opt_cell(w, e.signal);
      return;
    case ReplayEvent::Kind::kInject:
      w.u64(e.entity.value);
      w.f64(e.center.x);
      w.f64(e.center.y);
      return;
  }
}

ReplayEvent read_event(Reader& r) {
  ReplayEvent e;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ReplayEvent::Kind::kInject)) {
    fail(Errc::kMalformed, "replay event kind byte");
  }
  e.kind = static_cast<ReplayEvent::Kind>(kind);
  e.round = r.u64();
  e.cell.i = r.i32();
  e.cell.j = r.i32();
  switch (e.kind) {
    case ReplayEvent::Kind::kFail:
    case ReplayEvent::Kind::kRecover:
      break;
    case ReplayEvent::Kind::kCorrupt: {
      const std::uint64_t raw = r.u64();
      e.dist = raw == kInfDist ? Dist::infinity() : Dist::finite(raw);
      e.next = read_opt_cell(r);
      e.token = read_opt_cell(r);
      e.signal = read_opt_cell(r);
      break;
    }
    case ReplayEvent::Kind::kInject:
      e.entity.value = r.u64();
      e.center.x = r.f64();
      e.center.y = r.f64();
      break;
  }
  return e;
}

}  // namespace

std::vector<std::uint8_t> ReplayLog::to_bytes() const {
  Writer w(kLogMagic, kLogVersion);
  w.begin_section(kTagHeader);
  w.u64(start_round);
  w.u64(start_digest);
  w.end_section();

  w.begin_section(kTagEvents);
  w.u64(static_cast<std::uint64_t>(events.size()));
  for (const ReplayEvent& e : events) write_event(w, e);
  w.end_section();

  w.begin_section(kTagDigests);
  w.u64(static_cast<std::uint64_t>(digests.size()));
  for (const std::uint64_t d : digests) w.u64(d);
  w.end_section();

  return w.finish();
}

ReplayLog ReplayLog::from_bytes(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, kLogMagic, kLogVersion, kTagHeader, kTagDigests);
  ReplayLog log;
  bool have_header = false, have_events = false, have_digests = false;
  while (const auto tag = r.next_section()) {
    switch (*tag) {
      case kTagHeader:
        log.start_round = r.u64();
        log.start_digest = r.u64();
        have_header = true;
        break;
      case kTagEvents: {
        const std::uint64_t n = r.count(kEventBytes);
        log.events.reserve(static_cast<std::size_t>(n));
        std::uint64_t last_round = 0;
        for (std::uint64_t k = 0; k < n; ++k) {
          ReplayEvent e = read_event(r);
          if (k > 0 && e.round < last_round) {
            fail(Errc::kMalformed, "replay events out of round order");
          }
          last_round = e.round;
          log.events.push_back(e);
        }
        have_events = true;
        break;
      }
      case kTagDigests: {
        const std::uint64_t n = r.count(8);
        log.digests.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t k = 0; k < n; ++k) log.digests.push_back(r.u64());
        have_digests = true;
        break;
      }
      default:
        fail(Errc::kMalformed, "section not valid for a replay log");
    }
    r.close_section();
  }
  if (!have_header || !have_events || !have_digests) {
    fail(Errc::kMissingSection,
         "replay log needs header, events, digests");
  }
  if (!log.events.empty() && log.events.front().round < log.start_round) {
    fail(Errc::kMalformed, "replay event precedes the log start");
  }
  return log;
}

RunRecorder::RunRecorder(System& sys, FailureModel* failures)
    : sys_(sys), failures_(failures) {
  log_.start_round = sys_.round();
  log_.start_digest = state_digest(sys_);
  prev_failed_.reserve(sys_.cells().size());
}

void RunRecorder::step() {
  const std::uint64_t round = sys_.round();

  prev_failed_.clear();
  for (const CellState& c : sys_.cells()) prev_failed_.push_back(c.failed);
  if (failures_ != nullptr) failures_->apply(sys_);
  for (std::size_t k = 0; k < prev_failed_.size(); ++k) {
    const bool now = sys_.cells()[k].failed;
    if (now == prev_failed_[k]) continue;
    ReplayEvent e;
    e.kind = now ? ReplayEvent::Kind::kFail : ReplayEvent::Kind::kRecover;
    e.round = round;
    e.cell = sys_.grid().id_of(k);
    log_.events.push_back(e);
  }

  sys_.update();

  for (const auto& [cell, id] : sys_.last_events().injected) {
    ReplayEvent e;
    e.kind = ReplayEvent::Kind::kInject;
    e.round = round;
    e.cell = cell;
    e.entity = id;
    // Inject is the round's final phase, so the entity still sits at its
    // initial position in the source cell.
    if (const Entity* ent = sys_.cell(cell).find(id)) e.center = ent->center;
    log_.events.push_back(e);
  }

  log_.digests.push_back(state_digest(sys_));
}

void RunRecorder::note_corrupt(CellId id, Dist dist, OptCellId next,
                               OptCellId token, OptCellId signal) {
  sys_.corrupt_control_state(id, dist, next, token, signal);
  ReplayEvent e;
  e.kind = ReplayEvent::Kind::kCorrupt;
  e.round = sys_.round();
  e.cell = id;
  e.dist = dist;
  e.next = next;
  e.token = token;
  e.signal = signal;
  log_.events.push_back(e);
}

ReplayReport replay(System& sys, const ReplayLog& log) {
  const std::uint64_t r0 = sys.round();
  CF_EXPECTS_MSG(r0 >= log.start_round && r0 <= log.end_round(),
                 "replay must start at a boundary the log covers");

  ReplayReport report;
  const auto boundary_digest = [&log](std::uint64_t n) {
    return n == 0 ? log.start_digest : log.digests[n - 1];
  };
  std::uint64_t offset = r0 - log.start_round;
  if (state_digest(sys) != boundary_digest(offset)) {
    report.first_divergence = r0;
  }

  std::size_t cursor = 0;
  while (cursor < log.events.size() && log.events[cursor].round < r0) {
    ++cursor;
  }

  while (offset < log.digests.size()) {
    const std::uint64_t round = sys.round();

    // Environment events at this boundary (fail/recover/corrupt precede
    // the round's inject echoes in recording order).
    while (cursor < log.events.size() &&
           log.events[cursor].round == round &&
           log.events[cursor].kind != ReplayEvent::Kind::kInject) {
      const ReplayEvent& e = log.events[cursor];
      switch (e.kind) {
        case ReplayEvent::Kind::kFail:
          sys.fail(e.cell);
          break;
        case ReplayEvent::Kind::kRecover:
          sys.recover(e.cell);
          break;
        case ReplayEvent::Kind::kCorrupt:
          sys.corrupt_control_state(e.cell, e.dist, e.next, e.token,
                                    e.signal);
          break;
        case ReplayEvent::Kind::kInject:
          break;
      }
      ++cursor;
    }

    sys.update();
    ++report.rounds_replayed;

    // The recorded injection trace is an output echo: the engine's own
    // restored Source policy must reproduce it exactly.
    const auto& injected = sys.last_events().injected;
    std::size_t seen = 0;
    while (cursor < log.events.size() &&
           log.events[cursor].round == round &&
           log.events[cursor].kind == ReplayEvent::Kind::kInject) {
      const ReplayEvent& e = log.events[cursor];
      if (seen >= injected.size() || injected[seen].first != e.cell ||
          injected[seen].second != e.entity) {
        report.inputs_consistent = false;
      }
      ++seen;
      ++cursor;
    }
    if (seen != injected.size()) report.inputs_consistent = false;

    ++offset;
    if (!report.first_divergence &&
        state_digest(sys) != boundary_digest(offset)) {
      report.first_divergence = sys.round();
    }
  }
  return report;
}

}  // namespace cellflow::snapshot
