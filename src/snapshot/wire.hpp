// Binary wire substrate for snapshots and replay logs (DESIGN.md §11).
//
// Envelope: 4-byte magic, u32 version, a sequence of sections, and a
// trailing FNV-1a-64 checksum over every preceding byte. Each section is
// `u32 tag, u64 length, payload`; tags must be strictly increasing so a
// duplicated or reordered section is detectable without a schema. All
// integers are little-endian fixed-width; doubles travel as the u64
// bit pattern (bit_cast), so round-trips are exact for every value
// including -0.0 and NaNs.
//
// The reader is strict by construction: the checksum is verified before
// any field is parsed (a single flipped payload bit is kChecksumMismatch,
// never a misparse), every primitive read is bounded by its section,
// section lengths are bounded by the buffer, and callers must consume
// each section exactly. Failures throw SnapshotError with a typed Errc —
// decoding adversarial bytes is expected usage, not UB
// (tests/test_snapshot_format.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cellflow::snapshot {

/// Typed decode/validation failures. kConfigMismatch is the only code
/// raised after byte-level parsing succeeds: the snapshot is well-formed
/// but was taken from an engine built with different parameters than the
/// restore target.
enum class Errc : std::uint8_t {
  kTruncated,         ///< buffer shorter than the fixed envelope
  kBadMagic,          ///< first four bytes are not the expected magic
  kBadVersion,        ///< unknown format version
  kChecksumMismatch,  ///< payload bytes do not hash to the trailer
  kUnknownTag,        ///< section tag outside the schema
  kDuplicateTag,      ///< section tag repeated
  kOutOfOrderTag,     ///< section tags not strictly increasing
  kMissingSection,    ///< a required section is absent
  kMalformed,         ///< field-level corruption inside a section
  kTrailingBytes,     ///< section payload longer than its fields
  kConfigMismatch,    ///< snapshot vs restore-target engine mismatch
};

[[nodiscard]] const char* to_string(Errc code) noexcept;

/// Thrown by every decode/restore failure; code() discriminates.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(Errc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// FNV-1a 64-bit over a byte span. Exposed so tests can craft
/// checksum-valid adversarial buffers, and reused for state digests.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t seed =
                                      0xcbf29ce484222325ULL) noexcept;

/// Incremental FNV-1a accumulator for state digests: feed fixed-width
/// words, read the running hash. Word-granular (not byte-remixed) so the
/// digest of a struct is independent of how callers batch the fields.
class DigestAccumulator {
 public:
  constexpr void u64(std::uint64_t word) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (word >> (8 * b)) & 0xFFu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void f64(double value) noexcept;
  constexpr void boolean(bool value) noexcept { u64(value ? 1 : 0); }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept {
    return hash_;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Append-only section writer. Usage: construct with a magic, write
/// sections via begin_section/end_section pairs, call finish() once.
class Writer {
 public:
  Writer(std::array<std::uint8_t, 4> magic, std::uint32_t version);

  void begin_section(std::uint32_t tag);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Appends the checksum trailer and releases the buffer. The Writer is
  /// spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t section_start_ = 0;  ///< offset of open section's length field
  bool in_section_ = false;
  bool finished_ = false;
};

/// Strict section reader. Construction verifies the full envelope
/// (magic, version, checksum); next_section()/close_section() walk the
/// sections enforcing strictly increasing tags within [min_tag, max_tag];
/// primitive reads are bounded by the open section.
class Reader {
 public:
  /// @throws SnapshotError kTruncated/kBadMagic/kBadVersion/
  ///         kChecksumMismatch
  Reader(std::span<const std::uint8_t> bytes,
         std::array<std::uint8_t, 4> magic, std::uint32_t version,
         std::uint32_t min_tag, std::uint32_t max_tag);

  /// Opens the next section and returns its tag; nullopt cleanly at end.
  /// @throws SnapshotError kDuplicateTag/kOutOfOrderTag/kUnknownTag/
  ///         kMalformed (length overruns buffer)
  [[nodiscard]] std::optional<std::uint32_t> next_section();

  /// Asserts the open section was fully consumed.
  /// @throws SnapshotError kTrailingBytes
  void close_section();

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] double f64();
  /// u8 that must be exactly 0 or 1. @throws SnapshotError kMalformed
  [[nodiscard]] bool boolean();

  /// Reads an element count and validates `count * min_bytes_per_item`
  /// fits in the rest of the open section, so corrupt counts fail here
  /// instead of driving a giant allocation. min_bytes_per_item must be
  /// the minimum ENCODED size of one element, and must be > 0.
  [[nodiscard]] std::uint64_t count(std::uint64_t min_bytes_per_item);

  /// Bytes left in the open section.
  [[nodiscard]] std::size_t section_remaining() const noexcept {
    return section_end_ - cursor_;
  }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;       ///< next unread byte
  std::size_t payload_end_ = 0;  ///< first checksum byte
  std::size_t section_end_ = 0;  ///< end of the open section
  std::uint32_t min_tag_ = 0;
  std::uint32_t max_tag_ = 0;
  std::optional<std::uint32_t> last_tag_;
  bool in_section_ = false;
};

[[noreturn]] void fail(Errc code, const std::string& what);

}  // namespace cellflow::snapshot
