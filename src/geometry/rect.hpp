// Axis-aligned rectangles: cells are unit squares, entities are l×l
// squares (paper §II). The safety monitors use rectangle overlap checks as
// an independent oracle for the center-spacing predicate.
#pragma once

#include "geometry/interval.hpp"
#include "geometry/vec2.hpp"
#include "util/check.hpp"

namespace cellflow {

/// Axis-aligned rectangle given by its two axis intervals.
class Rect {
 public:
  constexpr Rect(Interval x, Interval y) : x_(x), y_(y) {}

  /// Square of side `side` centered at `center` — an entity's footprint.
  static constexpr Rect square(Vec2 center, double side) {
    return Rect(Interval::centered(center.x, side),
                Interval::centered(center.y, side));
  }

  /// The unit square of cell ⟨i,j⟩ with bottom-left corner (i, j).
  static constexpr Rect unit_cell(int i, int j) {
    const auto fi = static_cast<double>(i);
    const auto fj = static_cast<double>(j);
    return Rect(Interval(fi, fi + 1.0), Interval(fj, fj + 1.0));
  }

  [[nodiscard]] constexpr Interval x() const noexcept { return x_; }
  [[nodiscard]] constexpr Interval y() const noexcept { return y_; }
  [[nodiscard]] constexpr Vec2 center() const noexcept {
    return {x_.center(), y_.center()};
  }
  [[nodiscard]] constexpr double width() const noexcept { return x_.length(); }
  [[nodiscard]] constexpr double height() const noexcept { return y_.length(); }
  [[nodiscard]] constexpr double area() const noexcept {
    return width() * height();
  }

  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return x_.contains(p.x) && y_.contains(p.y);
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const noexcept {
    return x_.contains(r.x_) && y_.contains(r.y_);
  }

  /// Open-interior overlap: true iff the rectangles share area (not just
  /// an edge or corner).
  [[nodiscard]] constexpr bool overlaps(const Rect& r) const noexcept {
    return x_.overlaps_interior(r.x_) && y_.overlaps_interior(r.y_);
  }

  /// L∞ gap between the rectangles: the largest g such that the two are
  /// separated by g along some axis. 0 when they overlap on both axes.
  [[nodiscard]] constexpr double linf_gap(const Rect& r) const noexcept {
    const double gx = x_.gap_to(r.x_);
    const double gy = y_.gap_to(r.y_);
    return gx > gy ? gx : gy;
  }

  friend constexpr bool operator==(const Rect&, const Rect&) noexcept = default;

 private:
  Interval x_;
  Interval y_;
};

}  // namespace cellflow
