// 2-D vector/point type. Entity centers live in the Euclidean plane
// (paper §II-B: entity p has center (px, py) ∈ R²).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <string>
#include <sstream>

namespace cellflow {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept {
    return {s * v.x, s * v.y};
  }
  friend constexpr Vec2 operator*(Vec2 v, double s) noexcept { return s * v; }
  constexpr Vec2& operator+=(Vec2 v) noexcept {
    x += v.x;
    y += v.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2, Vec2) noexcept = default;
};

/// L∞ (Chebyshev) distance — the natural metric for the paper's
/// axis-separation safety predicate.
[[nodiscard]] inline double linf_distance(Vec2 a, Vec2 b) noexcept {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

/// Manhattan (L1) distance.
[[nodiscard]] inline double l1_distance(Vec2 a, Vec2 b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean (L2) distance.
[[nodiscard]] inline double l2_distance(Vec2 a, Vec2 b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline std::string to_string(Vec2 v) {
  std::ostringstream os;
  os << '(' << v.x << ", " << v.y << ')';
  return os.str();
}

}  // namespace cellflow
