// Closed 1-D intervals. Used by the safety monitors to reason about the
// axis projections of entity squares (an l×l entity projects to an
// interval of width l on each axis).
#pragma once

#include "util/check.hpp"

namespace cellflow {

/// Closed interval [lo, hi]. Invariant: lo <= hi.
class Interval {
 public:
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {
    CF_EXPECTS_MSG(lo <= hi, "interval endpoints out of order");
  }

  /// Interval of width `width` centered at `center`.
  static constexpr Interval centered(double center, double width) {
    CF_EXPECTS(width >= 0.0);
    return Interval(center - width / 2.0, center + width / 2.0);
  }

  [[nodiscard]] constexpr double lo() const noexcept { return lo_; }
  [[nodiscard]] constexpr double hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr double length() const noexcept { return hi_ - lo_; }
  [[nodiscard]] constexpr double center() const noexcept {
    return (lo_ + hi_) / 2.0;
  }

  [[nodiscard]] constexpr bool contains(double x) const noexcept {
    return lo_ <= x && x <= hi_;
  }
  [[nodiscard]] constexpr bool contains(Interval other) const noexcept {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  /// True when the closed intervals share at least one point.
  [[nodiscard]] constexpr bool intersects(Interval other) const noexcept {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// True when the *open* interiors overlap (touching edges don't count) —
  /// the right notion for "two entity squares physically overlap".
  [[nodiscard]] constexpr bool overlaps_interior(Interval other) const noexcept {
    return lo_ < other.hi_ && other.lo_ < hi_;
  }

  /// Distance between the intervals (0 if they intersect).
  [[nodiscard]] constexpr double gap_to(Interval other) const noexcept {
    if (intersects(other)) return 0.0;
    return lo_ > other.hi_ ? lo_ - other.hi_ : other.lo_ - hi_;
  }

  friend constexpr bool operator==(Interval, Interval) noexcept = default;

 private:
  double lo_;
  double hi_;
};

}  // namespace cellflow
