#include "chunk/chunked_system.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/signal.hpp"
#include "util/check.hpp"

namespace cellflow::chunk {

namespace {

/// Ascending-dense-index order of CellIds (j major, i minor — the grid's
/// row-major index). CellId's own operator< is i-major, so the event
/// canonicalization must not use it.
[[nodiscard]] bool dense_less(CellId a, CellId b) noexcept {
  return a.j != b.j ? a.j < b.j : a.i < b.i;
}

}  // namespace

ChunkedSystem::ChunkedSystem(SystemConfig config,
                             std::unique_ptr<ChoosePolicy> choose,
                             std::unique_ptr<SourcePolicy> source)
    : config_(std::move(config)),
      grid_(config_.side),
      layout_(config_.side),
      store_(config_.side, config_.target),
      choose_(choose ? std::move(choose)
                     : std::make_unique<RoundRobinChoose>()),
      source_(source ? std::move(source)
                     : std::make_unique<EntryEdgeSource>()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  // Canonical injection order, exactly as System does it.
  std::sort(config_.sources.begin(), config_.sources.end());
  config_.sources.erase(
      std::unique(config_.sources.begin(), config_.sources.end()),
      config_.sources.end());

  pinned_.assign(store_.chunk_count(), 0);
  // The target's chunk anchors routing (Route pins its dist every round)
  // and every source's chunk is read every round by injection — both are
  // materialized now and never park.
  const std::size_t tq = layout_.chunk_of(config_.target);
  store_.ensure_live(tq);
  pinned_[tq] = 1;
  for (const CellId s : config_.sources) {
    const std::size_t q = layout_.chunk_of(s);
    store_.ensure_live(q);
    pinned_[q] = 1;
  }
  // The target's lattice neighbors change dist in round 0 (∞ → 1), so
  // their chunks must be live from the start; unlike the pinned chunks
  // they park again once the routing wave has moved on.
  for (const Direction d : kAllDirections) {
    const auto nb = grid_.neighbor(config_.target, d);
    if (nb.has_value()) store_.ensure_live(layout_.chunk_of(*nb));
  }
  rebuild_active_sets();
  set_parallel_policy(parallel_policy_from_env());
}

CellState ChunkedSystem::cell(CellId id) const {
  CF_EXPECTS(grid_.contains(id));
  const std::size_t q = layout_.chunk_of(id);
  if (store_.is_live(q)) return store_.live(q).cells[layout_.slot_of(id)];
  return store_.rest_cell(q, layout_.slot_of(id));
}

std::size_t ChunkedSystem::entity_count() const noexcept {
  std::size_t n = 0;
  for (std::size_t q = 0; q < store_.chunk_count(); ++q) {
    if (!store_.is_live(q)) continue;
    for (const CellState& c : store_.live(q).cells) n += c.members.size();
  }
  return n;
}

const CellState* ChunkedSystem::peek_live(CellId id) const {
  const std::size_t q = layout_.chunk_of(id);
  if (!store_.is_live(q)) return nullptr;
  return &store_.live(q).cells[layout_.slot_of(id)];
}

CellState& ChunkedSystem::cell_mut(CellId id) {
  LiveChunk& lc = store_.ensure_live(layout_.chunk_of(id));
  return lc.cells[layout_.slot_of(id)];
}

void ChunkedSystem::arm_cell(CellId id, std::uint64_t upto) {
  LiveChunk& lc = store_.ensure_live(layout_.chunk_of(id));
  std::uint64_t& stamp = lc.route_stamp[layout_.slot_of(id)];
  if (upto > stamp) stamp = upto;
  if (stamp > lc.max_stamp) lc.max_stamp = stamp;
}

void ChunkedSystem::arm_route_neighborhood(CellId id, std::uint64_t upto) {
  arm_cell(id, upto);
  for (const Direction d : kAllDirections) {
    const auto st = step_of(d);
    const CellId nid{id.i + st[0], id.j + st[1]};
    if (grid_.contains(nid)) arm_cell(nid, upto);
  }
}

namespace {

void bump_refs(LiveChunk& lc, std::size_t slot, int delta) noexcept {
  std::uint8_t& r = lc.occ_refs[slot];
  if (delta > 0) {
    if (r == 0) ++lc.ref_cells;
    r = static_cast<std::uint8_t>(r + 1);
  } else {
    r = static_cast<std::uint8_t>(r - 1);
    if (r == 0) --lc.ref_cells;
  }
}

}  // namespace

void ChunkedSystem::apply_occupancy_flip(CellId id) {
  const std::size_t q = layout_.chunk_of(id);
  LiveChunk& lc = store_.live(q);
  const std::size_t slot = layout_.slot_of(id);
  lc.occ_b[slot] ^= 1u;
  const int delta = lc.occ_b[slot] != 0 ? 1 : -1;
  bump_refs(lc, slot, delta);
  for (const Direction d : kAllDirections) {
    const auto st = step_of(d);
    const CellId nid{id.i + st[0], id.j + st[1]};
    if (!grid_.contains(nid)) continue;
    const std::size_t nq = layout_.chunk_of(nid);
    if (delta > 0) {
      // Occupancy spreading into a parked/virgin neighborhood is exactly
      // the fault-in trigger: the neighbor chunk becomes live *before*
      // it carries a reference, preserving "refs > 0 ⇒ live".
      bump_refs(store_.ensure_live(nq), layout_.slot_of(nid), delta);
    } else {
      // Releasing a reference: the neighbor chunk holds this cell's +1,
      // so it cannot have parked (park requires ref_cells == 0).
      CF_EXPECTS_MSG(store_.is_live(nq),
                     "occupancy release into a non-live chunk");
      bump_refs(store_.live(nq), layout_.slot_of(nid), delta);
    }
  }
}

void ChunkedSystem::refresh_occupancy(CellId id) {
  const std::size_t q = layout_.chunk_of(id);
  LiveChunk& lc = store_.live(q);
  const std::size_t slot = layout_.slot_of(id);
  if (occupied(lc.cells[slot]) != (lc.occ_b[slot] != 0))
    apply_occupancy_flip(id);
}

void ChunkedSystem::note_control_mutation(CellId id) {
  const std::size_t q = layout_.chunk_of(id);
  LiveChunk& lc = store_.live(q);
  const std::size_t slot = layout_.slot_of(id);
  lc.dist_snapshot[slot] = lc.cells[slot].dist;
  arm_route_neighborhood(id, round_);
  refresh_occupancy(id);
}

void ChunkedSystem::rebuild_active_sets() {
  const std::size_t nq = store_.chunk_count();
  // Pass A: zero the occupancy state of every live chunk. Pass B may
  // fault further chunks in (an occupied cell adjacent to a parked
  // region); those initialize zeroed, and the index scan in B/C picks
  // them up or skips them harmlessly (a freshly unparked chunk has no
  // occupied cells to contribute).
  for (std::size_t q = 0; q < nq; ++q) {
    if (!store_.is_live(q)) continue;
    LiveChunk& lc = store_.live(q);
    const std::size_t n = lc.cells.size();
    lc.occ_b.assign(n, 0);
    lc.occ_refs.assign(n, 0);
    lc.ref_cells = 0;
  }
  // Pass B: recompute occupancy via flips (propagates refs across chunk
  // borders, faulting neighbors in as needed).
  for (std::size_t q = 0; q < nq; ++q) {
    if (!store_.is_live(q)) continue;
    LiveChunk& lc = store_.live(q);
    const ChunkLayout::Rect rect = layout_.rect_of(q);
    std::size_t slot = 0;
    for (int lj = 0; lj < rect.h; ++lj) {
      for (int li = 0; li < rect.w; ++li, ++slot) {
        if (occupied(lc.cells[slot]))
          apply_occupancy_flip(CellId{rect.i0 + li, rect.j0 + lj});
      }
    }
  }
  // Pass C: arm every live cell for this round and sync the snapshots.
  // Non-live chunks stay unarmed: they are quiescence fixpoints, for
  // which the dense rebuild's blanket arming is observationally a no-op
  // (and their skipped-cell tallies are compensated exactly).
  for (std::size_t q = 0; q < nq; ++q) {
    if (!store_.is_live(q)) continue;
    LiveChunk& lc = store_.live(q);
    const std::size_t n = lc.cells.size();
    lc.route_stamp.assign(n, round_);
    lc.max_stamp = round_;
    lc.quiet_rounds = 0;
    for (std::size_t slot = 0; slot < n; ++slot)
      lc.dist_snapshot[slot] = lc.cells[slot].dist;
  }
}

void ChunkedSystem::set_round_scheduler(RoundScheduler scheduler) {
  if (scheduler_ == scheduler) return;
  scheduler_ = scheduler;
  if (scheduler_ == RoundScheduler::kExhaustive) {
    // Exhaustive semantics visit every cell of the grid, so every chunk
    // must be resident (and none park while the scheduler is exhaustive).
    for (std::size_t q = 0; q < store_.chunk_count(); ++q)
      store_.ensure_live(q);
  } else {
    rebuild_active_sets();
  }
}

void ChunkedSystem::set_parallel_policy(const ParallelPolicy& policy) {
  CF_EXPECTS_MSG(policy.num_threads >= 1 && policy.num_threads <= 1024,
                 "ParallelPolicy::num_threads out of [1, 1024]");
  parallel_ = policy;
  if (policy.mode == ParallelPolicy::Mode::kParallel) {
    if (!pool_ || pool_->thread_count() != policy.num_threads)
      pool_ = std::make_unique<ThreadPool>(policy.num_threads);
  } else {
    pool_.reset();
  }
  const auto width =
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1;
  if (scratch_.shards.size() < width) scratch_.shards.resize(width);
}

ThreadPool* ChunkedSystem::phase_pool(std::size_t approx_cells) const {
  ThreadPool* pool = pool_.get();
  if (pool == nullptr || parallel_.cutover != ParallelPolicy::Cutover::kAuto)
    return pool;
  const std::size_t used = shard_count(approx_cells, pool->thread_count());
  if (used <= 1) return pool;  // parallel_for_shards falls back anyway
  const auto grain = static_cast<std::size_t>(parallel_.cutover_grain);
  return approx_cells < grain * used ? nullptr : pool;
}

void ChunkedSystem::set_metrics(obs::MetricsRegistry* registry) {
  // Same label as the dense shared-variable engine: the exposition must
  // be byte-identical to System's (pinned by the differential suite).
  metrics_ = registry != nullptr
                 ? std::make_unique<obs::ProtocolMetrics>(*registry, "shared")
                 : nullptr;
  round_counts_.reset();
}

void ChunkedSystem::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cell_mut(id);
  if (!c.failed && metrics_) metrics_->add_failure();
  c.failed = true;
  c.dist = Dist::infinity();
  c.next = std::nullopt;
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
  note_control_mutation(id);
}

void ChunkedSystem::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cell_mut(id);
  if (!c.failed) return;
  if (metrics_) metrics_->add_recovery();
  c.failed = false;
  c.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  c.next = std::nullopt;
  c.token = std::nullopt;
  c.signal = std::nullopt;
  c.ne_prev.clear();
  note_control_mutation(id);
}

EntityId ChunkedSystem::seed_entity(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS_MSG(injection_is_safe(id, center),
                 "seed_entity: placement violates the gap requirement or "
                 "Invariant-1 bounds");
  const EntityId eid{next_entity_id_++};
  cell_mut(id).members.push_back(Entity{eid, center});
  refresh_occupancy(id);
  return eid;
}

EntityId ChunkedSystem::seed_entity_unchecked(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  const EntityId eid{next_entity_id_++};
  cell_mut(id).members.push_back(Entity{eid, center});
  refresh_occupancy(id);
  return eid;
}

void ChunkedSystem::corrupt_control_state(CellId id, Dist dist, OptCellId next,
                                          OptCellId token, OptCellId signal) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cell_mut(id);
  c.dist = dist;
  c.next = next;
  c.token = token;
  c.signal = signal;
  note_control_mutation(id);
}

bool ChunkedSystem::injection_is_safe(CellId id, Vec2 center) const {
  const Params& p = config_.params;
  const double half = p.entity_length() / 2.0;
  const double d = p.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);

  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;

  // A non-live cell provably has no members and no token, so only the
  // bounds check above applies — exactly the dense outcome on the same
  // (empty, token-⊥) state.
  const CellState* c = peek_live(id);
  if (c == nullptr) return true;

  for (const Entity& q : c->members) {
    if (std::abs(center.x - q.center.x) < d &&
        std::abs(center.y - q.center.y) < d)
      return false;
  }
  if (c->token.has_value()) {
    const bool was_clear = entry_strip_clear(id, *c->token, c->members, p);
    if (was_clear) {
      const Entity probe{EntityId{~0ULL}, center};
      const bool probe_clear = entry_strip_clear(
          id, *c->token, std::span<const Entity>(&probe, 1), p);
      if (!probe_clear) return false;
    }
  }
  return true;
}

const RoundEvents& ChunkedSystem::update() {
  events_.clear();
  events_.round = round_;
  run_route_phase();
  run_signal_phase();
  run_move_phase();
  run_inject_phase();
  if (metrics_) {
    metrics_->add(round_counts_);
    metrics_->add_round();
    round_counts_.reset();
  }
  ++round_;
  if (scheduler_ == RoundScheduler::kActiveSet) park_sweep();
  return events_;
}

std::uint64_t ChunkedSystem::virgin_route_comp(std::size_t q) const {
  const ChunkLayout::Rect r = layout_.rect_of(q);
  const auto w = static_cast<std::uint64_t>(r.w);
  const auto h = static_cast<std::uint64_t>(r.h);
  // Σ degree over the rect: 4wh minus one per cell on each grid boundary
  // the rect touches. All cells are non-failed (virgin) and the target is
  // never in a virgin chunk, so no further exclusions apply.
  std::uint64_t sum = 4 * w * h;
  if (r.i0 == 0) sum -= h;
  if (r.i0 + r.w == layout_.side()) sum -= h;
  if (r.j0 == 0) sum -= w;
  if (r.j0 + r.h == layout_.side()) sum -= w;
  return sum;
}

void ChunkedSystem::run_route_phase() {
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  const auto& order = store_.live_order();
  if (!active) {
    // Exhaustive: recopy every snapshot before the sharded loop — cells
    // read *other chunks'* snapshots, so the copy cannot ride inside the
    // per-chunk bodies.
    for (const std::uint32_t q : order) {
      LiveChunk& lc = store_.live(q);
      for (std::size_t slot = 0; slot < lc.cells.size(); ++slot)
        lc.dist_snapshot[slot] = lc.cells[slot].dist;
    }
  }

  ThreadPool* pool = phase_pool(
      order.size() * static_cast<std::size_t>(kChunkSide * kChunkSide));
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();
  const auto body = [&](std::size_t s, ShardRange r) {
    ShardScratch& sc = scratch_.shards[s];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    for (std::size_t x = r.begin; x < r.end; ++x) {
      const std::size_t q = order[x];
      LiveChunk& lc = store_.live(q);
      const ChunkLayout::Rect rect = layout_.rect_of(q);
      std::size_t slot = 0;
      for (int lj = 0; lj < rect.h; ++lj) {
        for (int li = 0; li < rect.w; ++li, ++slot) {
          const CellId id{rect.i0 + li, rect.j0 + lj};
          if (!active) {
            route_cell(lc, rect, slot, id, pc, nullptr);
            ++sc.visited;
          } else if (lc.route_stamp[slot] >= round_) {
            route_cell(lc, rect, slot, id, pc, &sc.changed);
            ++sc.visited;
          } else if (pc != nullptr && !lc.cells[slot].failed &&
                     id != config_.target) {
            pc->route_relaxations +=
                static_cast<std::uint64_t>(layout_.degree_of(id));
          }
        }
      }
    }
  };
  parallel_for_shards(pool, order.size(), body);

  sched_stats_.route_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    if (metrics_) round_counts_.merge(scratch_.shards[s].counts);
    sched_stats_.route_cells += scratch_.shards[s].visited;
  }

  // Skipped-chunk compensation: a quiescent live cell tallies exactly
  // its lattice degree per round under the dense active-set scheduler
  // (visited or not — see System::run_route_phase); non-live chunks owe
  // that same tally, from their O(1) summaries. Must run BEFORE the
  // arming merge below: arming can fault a chunk in, and a chunk that
  // was non-live while the sharded body ran still owes this round's
  // tally even if it is live by the end of the phase.
  if (active && metrics_ != nullptr) {
    for (std::size_t q = 0; q < store_.chunk_count(); ++q) {
      switch (store_.state(q)) {
        case ChunkedCellStore::State::kLive:
          break;
        case ChunkedCellStore::State::kParked:
          round_counts_.route_relaxations += store_.parked(q).route_comp;
          break;
        case ChunkedCellStore::State::kVirgin:
          round_counts_.route_relaxations += virgin_route_comp(q);
          break;
      }
    }
  }

  if (active) {
    // Post-barrier merge, shard order: sync the changed cells' snapshots
    // and arm their readers for next round — faulting a neighbor chunk
    // in *before* arming any of its cells, which is the live/parked
    // border crossing of the routing wave.
    for (std::size_t s = 0; s < nshards; ++s) {
      for (const CellId id : scratch_.shards[s].changed) {
        const std::size_t q = layout_.chunk_of(id);
        LiveChunk& lc = store_.live(q);
        const std::size_t slot = layout_.slot_of(id);
        lc.dist_snapshot[slot] = lc.cells[slot].dist;
        for (const Direction d : kAllDirections) {
          const auto st = step_of(d);
          const CellId nid{id.i + st[0], id.j + st[1]};
          if (grid_.contains(nid)) arm_cell(nid, round_ + 1);
        }
      }
    }
  }
}

void ChunkedSystem::route_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                               std::size_t slot, CellId id,
                               obs::ProtocolCounts* counts,
                               std::vector<CellId>* changed_out) {
  CellState& c = lc.cells[slot];
  if (c.failed) return;
  if (id == config_.target) {
    if (c.dist != Dist::zero()) {
      if (counts != nullptr) ++counts->route_dist_changes;
      if (changed_out != nullptr) changed_out->push_back(id);
    }
    c.dist = Dist::zero();
    c.next = std::nullopt;
    return;
  }

  NeighborDist nds[4] = {};
  std::size_t n = 0;
  for (const Direction d : kAllDirections) {
    const auto st = step_of(d);
    const CellId nid{id.i + st[0], id.j + st[1]};
    if (!grid_.contains(nid)) continue;
    // Same-chunk reads hit the chunk's own frozen snapshot directly; a
    // cross-chunk read resolves through the store (live snapshot, parked
    // summary, or the virgin initial value — all frozen for the phase).
    Dist dist;
    if (nid.i >= rect.i0 && nid.i < rect.i0 + rect.w && nid.j >= rect.j0 &&
        nid.j < rect.j0 + rect.h) {
      dist = lc.dist_snapshot[static_cast<std::size_t>(nid.j - rect.j0) *
                                  static_cast<std::size_t>(rect.w) +
                              static_cast<std::size_t>(nid.i - rect.i0)];
    } else {
      dist = store_.boundary_dist(nid);
    }
    nds[n++] = NeighborDist{nid, dist};
  }
  const RouteResult r = route_step(std::span<const NeighborDist>(nds, n));
  if (counts != nullptr) {
    counts->route_relaxations += n;
    if (c.dist != r.dist) ++counts->route_dist_changes;
  }
  if (changed_out != nullptr && c.dist != r.dist) changed_out->push_back(id);
  c.dist = r.dist;
  c.next = r.next;
}

void ChunkedSystem::run_signal_phase() {
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  // A stateful choose policy pins Signal serial — and, here, to a
  // *global row-major* sweep: chunk-major traversal would permute the
  // policy's call sequence relative to the dense serial loop.
  const auto& order = store_.live_order();
  ThreadPool* pool =
      choose_->concurrent_safe()
          ? phase_pool(order.size() *
                       static_cast<std::size_t>(kChunkSide * kChunkSide))
          : nullptr;
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();

  if (pool == nullptr) {
    // Serial sweep in ascending dense-index order (rows across all
    // chunks, skipping non-live chunks bodily). Also the no-pool path:
    // for pure policies any order gives identical per-cell results, and
    // one serial path that always matches the dense pinned loop is
    // simpler to trust than two.
    ShardScratch& sc = scratch_.shards[0];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    const int side = grid_.side();
    const int cx = layout_.chunks_x();
    for (int cj = 0; cj < cx; ++cj) {
      const int j_lo = cj * kChunkSide;
      const int j_hi = std::min(side, j_lo + kChunkSide);
      for (int j = j_lo; j < j_hi; ++j) {
        for (int ci = 0; ci < cx; ++ci) {
          const std::size_t q =
              static_cast<std::size_t>(cj) * static_cast<std::size_t>(cx) +
              static_cast<std::size_t>(ci);
          if (!store_.is_live(q)) continue;
          LiveChunk& lc = store_.live(q);
          const ChunkLayout::Rect rect = layout_.rect_of(q);
          std::size_t slot =
              static_cast<std::size_t>(j - rect.j0) *
              static_cast<std::size_t>(rect.w);
          for (int li = 0; li < rect.w; ++li, ++slot) {
            const CellId id{rect.i0 + li, j};
            if (!active) {
              signal_cell(lc, rect, slot, id, sc.blocked, pc, nullptr);
              ++sc.visited;
            } else if (lc.occ_refs[slot] > 0) {
              signal_cell(lc, rect, slot, id, sc.blocked, pc, &sc.flips);
              ++sc.visited;
            } else if (pc != nullptr && !lc.cells[slot].failed) {
              ++pc->ne_prev_sizes[0];
            }
          }
        }
      }
    }
  } else {
    const auto body = [&](std::size_t s, ShardRange r) {
      ShardScratch& sc = scratch_.shards[s];
      obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
      for (std::size_t x = r.begin; x < r.end; ++x) {
        const std::size_t q = order[x];
        LiveChunk& lc = store_.live(q);
        const ChunkLayout::Rect rect = layout_.rect_of(q);
        std::size_t slot = 0;
        for (int lj = 0; lj < rect.h; ++lj) {
          for (int li = 0; li < rect.w; ++li, ++slot) {
            const CellId id{rect.i0 + li, rect.j0 + lj};
            if (!active) {
              signal_cell(lc, rect, slot, id, sc.blocked, pc, nullptr);
              ++sc.visited;
            } else if (lc.occ_refs[slot] > 0) {
              signal_cell(lc, rect, slot, id, sc.blocked, pc, &sc.flips);
              ++sc.visited;
            } else if (pc != nullptr && !lc.cells[slot].failed) {
              ++pc->ne_prev_sizes[0];
            }
          }
        }
      }
    };
    parallel_for_shards(pool, order.size(), body);
  }

  sched_stats_.signal_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.blocked.insert(events_.blocked.end(), sc.blocked.begin(),
                           sc.blocked.end());
    if (metrics_) round_counts_.merge(sc.counts);
    sched_stats_.signal_cells += sc.visited;
  }
  // Canonicalize: the dense engines emit blocked events in ascending
  // dense-index order by construction; chunk-major traversal does not,
  // so sort (cell ids are unique — the order is total).
  std::sort(events_.blocked.begin(), events_.blocked.end(), dense_less);

  // Skipped-chunk compensation (see run_route_phase): one ne_prev_sizes[0]
  // per non-failed cell. Tallied before the occupancy flips are applied —
  // a flip can fault a neighboring chunk in, and a chunk that was
  // non-live during the sweep still owes this round's tally.
  if (active && metrics_ != nullptr) {
    for (std::size_t q = 0; q < store_.chunk_count(); ++q) {
      switch (store_.state(q)) {
        case ChunkedCellStore::State::kLive:
          break;
        case ChunkedCellStore::State::kParked:
          round_counts_.ne_prev_sizes[0] += store_.parked(q).live_cells;
          break;
        case ChunkedCellStore::State::kVirgin:
          round_counts_.ne_prev_sizes[0] += layout_.cells_in(q);
          break;
      }
    }
  }

  for (std::size_t s = 0; s < nshards; ++s)
    for (const CellId id : scratch_.shards[s].flips)
      apply_occupancy_flip(id);
}

void ChunkedSystem::signal_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                                std::size_t slot, CellId id,
                                std::vector<CellId>& blocked_out,
                                obs::ProtocolCounts* counts,
                                std::vector<CellId>* flip_out) {
  CellState& c = lc.cells[slot];
  if (c.failed) return;

  SignalInputs in;
  in.self = id;
  in.members = c.members;
  in.token = c.token;
  for (const Direction d : kAllDirections) {
    const auto st = step_of(d);
    const CellId nid{id.i + st[0], id.j + st[1]};
    if (!grid_.contains(nid)) continue;
    const CellState* nc;
    if (nid.i >= rect.i0 && nid.i < rect.i0 + rect.w && nid.j >= rect.j0 &&
        nid.j < rect.j0 + rect.h) {
      nc = &lc.cells[static_cast<std::size_t>(nid.j - rect.j0) *
                         static_cast<std::size_t>(rect.w) +
                     static_cast<std::size_t>(nid.i - rect.i0)];
    } else {
      // A non-live neighbor has no members, so it can never be a
      // nonempty predecessor — skipping it reads exactly what the dense
      // engine reads from the same (empty) cell.
      nc = peek_live(nid);
      if (nc == nullptr) continue;
    }
    if (nc->failed) continue;
    if (nc->next == OptCellId{id} && nc->has_entities())
      in.ne_prev.push_back(nid);
  }
  std::sort(in.ne_prev.begin(), in.ne_prev.end());

  const bool had_candidate = in.token.has_value() || !in.ne_prev.empty();
  const std::size_t ne_prev_size = in.ne_prev.size();
  const OptCellId old_token = c.token;
  SignalResult r =
      config_.signal_rule == SignalRule::kBlocking
          ? signal_step(std::move(in), config_.params, *choose_)
          : signal_step_always_grant(std::move(in), *choose_);
  if (had_candidate && !r.signal.has_value()) blocked_out.push_back(id);
  if (counts != nullptr) {
    ++counts->ne_prev_sizes[std::min<std::size_t>(
        ne_prev_size, counts->ne_prev_sizes.size() - 1)];
    if (r.signal.has_value()) ++counts->signal_grants;
    if (had_candidate && !r.signal.has_value()) ++counts->signal_blocks;
    if (old_token.has_value() && r.token != old_token)
      ++counts->signal_token_rotations;
  }
  c.signal = r.signal;
  c.token = r.token;
  c.ne_prev = std::move(r.ne_prev);
  if (flip_out != nullptr && occupied(c) != (lc.occ_b[slot] != 0))
    flip_out->push_back(id);
}

void ChunkedSystem::run_move_phase() {
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  const auto& order = store_.live_order();
  ThreadPool* pool = phase_pool(
      order.size() * static_cast<std::size_t>(kChunkSide * kChunkSide));
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();
  const auto body = [&](std::size_t s, ShardRange r) {
    ShardScratch& sc = scratch_.shards[s];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    for (std::size_t x = r.begin; x < r.end; ++x) {
      const std::size_t q = order[x];
      LiveChunk& lc = store_.live(q);
      const ChunkLayout::Rect rect = layout_.rect_of(q);
      std::size_t slot = 0;
      for (int lj = 0; lj < rect.h; ++lj) {
        for (int li = 0; li < rect.w; ++li, ++slot) {
          const CellId id{rect.i0 + li, rect.j0 + lj};
          if (!active) {
            move_cell(lc, rect, slot, id, sc.moved, sc.pending, sc.crossed,
                      pc);
            ++sc.visited;
          } else if (lc.occ_refs[slot] > 0) {
            move_cell(lc, rect, slot, id, sc.moved, sc.pending, sc.crossed,
                      pc);
            ++sc.visited;
          }
        }
      }
    }
  };
  parallel_for_shards(pool, order.size(), body);

  sched_stats_.move_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.moved.insert(events_.moved.end(), sc.moved.begin(),
                         sc.moved.end());
    if (metrics_) round_counts_.merge(sc.counts);
    sched_stats_.move_cells += sc.visited;
  }
  std::sort(events_.moved.begin(), events_.moved.end(), dense_less);

  std::vector<PendingTransfer>& transfers = scratch_.transfers;
  transfers.clear();
  for (std::size_t s = 0; s < nshards; ++s) {
    std::vector<PendingTransfer>& p = scratch_.shards[s].pending;
    transfers.insert(transfers.end(), std::make_move_iterator(p.begin()),
                     std::make_move_iterator(p.end()));
  }
  // Chunk-major shards do NOT produce the canonical origin order, so the
  // sort inside is load-bearing here (unlike the dense engines, where it
  // only guards against drift).
  canonical_transfer_order(grid_, transfers);

  for (PendingTransfer& t : transfers) {
    TransferEvent ev{t.entity.id, t.from, t.to, /*consumed=*/false};
    if (t.to == config_.target) {
      ev.consumed = true;
      ++total_arrivals_;
      ++events_.arrivals;
      if (metrics_) ++round_counts_.consumptions;
    } else {
      // The destination granted this transfer, so it has a signal set —
      // it is occupied and therefore live; cell_mut is a plain lookup.
      cell_mut(t.to).members.push_back(t.entity);
    }
    events_.transfers.push_back(ev);
  }
  if (active) {
    for (const CellId id : events_.moved) refresh_occupancy(id);
    for (const TransferEvent& t : events_.transfers)
      if (!t.consumed) refresh_occupancy(t.to);
  }
}

void ChunkedSystem::move_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                              std::size_t slot, CellId id,
                              std::vector<CellId>& moved_out,
                              std::vector<PendingTransfer>& pending_out,
                              std::vector<Entity>& crossed_scratch,
                              obs::ProtocolCounts* counts) {
  CellState& c = lc.cells[slot];
  if (c.failed || !c.next.has_value()) return;
  const CellId dest = *c.next;
  const CellState* dc;
  if (dest.i >= rect.i0 && dest.i < rect.i0 + rect.w && dest.j >= rect.j0 &&
      dest.j < rect.j0 + rect.h) {
    dc = &lc.cells[static_cast<std::size_t>(dest.j - rect.j0) *
                       static_cast<std::size_t>(rect.w) +
                   static_cast<std::size_t>(dest.i - rect.i0)];
  } else {
    // A non-live destination has signal ⊥ (quiescent), so no permission —
    // the same read the dense engine performs on that cell.
    dc = peek_live(dest);
  }
  const bool permitted = dc != nullptr && dc->signal == OptCellId{id};

  crossed_scratch.clear();
  if (config_.movement_rule == MovementRule::kCoupled) {
    if (!permitted) return;
    moved_out.push_back(id);
    if (counts != nullptr) ++counts->moves;
    move_step_inplace(id, dest, c.members, crossed_scratch, config_.params);
  } else {
    if (c.members.empty()) return;
    if (permitted) {
      moved_out.push_back(id);
      if (counts != nullptr) ++counts->moves;
    }
    CompactionContext ctx;
    ctx.may_cross = permitted;
    if (c.signal.has_value())
      ctx.promised_strip = grid_.direction_between(id, *c.signal);
    compact_move_step_inplace(id, dest, c.members, crossed_scratch,
                              config_.params, ctx);
  }
  if (counts != nullptr) counts->transfers += crossed_scratch.size();
  for (Entity& e : crossed_scratch)
    pending_out.push_back(PendingTransfer{e, id, dest});
}

void ChunkedSystem::run_inject_phase() {
  for (const CellId s : config_.sources) {
    CellState& c = cell_mut(s);  // source chunks are pinned live
    if (c.failed) continue;
    const auto center = source_->propose(grid_, config_.params, s, c);
    if (!center.has_value()) continue;
    if (!injection_is_safe(s, *center)) {
      if (metrics_) ++round_counts_.blocked_injections;
      continue;
    }
    const EntityId id{next_entity_id_++};
    c.members.push_back(Entity{id, *center});
    refresh_occupancy(s);
    source_->note_accepted();
    events_.injected.emplace_back(s, id);
    if (metrics_) ++round_counts_.injections;
  }
}

void ChunkedSystem::park_sweep() {
  // park() restructures the store, so sweep over a copy of the live list.
  scratch_.park_scan = store_.live_order();
  for (const std::uint32_t q : scratch_.park_scan) {
    if (pinned_[q] != 0) continue;
    LiveChunk& lc = store_.live(q);
    // Quiescence predicates (see the file comment in chunked_system.hpp):
    // no occupied closed neighborhood anywhere in the chunk, and no cell
    // armed for Route this round or later.
    if (lc.ref_cells != 0 || lc.max_stamp >= round_) {
      lc.quiet_rounds = 0;
      continue;
    }
    if (lc.quiet_rounds < kParkHysteresis) {
      ++lc.quiet_rounds;
      continue;
    }
    if (!store_.parkable(q)) continue;  // unencodable (corrupted) state
    store_.park(q);
  }
}

}  // namespace cellflow::chunk
