// The cell-store seam (DESIGN.md §12): System's per-cell state lives
// behind a minimal store type instead of a bare std::vector, so the dense
// reference engine and the chunked sparse engine name the same concept.
//
// The "interface" is deliberately a compile-time shape, not a virtual
// class — the round hot path indexes cells per neighbor per phase, and a
// vtable dispatch there would be pure overhead. A cell store provides:
//
//   size()                 — total cells (dense index space of the Grid)
//   operator[](k)          — reference to cell k's CellState
//   resident_bytes()       — heap footprint actually materialized
//
// DenseCellStore (below) is the trivial realization backing `System`: all
// N² cells resident, indexing is vector indexing. ChunkedCellStore
// (chunked_store.hpp) materializes 32×32 tiles lazily and parks quiescent
// ones; it backs chunk::ChunkedSystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/cell_state.hpp"

namespace cellflow::chunk {

/// Heap bytes owned by one CellState beyond sizeof(CellState): the
/// members vector's buffer (NeighborSet is inline by construction).
[[nodiscard]] inline std::uint64_t cell_heap_bytes(
    const CellState& c) noexcept {
  return static_cast<std::uint64_t>(c.members.capacity()) * sizeof(Entity);
}

/// The dense cell store: every cell of the grid resident, always. This is
/// the reference storage model — the chunked store must be observationally
/// identical to it (pinned by tests/test_chunk_differential.cpp).
class DenseCellStore {
 public:
  DenseCellStore() = default;
  explicit DenseCellStore(std::size_t n) : cells_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  [[nodiscard]] CellState& operator[](std::size_t k) { return cells_[k]; }
  [[nodiscard]] const CellState& operator[](std::size_t k) const {
    return cells_[k];
  }

  [[nodiscard]] auto begin() noexcept { return cells_.begin(); }
  [[nodiscard]] auto end() noexcept { return cells_.end(); }
  [[nodiscard]] auto begin() const noexcept { return cells_.begin(); }
  [[nodiscard]] auto end() const noexcept { return cells_.end(); }

  [[nodiscard]] std::span<const CellState> span() const noexcept {
    return cells_;
  }

  /// Snapshot restore swaps the whole state in at the commit point
  /// (snapshot::Access is the one caller).
  DenseCellStore& operator=(std::vector<CellState>&& cells) {
    cells_ = std::move(cells);
    return *this;
  }

  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    std::uint64_t b = static_cast<std::uint64_t>(cells_.capacity()) *
                      sizeof(CellState);
    for (const CellState& c : cells_) b += cell_heap_bytes(c);
    return b;
  }

 private:
  std::vector<CellState> cells_;
};

}  // namespace cellflow::chunk
