// ChunkedCellStore (DESIGN.md §12): the sparse realization of the cell
// store — 32×32 tiles materialized lazily on first touch and *parked*
// (state summarized, cell memory recycled through a freelist) once the
// active-set scheduler's stamps and refcounts prove the whole tile
// quiescent.
//
// A chunk is in exactly one of three states:
//
//   kVirgin — never touched: every cell is in the paper's initial state
//             (dist ∞, pointers ⊥, no members, non-faulty). Zero bytes.
//   kLive   — fully materialized: CellStates plus the per-cell scheduler
//             aux (dist snapshot, route stamps, occupancy bits/refcounts)
//             that System keeps in global arrays.
//   kParked — summarized: per cell only {failed, dist, next-direction}.
//             Everything else is provably at its rest value — an
//             unoccupied cell (refcount 0 at park time) has no members,
//             no token, no signal, no NEPrev. The dist summary is the
//             immutable boundary data neighbor Route reads consult, so
//             routing across a live/parked border is bit-identical to
//             the dense engine.
//
// Parking is a pure storage transition: ChunkedSystem decides *when* (the
// quiescence proof lives there); the store implements the two directions
// losslessly. parkable() is the encodability guard: a cell whose state
// cannot round-trip through the summary (adversarially corrupted finite
// dist beyond 32 bits, or a corrupted failed cell whose `next` is not a
// lattice neighbor) simply keeps its chunk live — deferring parking is
// always correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "chunk/cell_store.hpp"
#include "chunk/chunk_layout.hpp"
#include "core/cell_state.hpp"
#include "util/ids.hpp"

namespace cellflow::obs {
struct StoreStatsSample;  // obs/alloc_stats.hpp
}

namespace cellflow::chunk {

/// A materialized tile: the cells plus the per-cell active-set scheduler
/// aux, sliced per chunk (System keeps the same four arrays dense).
struct LiveChunk {
  std::vector<CellState> cells;            ///< slot-indexed (row-major rect)
  std::vector<Dist> dist_snapshot;         ///< previous-round dist per slot
  std::vector<std::uint64_t> route_stamp;  ///< run Route iff >= round
  std::vector<std::uint8_t> occ_b;         ///< B(cell), cached
  std::vector<std::uint8_t> occ_refs;      ///< # occupied in closed nbhd

  // Quiescence bookkeeping, maintained by ChunkedSystem:
  std::uint32_t ref_cells = 0;    ///< # slots with occ_refs > 0
  std::uint64_t max_stamp = 0;    ///< monotone sup of route_stamp writes
  std::uint32_t quiet_rounds = 0; ///< consecutive fully-quiescent rounds

  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;
};

/// A parked tile: the per-cell summary. `dist` uses a u32 encoding
/// (0xFFFFFFFF = ∞; parkable() refuses larger finite values — stabilized
/// distances are bounded by N² ≪ 2³², only adversarial corruption can
/// exceed it). `meta` packs the next-pointer direction in the low 3 bits
/// (kAllDirections order, 4 = ⊥) and `failed` in bit 7.
struct ParkedChunk {
  static constexpr std::uint32_t kInfDist32 = 0xFFFFFFFFu;
  static constexpr std::uint8_t kNoDir = 4;
  static constexpr std::uint8_t kFailedBit = 0x80;

  std::vector<std::uint32_t> dist;
  std::vector<std::uint8_t> meta;

  // Cached compensation terms for the scheduler's skipped-chunk tallies
  // (see ChunkedSystem's phase loops):
  std::uint64_t route_comp = 0;  ///< Σ degree over non-failed non-target cells
  std::uint32_t live_cells = 0;  ///< # non-failed cells

  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;
};

class ChunkedCellStore {
 public:
  enum class State : std::uint8_t { kVirgin = 0, kLive = 1, kParked = 2 };

  /// Lifecycle counters, monotone over the store's lifetime (exported as
  /// Prometheus counters by attachers — see obs/alloc_stats.hpp).
  struct Stats {
    std::uint64_t materialized_total = 0;  ///< virgin → live transitions
    std::uint64_t parked_total = 0;        ///< live → parked transitions
    std::uint64_t unparked_total = 0;      ///< parked → live transitions
  };

  ChunkedCellStore(int side, CellId target);

  [[nodiscard]] const ChunkLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] CellId target() const noexcept { return target_; }

  [[nodiscard]] State state(std::size_t q) const { return slots_[q].state; }
  [[nodiscard]] bool is_live(std::size_t q) const {
    return slots_[q].state == State::kLive;
  }

  [[nodiscard]] LiveChunk& live(std::size_t q) { return *slots_[q].live; }
  [[nodiscard]] const LiveChunk& live(std::size_t q) const {
    return *slots_[q].live;
  }
  [[nodiscard]] const ParkedChunk& parked(std::size_t q) const {
    return *slots_[q].parked;
  }

  /// Materializes a chunk (virgin → live via initial state, parked → live
  /// via the summary). No-op on a live chunk. Returns the live chunk.
  LiveChunk& ensure_live(std::size_t q);

  /// True iff every cell of live chunk `q` round-trips through the parked
  /// summary (see the class comment). Quiescence is the *caller's*
  /// precondition, not checked here.
  [[nodiscard]] bool parkable(std::size_t q) const;

  /// live → parked. Preconditions: is_live(q), parkable(q), and every
  /// cell unoccupied (asserted) — the caller proves quiescence from its
  /// refcounts/stamps before calling.
  void park(std::size_t q);

  /// The dist a neighbor Route read observes for cell `id`, regardless of
  /// its chunk's state (live: the snapshot; parked: the summary; virgin:
  /// the initial value — ∞ except a hypothetical virgin target).
  [[nodiscard]] Dist boundary_dist(CellId id) const;

  /// The full CellState of a *non-live* cell, reconstructed: from the
  /// summary when parked, the initial state when virgin. Everything the
  /// summary does not carry is at its rest value by the parking proof
  /// obligation (token/signal ⊥, ne_prev/members empty). Used by reads
  /// that must not fault the chunk in (ChunkedSystem::cell, the snapshot
  /// digest). Precondition: !is_live(q).
  [[nodiscard]] CellState rest_cell(std::size_t q, std::size_t slot) const;

  /// Live chunk indices, ascending — the shard domain of ChunkedSystem's
  /// phase loops. Rebuilt lazily after any state transition.
  [[nodiscard]] const std::vector<std::uint32_t>& live_order();

  [[nodiscard]] std::size_t live_count() const noexcept { return live_n_; }
  [[nodiscard]] std::size_t parked_count() const noexcept { return parked_n_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Heap footprint actually materialized: live cells + aux, parked
  /// summaries, the freelist's recycled buffers, and the index itself.
  /// This is the store-attributed figure bench/macro_huge_grid gates on.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

  /// Everything obs::StoreStatsPublisher publishes, in one read.
  [[nodiscard]] obs::StoreStatsSample stats_sample() const noexcept;

 private:
  struct Slot {
    State state = State::kVirgin;
    std::unique_ptr<LiveChunk> live;
    std::unique_ptr<ParkedChunk> parked;
  };

  /// Initializes `lc` to cover chunk `q` in the initial (virgin) state.
  void init_virgin(std::size_t q, LiveChunk& lc) const;
  /// Initializes `lc` from the parked summary of chunk `q`.
  void init_from_parked(std::size_t q, LiveChunk& lc) const;

  [[nodiscard]] std::unique_ptr<LiveChunk> take_buffer();
  void recycle_buffer(std::unique_ptr<LiveChunk> lc);

  ChunkLayout layout_;
  CellId target_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<LiveChunk>> freelist_;
  std::vector<std::uint32_t> live_order_;
  bool live_order_dirty_ = true;
  std::size_t live_n_ = 0;
  std::size_t parked_n_ = 0;
  Stats stats_;
};

}  // namespace cellflow::chunk
