#include "chunk/chunked_store.hpp"

#include <algorithm>
#include <utility>

#include "obs/alloc_stats.hpp"
#include "util/check.hpp"

namespace cellflow::chunk {

namespace {

/// Bounded freelist: enough to absorb park/unpark churn at a moving
/// activity frontier without retaining a dead world's worth of buffers.
constexpr std::size_t kFreelistMax = 8;

/// Direction code of `next` relative to `id` in kAllDirections order
/// (E=0, W=1, N=2, S=3), or kNoDir when absent. Returns one past kNoDir
/// when `next` is not a lattice neighbor (not encodable).
std::uint8_t dir_code_of(CellId id, const OptCellId& next) noexcept {
  if (!next.has_value()) return ParkedChunk::kNoDir;
  const int di = next->i - id.i;
  const int dj = next->j - id.j;
  if (di == 1 && dj == 0) return 0;
  if (di == -1 && dj == 0) return 1;
  if (di == 0 && dj == 1) return 2;
  if (di == 0 && dj == -1) return 3;
  return ParkedChunk::kNoDir + 1;
}

OptCellId next_of_dir_code(CellId id, std::uint8_t code) noexcept {
  switch (code) {
    case 0: return CellId{id.i + 1, id.j};
    case 1: return CellId{id.i - 1, id.j};
    case 2: return CellId{id.i, id.j + 1};
    case 3: return CellId{id.i, id.j - 1};
    default: return std::nullopt;
  }
}

std::uint64_t vec_bytes(std::size_t capacity, std::size_t elem) noexcept {
  return static_cast<std::uint64_t>(capacity) *
         static_cast<std::uint64_t>(elem);
}

}  // namespace

std::uint64_t LiveChunk::resident_bytes() const noexcept {
  std::uint64_t b = vec_bytes(cells.capacity(), sizeof(CellState)) +
                    vec_bytes(dist_snapshot.capacity(), sizeof(Dist)) +
                    vec_bytes(route_stamp.capacity(), sizeof(std::uint64_t)) +
                    vec_bytes(occ_b.capacity(), 1) +
                    vec_bytes(occ_refs.capacity(), 1);
  for (const CellState& c : cells) b += cell_heap_bytes(c);
  return b;
}

std::uint64_t ParkedChunk::resident_bytes() const noexcept {
  return vec_bytes(dist.capacity(), sizeof(std::uint32_t)) +
         vec_bytes(meta.capacity(), 1);
}

ChunkedCellStore::ChunkedCellStore(int side, CellId target)
    : layout_(side), target_(target), slots_(layout_.chunk_count()) {}

LiveChunk& ChunkedCellStore::ensure_live(std::size_t q) {
  Slot& s = slots_[q];
  if (s.state == State::kLive) return *s.live;
  std::unique_ptr<LiveChunk> lc = take_buffer();
  if (s.state == State::kVirgin) {
    init_virgin(q, *lc);
    ++stats_.materialized_total;
  } else {
    init_from_parked(q, *lc);
    s.parked.reset();
    --parked_n_;
    ++stats_.unparked_total;
  }
  s.live = std::move(lc);
  s.state = State::kLive;
  ++live_n_;
  live_order_dirty_ = true;
  return *s.live;
}

bool ChunkedCellStore::parkable(std::size_t q) const {
  const Slot& s = slots_[q];
  if (s.state != State::kLive) return false;
  for (std::size_t slot = 0; slot < s.live->cells.size(); ++slot) {
    const CellState& c = s.live->cells[slot];
    if (c.dist.is_finite() &&
        c.dist.hops() >= ParkedChunk::kInfDist32)
      return false;
    const CellId id = layout_.cell_at(q, slot);
    if (dir_code_of(id, c.next) > ParkedChunk::kNoDir) return false;
  }
  return true;
}

void ChunkedCellStore::park(std::size_t q) {
  Slot& s = slots_[q];
  CF_EXPECTS_MSG(s.state == State::kLive, "park() on a non-live chunk");
  LiveChunk& lc = *s.live;
  auto parked = std::make_unique<ParkedChunk>();
  const std::size_t n = lc.cells.size();
  parked->dist.resize(n);
  parked->meta.resize(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const CellState& c = lc.cells[slot];
    const CellId id = layout_.cell_at(q, slot);
    // The caller proved quiescence: an unoccupied cell carries no
    // members, token, signal, or NEPrev — nothing else to summarize.
    CF_EXPECTS_MSG(c.members.empty() && !c.token.has_value() &&
                       !c.signal.has_value() && c.ne_prev.empty(),
                   "park() on an occupied cell");
    parked->dist[slot] =
        c.dist.is_infinite()
            ? ParkedChunk::kInfDist32
            : static_cast<std::uint32_t>(c.dist.hops());
    const std::uint8_t code = dir_code_of(id, c.next);
    CF_EXPECTS_MSG(code <= ParkedChunk::kNoDir,
                   "park() on a non-encodable next pointer");
    parked->meta[slot] =
        static_cast<std::uint8_t>(code | (c.failed ? ParkedChunk::kFailedBit
                                                   : std::uint8_t{0}));
    if (!c.failed) {
      ++parked->live_cells;
      if (id != target_)
        parked->route_comp += static_cast<std::uint64_t>(layout_.degree_of(id));
    }
  }
  recycle_buffer(std::move(s.live));
  s.parked = std::move(parked);
  s.state = State::kParked;
  --live_n_;
  ++parked_n_;
  ++stats_.parked_total;
  live_order_dirty_ = true;
}

Dist ChunkedCellStore::boundary_dist(CellId id) const {
  const std::size_t q = layout_.chunk_of(id);
  const Slot& s = slots_[q];
  switch (s.state) {
    case State::kLive:
      return s.live->dist_snapshot[layout_.slot_of(id)];
    case State::kParked: {
      const std::uint32_t raw = s.parked->dist[layout_.slot_of(id)];
      return raw == ParkedChunk::kInfDist32 ? Dist::infinity()
                                            : Dist::finite(raw);
    }
    case State::kVirgin:
      // The target's chunk is materialized at construction and pinned, so
      // a virgin cell is always at the initial non-target value.
      return id == target_ ? Dist::zero() : Dist::infinity();
  }
  return Dist::infinity();
}

CellState ChunkedCellStore::rest_cell(std::size_t q, std::size_t slot) const {
  const Slot& s = slots_[q];
  CF_EXPECTS_MSG(s.state != State::kLive, "rest_cell() on a live chunk");
  CellState c;
  if (s.state == State::kParked) {
    const std::uint32_t raw = s.parked->dist[slot];
    c.dist = raw == ParkedChunk::kInfDist32 ? Dist::infinity()
                                            : Dist::finite(raw);
    const std::uint8_t meta = s.parked->meta[slot];
    c.failed = (meta & ParkedChunk::kFailedBit) != 0;
    c.next = next_of_dir_code(layout_.cell_at(q, slot),
                              static_cast<std::uint8_t>(meta & 0x7));
  } else if (layout_.cell_at(q, slot) == target_) {
    c.dist = Dist::zero();
  }
  return c;
}

const std::vector<std::uint32_t>& ChunkedCellStore::live_order() {
  if (live_order_dirty_) {
    live_order_.clear();
    live_order_.reserve(live_n_);
    for (std::size_t q = 0; q < slots_.size(); ++q)
      if (slots_[q].state == State::kLive)
        live_order_.push_back(static_cast<std::uint32_t>(q));
    live_order_dirty_ = false;
  }
  return live_order_;
}

std::uint64_t ChunkedCellStore::resident_bytes() const noexcept {
  std::uint64_t b = vec_bytes(slots_.capacity(), sizeof(Slot)) +
                    vec_bytes(live_order_.capacity(), sizeof(std::uint32_t)) +
                    vec_bytes(freelist_.capacity(), sizeof(void*));
  for (const Slot& s : slots_) {
    if (s.live) b += sizeof(LiveChunk) + s.live->resident_bytes();
    if (s.parked) b += sizeof(ParkedChunk) + s.parked->resident_bytes();
  }
  for (const auto& lc : freelist_)
    b += sizeof(LiveChunk) + lc->resident_bytes();
  return b;
}

obs::StoreStatsSample ChunkedCellStore::stats_sample() const noexcept {
  obs::StoreStatsSample s;
  s.resident_bytes = resident_bytes();
  s.live_chunks = live_n_;
  s.parked_chunks = parked_n_;
  s.virgin_chunks = slots_.size() - live_n_ - parked_n_;
  s.materialized_total = stats_.materialized_total;
  s.parked_total = stats_.parked_total;
  s.unparked_total = stats_.unparked_total;
  return s;
}

void ChunkedCellStore::init_virgin(std::size_t q, LiveChunk& lc) const {
  const std::size_t n = layout_.cells_in(q);
  lc.cells.clear();
  lc.cells.resize(n);
  lc.dist_snapshot.assign(n, Dist::infinity());
  lc.route_stamp.assign(n, 0);
  lc.occ_b.assign(n, 0);
  lc.occ_refs.assign(n, 0);
  lc.ref_cells = 0;
  lc.max_stamp = 0;
  lc.quiet_rounds = 0;
  if (layout_.chunk_of(target_) == q) {
    // Defensive: the engine materializes and pins the target chunk at
    // construction, so this path is only reachable through direct store
    // use (unit tests) — keep the initial state right regardless.
    const std::size_t slot = layout_.slot_of(target_);
    lc.cells[slot].dist = Dist::zero();
    lc.dist_snapshot[slot] = Dist::zero();
  }
}

void ChunkedCellStore::init_from_parked(std::size_t q, LiveChunk& lc) const {
  const ParkedChunk& p = *slots_[q].parked;
  const std::size_t n = p.dist.size();
  lc.cells.clear();
  lc.cells.resize(n);
  lc.dist_snapshot.resize(n);
  lc.route_stamp.assign(n, 0);
  lc.occ_b.assign(n, 0);
  lc.occ_refs.assign(n, 0);
  lc.ref_cells = 0;
  lc.max_stamp = 0;
  lc.quiet_rounds = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    CellState& c = lc.cells[slot];
    const std::uint32_t raw = p.dist[slot];
    c.dist = raw == ParkedChunk::kInfDist32 ? Dist::infinity()
                                            : Dist::finite(raw);
    const std::uint8_t meta = p.meta[slot];
    c.failed = (meta & ParkedChunk::kFailedBit) != 0;
    c.next = next_of_dir_code(layout_.cell_at(q, slot),
                              static_cast<std::uint8_t>(meta & 0x7));
    lc.dist_snapshot[slot] = c.dist;
  }
}

std::unique_ptr<LiveChunk> ChunkedCellStore::take_buffer() {
  if (freelist_.empty()) return std::make_unique<LiveChunk>();
  std::unique_ptr<LiveChunk> lc = std::move(freelist_.back());
  freelist_.pop_back();
  return lc;
}

void ChunkedCellStore::recycle_buffer(std::unique_ptr<LiveChunk> lc) {
  if (freelist_.size() >= kFreelistMax) return;  // drop: actually free
  // Release the per-cell heap now (members buffers of 1024 cells dwarf
  // the chunk's own arrays); keep the arrays' capacity for reuse.
  lc->cells.clear();
  freelist_.push_back(std::move(lc));
}

}  // namespace cellflow::chunk
