// ChunkedSystem (DESIGN.md §12): the sparse-world realization of the
// System automaton, storing cells in a ChunkedCellStore instead of the
// dense N² vector. Observationally it is the *same* automaton — same
// rounds, same events, same protocol counters, same state digest — pinned
// by tests/test_chunk_differential.cpp against the dense reference at
// every (engine, threads, scheduler) combination.
//
// What changes is purely mechanical:
//
//   * Chunks are the unit of sharding: the phase loops run over the
//     ascending live-chunk list, sharded into contiguous ranges exactly
//     as System shards the cell index space, with per-shard buffers
//     merged in shard order. Because a chunk-major traversal is not the
//     global row-major order, the per-round event lists (blocked, moved)
//     are canonicalized — sorted by dense cell index — at the barrier;
//     the dense engines produce exactly that order by construction, so
//     the event streams coincide.
//   * Non-live chunks are skipped bodily. This is sound because of the
//     store invariants the engine maintains (fault-in before any arming
//     or occupancy reference can reach a non-live chunk): every armed
//     cell is in a live chunk, every cell with occ_refs > 0 is in a live
//     chunk, and no occupied cell is ever adjacent to a non-live chunk.
//     The skipped cells' per-round metric tallies (a degree's worth of
//     route relaxations per live cell, one ne_prev_sizes[0] per live
//     cell — exactly what the dense active-set scheduler tallies for
//     quiescent cells) are compensated from O(1) per-chunk summaries.
//   * A stateful (non-concurrent_safe) ChoosePolicy pins Signal to a
//     *global row-major* serial sweep across chunks, so the policy
//     observes the identical call sequence as the dense serial loop.
//
// Parking (the quiescence proof obligation): a chunk parks only when
//   ref_cells == 0        — no cell of the chunk has an occupied closed
//                           neighborhood, so Signal/Move are no-ops and,
//                           since occupancy cannot arise spontaneously,
//                           stay no-ops until an external effect
//                           (transfer, injection, mutation) arrives —
//                           every such effect faults the chunk in first;
//   max_stamp < round     — no cell is armed for Route now or later, so
//                           route_step reproduces the stored dist/next
//                           until a neighboring dist changes — and the
//                           post-Route merge faults the chunk in before
//                           arming any of its cells;
// sustained for kParkHysteresis consecutive rounds (pure hysteresis —
// correctness needs only the two predicates), the chunk is not pinned
// (target/source chunks never park), and the state is summary-encodable
// (ChunkedCellStore::parkable). Parked cells therefore satisfy
// route_step(neighbor dists) == stored (dist, next) by construction, and
// neighbors keep reading the same dist values from the immutable parked
// summary — which is why routing across a live/parked border is
// bit-identical to dense.
//
// Deliberately not carried over from System: PhaseHook, PhaseProfiler,
// EngineTelemetry, and the BFS oracle helpers — the safety-oracle suites
// run them on a dense twin stepped in lockstep (same seeds, same
// transitions), which also keeps this engine's hot loops free of
// observation plumbing. MessageSystem has no chunked realization either:
// the differential suites compare ChunkedSystem against *both* dense
// realizations instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chunk/chunked_store.hpp"
#include "core/choose.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "grid/grid.hpp"
#include "obs/protocol_metrics.hpp"
#include "util/thread_pool.hpp"

namespace cellflow::snapshot {
struct Access;
}  // namespace cellflow::snapshot

namespace cellflow::chunk {

/// Rounds a chunk must stay fully quiescent before it parks. Hysteresis
/// only — correctness is independent of the value (1 would be correct);
/// it damps park/unpark churn at a slowly advancing flow frontier.
inline constexpr std::uint32_t kParkHysteresis = 8;

class ChunkedSystem {
 public:
  /// Same contract as System's constructor: initial state per Figure 3,
  /// sources canonicalized, engine from parallel_policy_from_env().
  /// Materialized up front: the target's chunk and every source's chunk
  /// (pinned — they can change or be read every round), plus the chunks
  /// of the target's lattice neighbors (their dist changes in round 0;
  /// they park again once the routing wave has passed).
  explicit ChunkedSystem(SystemConfig config,
                         std::unique_ptr<ChoosePolicy> choose = nullptr,
                         std::unique_ptr<SourcePolicy> source = nullptr);

  // --- observation ---------------------------------------------------

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] CellId target() const noexcept { return config_.target; }
  [[nodiscard]] std::span<const CellId> sources() const noexcept {
    return config_.sources;
  }

  /// The cell's state, by value: live cells are copied, parked cells are
  /// reconstructed from the summary, virgin cells are the initial state.
  /// (By value because the cell need not be materialized — taking a
  /// reference would force a fault-in on a pure read.)
  [[nodiscard]] CellState cell(CellId id) const;

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }
  /// Entities currently in the system (live chunks only hold them;
  /// parked/virgin cells are provably empty).
  [[nodiscard]] std::size_t entity_count() const noexcept;

  /// The store, for memory/lifecycle observation (bench, obs gauges).
  [[nodiscard]] const ChunkedCellStore& store() const noexcept {
    return store_;
  }

  // --- transitions ----------------------------------------------------

  /// Same semantics as System::fail/recover; targeting a parked or virgin
  /// chunk faults it in first.
  void fail(CellId id);
  void recover(CellId id);

  const RoundEvents& update();
  [[nodiscard]] const RoundEvents& last_events() const noexcept {
    return events_;
  }

  /// Same contract as System::set_parallel_policy; shards are chunk
  /// ranges here, but results stay bit-identical across modes and thread
  /// counts by the same discipline (ascending shards, barriers, shard-
  /// order merges, canonical transfer order, event canonicalization).
  void set_parallel_policy(const ParallelPolicy& policy);
  [[nodiscard]] const ParallelPolicy& parallel_policy() const noexcept {
    return parallel_;
  }

  /// Same contract as System::set_round_scheduler. kExhaustive visits
  /// every cell, which here means materializing *every* chunk (and
  /// parking none) — the configuration the differential suites use to
  /// pin the exhaustive reference; kActiveSet re-derives the scheduler
  /// state and resumes parking.
  void set_round_scheduler(RoundScheduler scheduler);
  [[nodiscard]] RoundScheduler round_scheduler() const noexcept {
    return scheduler_;
  }

  [[nodiscard]] const System::SchedulerStats& last_scheduler_stats()
      const noexcept {
    return sched_stats_;
  }

  /// Attaches a metrics registry (same contract and counter values as
  /// System::set_metrics — the label stays "shared" so the Prometheus
  /// exposition is byte-identical to the dense shared-variable engine's).
  void set_metrics(obs::MetricsRegistry* registry);

  // --- direct state access (testing / fault injection) -----------------

  EntityId seed_entity(CellId id, Vec2 center);
  EntityId seed_entity_unchecked(CellId id, Vec2 center);
  void corrupt_control_state(CellId id, Dist dist, OptCellId next,
                             OptCellId token, OptCellId signal);

 private:
  friend struct snapshot::Access;

  /// Mirrors System's ShardScratch (DESIGN.md §10): one slot per shard,
  /// merged in ascending shard order at the barriers.
  struct ShardScratch {
    std::vector<CellId> blocked;
    std::vector<CellId> moved;
    std::vector<PendingTransfer> pending;
    std::vector<Entity> crossed;
    std::vector<CellId> changed;
    std::vector<CellId> flips;
    obs::ProtocolCounts counts;
    std::uint64_t visited = 0;

    void begin_phase() noexcept {
      blocked.clear();
      moved.clear();
      pending.clear();
      crossed.clear();
      changed.clear();
      flips.clear();
      counts.reset();
      visited = 0;
    }
  };
  struct RoundScratch {
    std::vector<ShardScratch> shards;
    std::vector<PendingTransfer> transfers;
    std::vector<std::uint32_t> park_scan;  ///< live-chunk ids, park sweep
  };

  [[nodiscard]] static bool occupied(const CellState& c) noexcept {
    return !c.members.empty() || c.token.has_value() || c.signal.has_value() ||
           !c.ne_prev.empty();
  }

  /// Pointer to the cell iff its chunk is live, else nullptr (a non-live
  /// cell reads as unoccupied / non-communicating, which is exactly what
  /// it is).
  [[nodiscard]] const CellState* peek_live(CellId id) const;

  /// The cell, faulting its chunk in if necessary (mutation points).
  [[nodiscard]] CellState& cell_mut(CellId id);

  void run_route_phase();
  void run_signal_phase();
  void run_move_phase();
  void run_inject_phase();

  // Per-cell phase bodies; (lc, rect, slot, id) locate the cell inside
  // its live chunk (the chunk loops carry `id` incrementally so the
  // bodies never divide). Same out-param discipline as System's bodies.
  void route_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                  std::size_t slot, CellId id, obs::ProtocolCounts* counts,
                  std::vector<CellId>* changed_out);
  void signal_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                   std::size_t slot, CellId id,
                   std::vector<CellId>& blocked_out,
                   obs::ProtocolCounts* counts,
                   std::vector<CellId>* flip_out);
  void move_cell(LiveChunk& lc, const ChunkLayout::Rect& rect,
                 std::size_t slot, CellId id, std::vector<CellId>& moved_out,
                 std::vector<PendingTransfer>& pending_out,
                 std::vector<Entity>& crossed_scratch,
                 obs::ProtocolCounts* counts);

  /// The exhaustive route loop's Σ-degree tally for a skipped virgin
  /// chunk, in O(1) from the rect geometry. (The target chunk is pinned
  /// live at construction, so a virgin chunk never contains the target.)
  [[nodiscard]] std::uint64_t virgin_route_comp(std::size_t q) const;

  /// Arms cell `id` (faulting its chunk in) to run Route in round `upto`.
  void arm_cell(CellId id, std::uint64_t upto);
  /// Arms `id` and its lattice neighbors (external-mutation re-arm).
  void arm_route_neighborhood(CellId id, std::uint64_t upto);
  /// Toggles the cell's occupancy bit and propagates ±1 refs over the
  /// closed neighborhood, faulting neighbor chunks in on +1 (on −1 they
  /// are provably live already — they carried this cell's reference).
  void apply_occupancy_flip(CellId id);
  void refresh_occupancy(CellId id);
  void note_control_mutation(CellId id);

  /// Re-derives stamps/occupancy/snapshots for every live chunk from the
  /// current protocol state (scheduler switch, snapshot restore). Only
  /// live chunks are armed: parked/virgin regions are quiescence
  /// fixpoints, for which arming is observationally a no-op.
  void rebuild_active_sets();

  /// End-of-round park scan (kActiveSet only): parks every unpinned live
  /// chunk whose quiescence predicates have held for kParkHysteresis
  /// rounds — see the file comment.
  void park_sweep();

  [[nodiscard]] bool injection_is_safe(CellId id, Vec2 center) const;

  /// The pool a phase should use, honoring ParallelPolicy's kAuto serial
  /// cutover: nullptr when the phase's approximate cell workload would
  /// hand each shard less than cutover_grain cells (the dispatch and
  /// barrier would then dominate). Bit-identity is unaffected — both
  /// engines produce identical results (DESIGN.md §6), the cutover only
  /// picks which one runs.
  [[nodiscard]] ThreadPool* phase_pool(std::size_t approx_cells) const;

  SystemConfig config_;
  Grid grid_;
  ChunkLayout layout_;
  ChunkedCellStore store_;
  std::unique_ptr<ChoosePolicy> choose_;
  std::unique_ptr<SourcePolicy> source_;

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  RoundEvents events_;

  ParallelPolicy parallel_;
  std::unique_ptr<ThreadPool> pool_;
  RoundScratch scratch_;

  std::unique_ptr<obs::ProtocolMetrics> metrics_;
  obs::ProtocolCounts round_counts_;

  RoundScheduler scheduler_ = RoundScheduler::kActiveSet;
  System::SchedulerStats sched_stats_;

  /// Chunks that never park: the target's chunk (its dist is pinned by
  /// Route every round) and every source's chunk (injection reads them
  /// every round).
  std::vector<std::uint8_t> pinned_;
};

}  // namespace cellflow::chunk
