// Chunk geometry for the sparse cell store (DESIGN.md §12): the N×N grid
// is covered by fixed-size kChunkSide×kChunkSide tiles, row-major in
// chunk coordinates exactly as cells are row-major in cell coordinates.
// Edge chunks are clipped to the grid (a 100-cell side yields 4×4 chunks,
// the last row/column 4 cells wide), so every cell belongs to exactly one
// chunk and slots within a chunk are dense.
//
// All index arithmetic is done in std::size_t after a single widening of
// the int cell coordinates — at side 4096 a dense cell index reaches
// 16'777'215, far inside size_t but already past what an int product of
// the form j*side may assume on 16-bit int platforms; we never form such
// products in int.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grid/grid.hpp"
#include "util/check.hpp"
#include "util/ids.hpp"

namespace cellflow::chunk {

/// Tile side in cells. 32×32 = 1024 cells per chunk: big enough that the
/// per-chunk bookkeeping amortizes, small enough that the working set of
/// a flow corridor is a thin band of tiles.
inline constexpr int kChunkSide = 32;

/// Geometry of the chunk cover of an N×N grid. Immutable; everything is
/// O(1) arithmetic.
class ChunkLayout {
 public:
  explicit ChunkLayout(int side)
      : side_(side),
        chunks_x_((side + kChunkSide - 1) / kChunkSide) {
    CF_EXPECTS_MSG(side >= 1, "chunk layout needs a positive side");
  }

  [[nodiscard]] int side() const noexcept { return side_; }

  /// Chunks along one axis (= ceil(side / kChunkSide)).
  [[nodiscard]] int chunks_x() const noexcept { return chunks_x_; }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return static_cast<std::size_t>(chunks_x_) *
           static_cast<std::size_t>(chunks_x_);
  }

  /// Chunk index of the chunk containing cell `id` (row-major over chunk
  /// coordinates, mirroring Grid::index_of). Precondition: on the grid.
  [[nodiscard]] std::size_t chunk_of(CellId id) const {
    CF_EXPECTS(id.i >= 0 && id.i < side_ && id.j >= 0 && id.j < side_);
    const auto ci = static_cast<std::size_t>(id.i / kChunkSide);
    const auto cj = static_cast<std::size_t>(id.j / kChunkSide);
    return cj * static_cast<std::size_t>(chunks_x_) + ci;
  }

  /// The rectangle of cells a chunk covers (clipped at the grid edge).
  struct Rect {
    int i0 = 0;  ///< west-most cell column
    int j0 = 0;  ///< south-most cell row
    int w = 0;   ///< columns covered (1..kChunkSide)
    int h = 0;   ///< rows covered (1..kChunkSide)
  };

  [[nodiscard]] Rect rect_of(std::size_t q) const {
    CF_EXPECTS(q < chunk_count());
    const auto cx = static_cast<std::size_t>(chunks_x_);
    const int ci = static_cast<int>(q % cx);
    const int cj = static_cast<int>(q / cx);
    Rect r;
    r.i0 = ci * kChunkSide;
    r.j0 = cj * kChunkSide;
    r.w = side_ - r.i0 < kChunkSide ? side_ - r.i0 : kChunkSide;
    r.h = side_ - r.j0 < kChunkSide ? side_ - r.j0 : kChunkSide;
    return r;
  }

  /// Cells covered by chunk `q` (= rect w×h).
  [[nodiscard]] std::size_t cells_in(std::size_t q) const {
    const Rect r = rect_of(q);
    return static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h);
  }

  /// Dense slot of a cell within its chunk: row-major over the chunk's
  /// rect, same orientation as the grid (j outer, i inner).
  [[nodiscard]] std::size_t slot_of(CellId id) const {
    const Rect r = rect_of(chunk_of(id));
    return static_cast<std::size_t>(id.j - r.j0) *
               static_cast<std::size_t>(r.w) +
           static_cast<std::size_t>(id.i - r.i0);
  }

  /// Inverse of (chunk_of, slot_of).
  [[nodiscard]] CellId cell_at(std::size_t q, std::size_t slot) const {
    const Rect r = rect_of(q);
    CF_EXPECTS(slot <
               static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h));
    return CellId{
        r.i0 + static_cast<std::int32_t>(slot % static_cast<std::size_t>(r.w)),
        r.j0 + static_cast<std::int32_t>(slot / static_cast<std::size_t>(r.w))};
  }

  /// Lattice degree of a cell: 4 minus one per grid boundary it touches.
  /// (A 1×1 grid has degree 0.) Used for the skipped-chunk relaxation
  /// tally — see ChunkedSystem's Route phase.
  [[nodiscard]] int degree_of(CellId id) const noexcept {
    int d = 4;
    if (id.i == 0) --d;
    if (id.i == side_ - 1) --d;
    if (id.j == 0) --d;
    if (id.j == side_ - 1) --d;
    return d;
  }

 private:
  int side_;
  int chunks_x_;
};

}  // namespace cellflow::chunk
