// Protocol parameters (paper §II-B).
//
// The specification uses three parameters:
//   l  — side length of an entity's square footprint,
//   rs — minimum required inter-entity gap along each axis,
//   v  — cell velocity: distance an entity moves in one round.
// Well-formedness (required by the paper): v < l < 1 and rs + l < 1
// (we accept v = l, which Figure 7's own v = l = 0.25 configuration uses;
// see Params::feasible for why that is sound).
//   * v < l ensures an entity cannot jump across the d-wide safety strip
//     in one round (used in Lemma 4),
//   * rs + l < 1 ensures entities fit inside a unit cell with the gap.
// The derived center-spacing requirement is d = rs + l.
#pragma once

#include <iosfwd>
#include <string>

namespace cellflow {

class Params {
 public:
  /// Validates and constructs. Throws ContractViolation when the paper's
  /// constraints (0 < v < l < 1, 0 < rs, rs + l < 1) are violated.
  Params(double entity_length, double safety_gap, double velocity);

  /// l: entity side length.
  [[nodiscard]] double entity_length() const noexcept { return l_; }
  /// rs: required inter-entity edge gap per axis.
  [[nodiscard]] double safety_gap() const noexcept { return rs_; }
  /// v: per-round displacement of a moving cell's entities.
  [[nodiscard]] double velocity() const noexcept { return v_; }
  /// d = rs + l: required center spacing per axis.
  [[nodiscard]] double center_spacing() const noexcept { return rs_ + l_; }

  /// True iff (l, rs, v) satisfy the paper's constraints; used by sweeps
  /// to skip infeasible parameter combinations without throwing.
  [[nodiscard]] static bool feasible(double entity_length, double safety_gap,
                                     double velocity) noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Params&, const Params&) noexcept = default;

 private:
  double l_;
  double rs_;
  double v_;
};

std::ostream& operator<<(std::ostream& os, const Params& p);

}  // namespace cellflow
