#include "core/move.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace cellflow {

bool crosses_boundary(CellId self, CellId toward, const Entity& p,
                      const Params& params) {
  const double half = params.entity_length() / 2.0;
  const auto i = static_cast<double>(self.i);
  const auto j = static_cast<double>(self.j);
  if (toward.i == self.i + 1 && toward.j == self.j)
    return p.center.x + half > i + 1.0;
  if (toward.i == self.i - 1 && toward.j == self.j)
    return p.center.x - half < i;
  if (toward.i == self.i && toward.j == self.j + 1)
    return p.center.y + half > j + 1.0;
  if (toward.i == self.i && toward.j == self.j - 1)
    return p.center.y - half < j;
  CF_CHECK_MSG(false, "crosses_boundary: cells are not lattice neighbors");
  return false;
}

Entity place_at_entry(CellId from, CellId dest, Entity p,
                      const Params& params) {
  const double half = params.entity_length() / 2.0;
  const auto m = static_cast<double>(dest.i);
  const auto n = static_cast<double>(dest.j);
  if (dest.i == from.i + 1 && dest.j == from.j) {  // entering from the west
    p.center.x = m + half;
  } else if (dest.i == from.i - 1 && dest.j == from.j) {  // from the east
    p.center.x = m + 1.0 - half;
  } else if (dest.i == from.i && dest.j == from.j + 1) {  // from the south
    p.center.y = n + half;
  } else if (dest.i == from.i && dest.j == from.j - 1) {  // from the north
    p.center.y = n + 1.0 - half;
  } else {
    CF_CHECK_MSG(false, "place_at_entry: cells are not lattice neighbors");
  }
  return p;
}

void compact_move_step_inplace(CellId self, CellId toward,
                               std::vector<Entity>& members,
                               std::vector<Entity>& crossed_out,
                               const Params& params,
                               const CompactionContext& ctx) {
  const int di = toward.i - self.i;
  const int dj = toward.j - self.j;
  CF_EXPECTS_MSG((di == 0 || dj == 0) && di * di + dj * dj == 1,
                 "compact_move_step: cells are not lattice neighbors");
  const bool horizontal = (dj == 0);
  const double sign = horizontal ? static_cast<double>(di)
                                 : static_cast<double>(dj);
  const double half = params.entity_length() / 2.0;
  const double d = params.center_spacing();
  const double v = params.velocity();

  // Work in the "u" coordinate: u = sign · (motion-axis position), so
  // moving forward always means increasing u.
  const auto u_of = [&](const Entity& p) {
    return sign * (horizontal ? p.center.x : p.center.y);
  };
  const auto perp_of = [&](const Entity& p) {
    return horizontal ? p.center.y : p.center.x;
  };
  const auto set_u = [&](Entity& p, double u) {
    if (horizontal) {
      p.center.x = sign * u;
    } else {
      p.center.y = sign * u;
    }
  };

  // The boundary toward `toward`, in u: sign>0 crosses at (base+1), sign<0
  // at base — both map to u_boundary with crossing when u + l/2 > u_b.
  const double base =
      horizontal ? static_cast<double>(self.i) : static_cast<double>(self.j);
  const double u_boundary = sign > 0 ? base + 1.0 : -base;

  // Constraint (3): the promised strip, when along the motion direction.
  // Strip toward +motion: centers must satisfy u + l/2 ≤ u_boundary − d.
  double u_strip_cap = std::numeric_limits<double>::infinity();
  if (ctx.promised_strip.has_value()) {
    const auto [si, sj] = step_of(*ctx.promised_strip);
    const bool same_direction = (si == di && sj == dj);
    if (same_direction) u_strip_cap = u_boundary - d - half;
  }

  // Front-to-back processing order.
  std::sort(members.begin(), members.end(),
            [&](const Entity& a, const Entity& b) { return u_of(a) > u_of(b); });

  // Stable two-pointer partition: members[0, w) are the already-placed
  // entities still in the cell (exactly the `placed` prefix the lane
  // constraint reads); w <= r throughout, so members[w] = p never
  // clobbers an unread element.
  std::size_t w = 0;
  for (std::size_t r = 0; r < members.size(); ++r) {
    Entity p = members[r];
    const double u = u_of(p);
    double cap = u + v;                       // at most v per round
    cap = std::min(cap, u_strip_cap);         // promised strip stays clear
    if (!ctx.may_cross) cap = std::min(cap, u_boundary - half);  // flush max
    for (std::size_t q = 0; q < w; ++q) {
      if (std::abs(perp_of(members[q]) - perp_of(p)) < d)
        cap = std::min(cap, u_of(members[q]) - d);  // hold d behind the lane
    }
    const double nu = std::max(u, cap);        // never move backward
    set_u(p, nu);
    if (ctx.may_cross && nu + half > u_boundary) {
      crossed_out.push_back(place_at_entry(self, toward, p, params));
    } else {
      members[w++] = p;
    }
  }
  members.resize(w);
}

MoveResult compact_move_step(CellId self, CellId toward,
                             std::vector<Entity> members, const Params& params,
                             const CompactionContext& ctx) {
  MoveResult out;
  compact_move_step_inplace(self, toward, members, out.crossed, params, ctx);
  out.staying = std::move(members);
  return out;
}

void move_step_inplace(CellId self, CellId toward,
                       std::vector<Entity>& members,
                       std::vector<Entity>& crossed_out,
                       const Params& params) {
  const int di = toward.i - self.i;
  const int dj = toward.j - self.j;
  CF_EXPECTS_MSG((di == 0 || dj == 0) && di * di + dj * dj == 1,
                 "move_step: cells are not lattice neighbors");
  const Vec2 delta{params.velocity() * static_cast<double>(di),
                   params.velocity() * static_cast<double>(dj)};

  // Stable two-pointer partition (w <= r throughout): stayers compact to
  // the front in their original relative order, crossers append to
  // `crossed_out` in that same order.
  std::size_t w = 0;
  for (std::size_t r = 0; r < members.size(); ++r) {
    Entity p = members[r];
    p.center += delta;  // Figure 6 lines 4–5
    if (crosses_boundary(self, toward, p, params)) {
      crossed_out.push_back(place_at_entry(self, toward, p, params));
    } else {
      members[w++] = p;
    }
  }
  members.resize(w);
}

MoveResult move_step(CellId self, CellId toward, std::vector<Entity> members,
                     const Params& params) {
  MoveResult out;
  move_step_inplace(self, toward, members, out.crossed, params);
  out.staying = std::move(members);
  return out;
}

}  // namespace cellflow
