#include "core/route.hpp"

#include "util/check.hpp"

namespace cellflow {

RouteResult route_step(std::span<const NeighborDist> neighbor_dists) {
  CF_EXPECTS_MSG(!neighbor_dists.empty(),
                 "a grid cell always has at least two neighbors");
  // argmin over (dist, id), lexicographic — the paper's tie-break.
  const NeighborDist* best = &neighbor_dists.front();
  for (const NeighborDist& nd : neighbor_dists.subspan(1)) {
    if (nd.dist < best->dist ||
        (nd.dist == best->dist && nd.id < best->id)) {
      best = &nd;
    }
  }
  RouteResult r;
  r.dist = best->dist.plus_one();
  if (r.dist.is_infinite()) {
    r.next = std::nullopt;
  } else {
    r.next = best->id;
  }
  return r;
}

}  // namespace cellflow
