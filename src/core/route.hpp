// The Route function (paper Figure 4) as a pure per-cell step.
//
//   if ¬failed_{i,j} ∧ ⟨i,j⟩ ≠ tid then
//     dist_{i,j} := ( min over ⟨m,n⟩ ∈ Nbrs_{i,j} of dist_{m,n} ) + 1
//     if dist_{i,j} = ∞ then next_{i,j} := ⊥
//     else next_{i,j} := argmin over ⟨m,n⟩ ∈ Nbrs_{i,j} of (dist_{m,n}, ⟨m,n⟩)
//
// This is a synchronous distance-vector (Bellman–Ford) update: each round
// every non-faulty cell recomputes from its neighbors' *previous-round*
// estimates, ties broken by neighbor id. Failed neighbors report ∞
// (fail sets dist := ∞ — "neighbors do not receive a timely response").
// It is self-stabilizing: dist/next are recomputed from scratch every
// round, so arbitrary corruption is washed out (Lemma 6 / Corollary 7).
#pragma once

#include <span>
#include <utility>

#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// One neighbor's identifier together with its previous-round dist value
/// as read over the (modeled) shared variable.
struct NeighborDist {
  CellId id;
  Dist dist;
};

struct RouteResult {
  Dist dist;
  OptCellId next;
};

/// Computes the new (dist, next) for a non-faulty, non-target cell.
/// `neighbor_dists` holds every in-grid neighbor (any order). The caller
/// (System) is responsible for skipping failed cells and the target —
/// their dist/next are pinned by fail() and initialization respectively.
[[nodiscard]] RouteResult route_step(
    std::span<const NeighborDist> neighbor_dists);

}  // namespace cellflow
