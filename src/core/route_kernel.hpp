// Bulk Route gather: the packed-key argmin behind run_route_phase's
// fast path (DESIGN.md §6). route_step (core/route.hpp) stays the
// reference semantics — Figure 4's `min over neighbors of (dist, id),
// plus one` — and every other realization still calls it; this kernel
// reproduces it exactly for the dense 4-neighbor grid so the hot loop
// can process whole interior rows branch-free (and, on x86-64 with
// AVX2, four cells per instruction).
//
// Encoding: a neighbor at *id rank* r (0 = W, 1 = S, 2 = N, 3 = E — the
// CellId ordering of the four lattice positions, which is what makes
// key-min reproduce route_step's (dist, id) tie-break) with raw
// distance d packs to (d << 2) | r. ∞ (raw UINT64_MAX), a missing
// neighbor, and any suspiciously huge finite raw (>= kRouteHugeDist,
// reachable only through corrupt_control_state-style adversarial
// writes — System falls back to route_step when it ever observes one)
// all pack to kRouteKeyNone, so the minimum key over the four
// neighbors is either kRouteKeyNone ("dist stays ∞, next := ⊥") or
// decodes as dist := (key >> 2) + 1, next := neighbor at rank
// (key & 3). All valid keys are < 2^62 and kRouteKeyNone is INT64_MAX,
// so the min is computable with *signed* 64-bit compares — the only
// kind AVX2 has.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cellflow {

/// Key of "no usable neighbor": greater than every finite key, and the
/// largest value the signed-compare min can represent.
inline constexpr std::uint64_t kRouteKeyNone = 0x7fffffffffffffffull;

/// Finite raws at or above this pack to kRouteKeyNone; System pins the
/// legacy route_step path once it has seen one (see huge_dist_seen_).
inline constexpr std::uint64_t kRouteHugeDist = 1ull << 60;

/// Packs one neighbor observation. rank must be < 4.
[[nodiscard]] inline constexpr std::uint64_t route_pack_key(
    std::uint64_t raw, std::uint64_t rank) noexcept {
  return raw >= kRouteHugeDist ? kRouteKeyNone : ((raw << 2) | rank);
}

/// For each of the `n` consecutive *interior* cells k0 .. k0+n-1 (all
/// four lattice neighbors exist, at dense offsets W = -1, S = -side,
/// N = +side, E = +1 per grid/grid.hpp's index_of = j*side + i),
/// writes keys_out[i] = min over the four neighbors of
/// route_pack_key(dist_raw[neighbor], rank). Runtime-dispatches to the
/// AVX2 body when the CPU has it; bit-identical to the scalar body
/// either way.
void route_min_keys_interior(const std::uint64_t* dist_raw, std::size_t k0,
                             std::size_t n, std::size_t side,
                             std::uint64_t* keys_out);

/// True when route_min_keys_interior resolved to the AVX2 body on this
/// machine (observational — benches report it).
[[nodiscard]] bool route_kernel_uses_avx2() noexcept;

namespace detail {
/// Portable reference body; the AVX2 translation unit falls back to it
/// for tails and on non-AVX2 builds.
void route_min_keys_interior_scalar(const std::uint64_t* dist_raw,
                                    std::size_t k0, std::size_t n,
                                    std::size_t side,
                                    std::uint64_t* keys_out);
/// AVX2 body; defined in route_kernel_avx2.cpp (compiled with -mavx2
/// on x86-64), forwards to the scalar body elsewhere. Only called when
/// the running CPU reports AVX2.
void route_min_keys_interior_avx2(const std::uint64_t* dist_raw,
                                  std::size_t k0, std::size_t n,
                                  std::size_t side, std::uint64_t* keys_out);
}  // namespace detail

}  // namespace cellflow
