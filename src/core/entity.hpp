// Entities: the moving objects of the model (cars, packages, robots…).
// Each occupies an l×l square centered at `center` (paper §II-B) and
// carries an identifier unique for the lifetime of a System.
#pragma once

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"
#include "util/ids.hpp"

namespace cellflow {

struct Entity {
  EntityId id;
  Vec2 center;

  /// The l×l square footprint.
  [[nodiscard]] Rect footprint(double entity_length) const {
    return Rect::square(center, entity_length);
  }

  friend bool operator==(const Entity&, const Entity&) noexcept = default;
};

}  // namespace cellflow
