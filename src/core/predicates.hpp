// Safety and invariant predicates from the paper's analysis (§III-A),
// implemented as *independent oracles* over System states. The test suite
// evaluates these on every round of randomized executions; they are not
// used by the protocol itself (the protocol must be safe on its own).
//
//   Safe_{i,j}(x): ∀ p ≠ q ∈ Members_{i,j}. |px−qx| ≥ d ∨ |py−qy| ≥ d
//   Safe(x):       ∀ ⟨i,j⟩. Safe_{i,j}(x)                     (Theorem 5)
//   Invariant 1:   members lie within their cell: i+l/2 ≤ px ≤ i+1−l/2 (and y)
//   Invariant 2:   Members sets are pairwise disjoint
//   H(x):          a granted signal implies the entry strip is clear
//
// All real-valued comparisons accept a tolerance `eps` (default 1e-9) so
// that accumulated floating-point error in long executions cannot raise
// false alarms; the protocol's safety margins are ~1e-1, twelve orders of
// magnitude above the tolerance.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace cellflow {

inline constexpr double kPredicateEps = 1e-9;

/// A falsified predicate, with enough context to debug the failure.
struct Violation {
  std::string predicate;
  CellId cell;
  std::string detail;
};

/// Safe_{i,j}: pairwise center spacing ≥ d along some axis.
[[nodiscard]] bool safe_cell(const System& sys, CellId id,
                             double eps = kPredicateEps);

/// Theorem 5's Safe(x). Returns the first violation found, or nullopt.
[[nodiscard]] std::optional<Violation> check_safe(
    const System& sys, double eps = kPredicateEps);

/// Invariant 1: every member's center lies in [i+l/2, i+1−l/2]×[j+l/2, j+1−l/2].
[[nodiscard]] std::optional<Violation> check_members_in_bounds(
    const System& sys, double eps = kPredicateEps);

/// Invariant 2: no entity id appears in two cells.
[[nodiscard]] std::optional<Violation> check_members_disjoint(
    const System& sys);

/// Predicate H(x): for every cell with signal = ⟨m,n⟩, the entry strip
/// toward ⟨m,n⟩ is clear. Holds at the post-Signal point of every round
/// (Lemma 3); System::update() evaluates-and-records it there, and this
/// oracle re-checks the recorded state (see System::h_held_last_round()).
[[nodiscard]] std::optional<Violation> check_h_predicate(
    const System& sys, double eps = kPredicateEps);

/// Stronger geometric oracle, used as a cross-check of Safe: within each
/// cell, no two entities' *physical* l×l footprints may overlap, and their
/// rectangles must in fact be rs-separated along some axis.
[[nodiscard]] std::optional<Violation> check_footprints_separated(
    const System& sys, double eps = kPredicateEps);

/// Runs every oracle above; returns all violations (empty = all good).
[[nodiscard]] std::vector<Violation> check_all(const System& sys,
                                               double eps = kPredicateEps);

[[nodiscard]] std::string to_string(const Violation& v);

}  // namespace cellflow
