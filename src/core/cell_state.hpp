// Per-cell protocol state — the variables of Cell_{i,j} (paper Figure 3):
//
//   Members  : Set[P]   := {}      entities located in the cell
//   NEPrev   : Set[ID⊥] := {}      nonempty neighbors whose next points here
//   next, signal, token : ID⊥ := ⊥
//   dist     : N∞       := ∞       (target: 0)
//   failed   : B        := false
//
// Members/dist/next/signal are the *shared* variables a neighbor may read
// (Figure 2); token/NEPrev/failed are private. The System automaton owns a
// CellState per cell; the read/write discipline of the three update phases
// lives in route.hpp / signal.hpp / move.hpp / system.hpp.
#pragma once

#include <vector>

#include "core/entity.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"
#include "util/small_vec.hpp"

namespace cellflow {

/// NEPrev and its derivatives (Signal's rotation candidates, grant lists):
/// at most the lattice degree many ids — 4 on the square grid, 6 on the
/// hex/3d extensions — so inline capacity 8 never spills to the heap
/// (DESIGN.md §10). Sorted ascending wherever the protocol stores it.
using NeighborSet = SmallVec<CellId, 8>;

struct CellState {
  /// Members_{i,j}. Order is insertion order; identity is Entity::id.
  std::vector<Entity> members;

  /// dist_{i,j}: estimated hop distance to the target. Initially ∞
  /// (Dist's default); the target cell is initialized to 0.
  Dist dist = Dist::infinity();

  /// next_{i,j}: the neighbor this cell tries to move its entities toward.
  OptCellId next;

  /// token_{i,j}: the nonempty predecessor currently being served (mutual
  /// exclusion / fairness token of the Signal function).
  OptCellId token;

  /// signal_{i,j}: the neighbor (if any) granted permission to move its
  /// entities toward this cell this round; ⊥ blocks all predecessors.
  OptCellId signal;

  /// NEPrev_{i,j}: nonempty neighbors with next = this cell, as computed
  /// by the most recent Signal phase (kept for observability/tests).
  NeighborSet ne_prev;

  /// failed_{i,j}: crash flag. A failed cell does nothing — it never moves
  /// its entities and neighbors read dist = ∞ / signal = ⊥ from it.
  bool failed = false;

  [[nodiscard]] bool has_entities() const noexcept { return !members.empty(); }

  /// Finds a member by id; nullptr if absent.
  [[nodiscard]] const Entity* find(EntityId id) const noexcept {
    for (const Entity& e : members)
      if (e.id == id) return &e;
    return nullptr;
  }
};

}  // namespace cellflow
