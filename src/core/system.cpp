#include "core/system.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/route_kernel.hpp"
#include "core/signal.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cellflow {

namespace {

// Reporting-only clock difference in whole ns, clamped at zero.
std::uint64_t span_ns(obs::PhaseProfiler::Clock::time_point a,
                      obs::PhaseProfiler::Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

ParallelPolicy parallel_policy_from_env() {
  const char* raw = std::getenv("CELLFLOW_THREADS");
  if (raw == nullptr || *raw == '\0') return ParallelPolicy::serial();
  char* end = nullptr;
  const long n = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0 || n > 1024)
    throw std::runtime_error(
        std::string("CELLFLOW_THREADS: expected an integer in [0, 1024], "
                    "got '") +
        raw + "'");
  // The ambient knob asks for throughput, so it gets the kAuto serial
  // cutover; callers that need the engine pinned (differential suites)
  // use set_parallel_policy explicitly.
  return n == 0 ? ParallelPolicy::serial()
                : ParallelPolicy::parallel_auto(static_cast<int>(n));
}

void canonical_transfer_order(const Grid& grid,
                              std::vector<PendingTransfer>& transfers) {
  const auto by_origin = [&grid](const PendingTransfer& a,
                                 const PendingTransfer& b) {
    return grid.index_of(a.from) < grid.index_of(b.from);
  };
  // The engines produce this order by construction (ascending shards,
  // in-order within each), so the common case is a linear verification
  // pass; a stable sort of an already-sorted sequence is the identity,
  // so skipping it cannot change the result — it only skips the sort's
  // temporary-buffer allocation on the hot path.
  if (std::is_sorted(transfers.begin(), transfers.end(), by_origin)) return;
  std::stable_sort(transfers.begin(), transfers.end(), by_origin);
}

System::System(SystemConfig config, std::unique_ptr<ChoosePolicy> choose,
               std::unique_ptr<SourcePolicy> source)
    : config_(std::move(config)),
      grid_(config_.side),
      cells_(grid_.cell_count()),
      choose_(choose ? std::move(choose)
                     : std::make_unique<RoundRobinChoose>()),
      source_(source ? std::move(source)
                     : std::make_unique<EntryEdgeSource>()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  // Canonical injection order: sources visit in cell-id order no matter
  // how the configuration listed them (mirrored by MessageSystem).
  std::sort(config_.sources.begin(), config_.sources.end());
  config_.sources.erase(
      std::unique(config_.sources.begin(), config_.sources.end()),
      config_.sources.end());
  // Initial state (Figure 3): everything ⊥/∞/empty except the target's
  // distance, which anchors the routing computation at 0.
  cells_[grid_.index_of(config_.target)].dist = Dist::zero();
  target_k_ = grid_.index_of(config_.target);
  dist_snapshot_.resize(cells_.size());
  // Flatten the (immutable) grid topology into the dense tables the
  // phase loops index directly — see the member comments in system.hpp.
  nbr_idx_.resize(cells_.size());
  cell_id_.resize(cells_.size());
  feed_.assign(cells_.size(), kNoNbr);
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    const CellId id = grid_.id_of(k);
    cell_id_[k] = id;
    for (std::size_t d = 0; d < kAllDirections.size(); ++d) {
      const auto nb = grid_.neighbor(id, kAllDirections[d]);
      nbr_idx_[k][d] =
          nb ? static_cast<std::uint32_t>(grid_.index_of(*nb)) : kNoNbr;
    }
  }
  rebuild_active_sets();
  set_parallel_policy(parallel_policy_from_env());
}

void System::set_round_scheduler(RoundScheduler scheduler) {
  if (scheduler_ == scheduler) return;
  scheduler_ = scheduler;
  // Exhaustive rounds maintain none of the scheduler state, so entering
  // kActiveSet must re-derive all of it from the current protocol state.
  if (scheduler_ == RoundScheduler::kActiveSet) rebuild_active_sets();
}

void System::rebuild_active_sets() {
  route_stamp_.assign(cells_.size(), round_);
  occ_b_.assign(cells_.size(), 0);
  occ_refs_.assign(cells_.size(), 0);
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    const std::uint64_t raw = cells_[k].dist.raw();
    dist_snapshot_[k] = raw;
    if (raw >= kRouteHugeDist / 2 && cells_[k].dist.is_finite())
      huge_dist_seen_ = true;  // snapshot restore can carry corrupted raws
    if (occupied(cells_[k])) apply_occupancy_flip(k);
  }
}

void System::arm_route_neighborhood(std::size_t k, std::uint64_t upto) {
  route_stamp_[k] = std::max(route_stamp_[k], upto);
  for (const std::uint32_t nk : nbr_idx_[k]) {
    if (nk == kNoNbr) continue;
    std::uint64_t& stamp = route_stamp_[nk];
    stamp = std::max(stamp, upto);
  }
}

void System::apply_occupancy_flip(std::size_t k) {
  occ_b_[k] ^= 1u;
  const int delta = occ_b_[k] != 0 ? 1 : -1;
  occ_refs_[k] = static_cast<std::uint8_t>(occ_refs_[k] + delta);
  for (const std::uint32_t nk : nbr_idx_[k]) {
    if (nk == kNoNbr) continue;
    occ_refs_[nk] = static_cast<std::uint8_t>(occ_refs_[nk] + delta);
  }
}

void System::refresh_occupancy(std::size_t k) {
  if (occupied(cells_[k]) != (occ_b_[k] != 0)) apply_occupancy_flip(k);
}

void System::note_control_mutation(std::size_t k) {
  // The exhaustive engine re-reads every dist each round and rewrites
  // every cell's control state; an external mutation therefore forces
  // the active scheduler to (a) keep the snapshot invariant, (b) rerun
  // Route over the affected neighborhood next round, and (c) refresh
  // the occupancy of the mutated cell.
  const std::uint64_t raw = cells_[k].dist.raw();
  dist_snapshot_[k] = raw;
  if (raw >= kRouteHugeDist / 2 && cells_[k].dist.is_finite())
    huge_dist_seen_ = true;  // pins Route to the route_step reference path
  arm_route_neighborhood(k, round_);
  refresh_occupancy(k);
}

void System::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry != nullptr
                 ? std::make_unique<obs::ProtocolMetrics>(*registry, "shared")
                 : nullptr;
  round_counts_.reset();
}

void System::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  sync_pool_timing();
}

void System::set_telemetry(obs::EngineTelemetry* telemetry) {
  telemetry_ = telemetry;
  sync_pool_timing();
}

void System::sync_pool_timing() {
  if (!pool_) return;
  const bool want = profiler_ != nullptr || telemetry_ != nullptr;
  if (want == pool_->timing_enabled()) return;
  pool_->set_timing(want);
  pool_->reset_timings();
  if (want)
    batch_samples_.reserve(static_cast<std::size_t>(pool_->thread_count()));
}

void System::note_phase_timing(int phase_idx, ThreadPool* pool,
                               std::size_t used) {
  // `pooled`: the partition actually ran on workers (parallel_for_shards
  // falls back to the caller for single-shard partitions).
  const bool pooled = pool != nullptr && used > 1;
  if (telemetry_ != nullptr) {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (std::size_t s = 0; s < used; ++s) {
      const std::uint64_t v = scratch_.shards[s].span_ns;
      sum += v;
      if (v > max) max = v;
    }
    round_timing_.imbalance[static_cast<std::size_t>(phase_idx)] =
        (used > 1 && sum > 0) ? static_cast<double>(max) *
                                    static_cast<double>(used) /
                                    static_cast<double>(sum)
                              : 1.0;
    // A phase that ran on the calling thread needs no attribution here:
    // update()'s timed() wrapper counts its whole wall span as serial
    // work (merges and glue included).
  }
  if (pooled && (telemetry_ != nullptr || profiler_ != nullptr)) {
    pool->last_batch_samples(batch_samples_);
    const auto dispatched = pool->last_batch_dispatch();
    const auto done = pool->last_batch_done();
    if (telemetry_ != nullptr && !batch_samples_.empty()) {
      // Wall-equivalent decomposition of the batch that just ran: each
      // participating worker's dispatch+busy+barrier chain spans
      // dispatched->done exactly, so the participant-normalized sums
      // partition the batch wall (see RoundTiming). busy (wake to own
      // last task end) rather than task time, so queue-claim waits and
      // OS preemption gaps inside the batch stay accounted.
      std::uint64_t disp = 0;
      std::uint64_t busy = 0;
      std::uint64_t barrier = 0;
      std::uint64_t task = 0;
      for (const ThreadPool::BatchWorkerSample& w : batch_samples_) {
        disp += span_ns(dispatched, w.wake);
        busy += span_ns(w.wake, w.last_task_end);
        barrier += span_ns(w.last_task_end, done);
        task += w.work_ns;
      }
      const auto n = static_cast<std::uint64_t>(batch_samples_.size());
      round_timing_.pool_dispatch_ns += disp / n;
      round_timing_.pool_busy_ns += busy / n;
      round_timing_.pool_barrier_ns += barrier / n;
      round_timing_.pool_task_ns += task;
      // Caller-resume latency: the last worker stamped `done`, but this
      // thread only continues once the OS reschedules it — on a
      // contended machine that gap is real round time, billed as
      // dispatch (both are scheduling, not protocol work).
      round_timing_.pool_resume_ns +=
          span_ns(done, obs::PhaseProfiler::Clock::now());
    }
    if (profiler_ != nullptr) {
      // Per-worker spans of the batch that just ran: dispatch latency,
      // the task-executing envelope, and the barrier stall — these
      // render as per-worker tracks in the Chrome-trace export, so
      // Perfetto shows exactly which worker idled at which barrier.
      for (const ThreadPool::BatchWorkerSample& w : batch_samples_) {
        profiler_->record_worker("dispatch", round_, w.worker, dispatched,
                                 w.wake);
        profiler_->record_worker("work", round_, w.worker, w.first_task_start,
                                 w.last_task_end);
        profiler_->record_worker("barrier_wait", round_, w.worker,
                                 w.last_task_end, done);
      }
    }
  }
}

void System::set_parallel_policy(const ParallelPolicy& policy) {
  CF_EXPECTS_MSG(policy.num_threads >= 1 && policy.num_threads <= 1024,
                 "ParallelPolicy::num_threads out of [1, 1024]");
  parallel_ = policy;
  if (policy.mode == ParallelPolicy::Mode::kParallel) {
    if (!pool_ || pool_->thread_count() != policy.num_threads) {
      pool_ = std::make_unique<ThreadPool>(policy.num_threads);
      sync_pool_timing();
    }
  } else {
    pool_.reset();
  }
  // One scratch slot per shard the engine can produce (the serial loop
  // and a pinned-serial Signal phase use slot 0 only). Shrinking on a
  // narrower policy would free warmed buffers for nothing, so don't.
  const auto width =
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1;
  if (scratch_.shards.size() < width) scratch_.shards.resize(width);
}

std::size_t System::entity_count() const noexcept {
  std::size_t n = 0;
  for (const CellState& c : cells_) n += c.members.size();
  return n;
}

CellMask System::alive_mask() const {
  CellMask m(grid_);
  for (std::size_t k = 0; k < cells_.size(); ++k)
    if (!cells_[k].failed) m.set(grid_.id_of(k));
  return m;
}

std::vector<Dist> System::reference_distances() const {
  return path_distances(grid_, alive_mask(), config_.target);
}

CellMask System::tc_mask() const {
  return target_connected(grid_, alive_mask(), config_.target);
}

void System::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  if (!c.failed && metrics_) metrics_->add_failure();  // idempotent action
  c.failed = true;
  c.dist = Dist::infinity();  // neighbors stop hearing from it
  c.next = std::nullopt;
  // "A failed cell … never communicates": in the message-passing reading,
  // neighbors read no grant from it, so its shared signal must present
  // as ⊥. The private token and NEPrev are simply lost.
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
  note_control_mutation(grid_.index_of(id));
}

void System::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  if (!c.failed) return;
  if (metrics_) metrics_->add_recovery();
  c.failed = false;
  // Reset to initial protocol state (§IV); Route repairs dist/next within
  // O(N²) rounds (Corollary 7). The target re-anchors at 0 so routing can
  // re-stabilize toward it.
  c.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  c.next = std::nullopt;
  c.token = std::nullopt;
  c.signal = std::nullopt;
  c.ne_prev.clear();
  // Members are retained: entities that were frozen on the failed cell
  // resume their journey.
  note_control_mutation(grid_.index_of(id));
}

bool System::decide_cutover() const {
  // kAuto: run this round serial when the previous round's widest phase
  // would hand each shard less than the grain's worth of cells — the
  // pooled round would then be dominated by dispatch and barriers. The
  // inputs (SchedulerStats, grid size, policy) are engine-independent,
  // and by §6 both engines are bit-identical, so the choice can never
  // change results. Round 0 has no stats yet and runs as configured.
  if (round_ == 0) return false;
  const std::size_t used =
      shard_count(cells_.size(), pool_->thread_count());
  if (used <= 1) return false;
  const std::uint64_t widest =
      std::max({sched_stats_.route_cells, sched_stats_.signal_cells,
                sched_stats_.move_cells});
  double grain = static_cast<double>(parallel_.cutover_grain);
  if (ewma_cutover_grain_ > 0.0)
    grain = std::clamp(ewma_cutover_grain_, 64.0, 4096.0);
  return static_cast<double>(widest) <
         grain * static_cast<double>(used);
}

const RoundEvents& System::update() {
  events_.clear();
  events_.round = round_;

  // Profiling/telemetry wrap (they never feed back into the round) and
  // metrics flush once per round, after the phases — see set_metrics().
  using ProfClock = obs::PhaseProfiler::Clock;
  const bool track = profiler_ != nullptr || telemetry_ != nullptr;
  const auto t_round = track ? ProfClock::now() : ProfClock::time_point{};
  if (telemetry_ != nullptr) round_timing_.reset();
  // Serial cutover (ParallelPolicy::Cutover::kAuto): the round in
  // flight uses round_pool_, which this decision may pin to nullptr.
  const bool cutover =
      pool_ != nullptr &&
      parallel_.cutover == ParallelPolicy::Cutover::kAuto && decide_cutover();
  round_pool_ = cutover ? nullptr : pool_.get();
  // `count_serial`: the phase will run entirely on the calling thread,
  // so its whole wall span — body, merges, glue — is telemetry "work"
  // (pooled phases decompose themselves via note_phase_timing instead).
  // Whether a phase pools is decided here exactly the way
  // parallel_for_shards decides it: a pool exists and the partition
  // yields more than one shard; Signal additionally pins serial under a
  // stateful choose policy.
  const bool pooled =
      round_pool_ != nullptr &&
      shard_count(cells_.size(), round_pool_->thread_count()) > 1;
  const bool signal_pooled = pooled && choose_->concurrent_safe();
  // Fused-barrier orchestration (DESIGN.md §6): one run_plan dispatch
  // covers the whole round when nothing needs the per-phase barriers —
  // no hook observing intermediate states, no profiler/telemetry
  // measuring them — and shards are wide enough (>= side cells) that
  // the Route→Signal gate only ever spans adjacent shards, which is
  // what makes the in-stage wait deadlock-free.
  const bool fused =
      pooled && !phase_hook_ && !track &&
      cells_.size() / shard_count(cells_.size(),
                                  round_pool_->thread_count()) >=
          static_cast<std::size_t>(config_.side);
  const auto timed = [this, track](const char* name, bool count_serial,
                                   auto&& phase) {
    if (!track) {
      phase();
      return;
    }
    const auto t0 = ProfClock::now();
    phase();
    const auto t1 = ProfClock::now();
    if (profiler_ != nullptr) profiler_->record(name, round_, -1, t0, t1);
    if (count_serial && telemetry_ != nullptr)
      round_timing_.serial_work_ns += span_ns(t0, t1);
  };

  if (fused) {
    run_fused_round();
  } else {
    timed("route", !pooled, [this] { run_route_phase(); });
    if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterRoute);
    timed("signal", !signal_pooled, [this] { run_signal_phase(); });
    if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterSignal);
    timed("move", !pooled, [this] { run_move_phase(); });
    if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterMove);
    timed("inject", true, [this] { run_inject_phase(); });
    if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterInject);
  }

  const auto t_end = track ? ProfClock::now() : ProfClock::time_point{};
  if (profiler_ != nullptr)
    profiler_->record("round", round_, -1, t_round, t_end);
  if (telemetry_ != nullptr) {
    obs::RoundBreakdown b;
    b.round_ns = span_ns(t_round, t_end);
    b.workers = round_pool_ ? round_pool_->thread_count() : 1;
    b.cutover = cutover;
    if (pool_) {
      const DispatchStats ds = pool_->dispatch_stats();
      b.pool_dispatches = ds.dispatches - last_dispatch_stats_.dispatches;
      b.pool_spin_wakes = ds.spin_wakes - last_dispatch_stats_.spin_wakes;
      b.pool_park_wakes = ds.park_wakes - last_dispatch_stats_.park_wakes;
      last_dispatch_stats_ = ds;
    }
    b.work_ns = round_timing_.serial_work_ns + round_timing_.pool_busy_ns;
    b.barrier_wait_ns = round_timing_.pool_barrier_ns;
    b.dispatch_ns =
        round_timing_.pool_dispatch_ns + round_timing_.pool_resume_ns;
    b.merge_ns = round_timing_.merge_ns;
    b.imbalance_route = round_timing_.imbalance[0];
    b.imbalance_signal = round_timing_.imbalance[1];
    b.imbalance_move = round_timing_.imbalance[2];
    if (pool_ && b.round_ns > 0) {
      // Utilization: summed task-body time over the theoretical
      // width × wall budget (busy would overstate it on a preempted
      // machine — preemption gaps are not useful parallelism).
      b.parallel_work_fraction =
          static_cast<double>(round_timing_.pool_task_ns) /
          (static_cast<double>(pool_->thread_count()) *
           static_cast<double>(b.round_ns));
    }
    if (pooled) {
      // Adaptive cutover grain: a pooled, telemetry-tracked round gives
      // a live sample of "how many cells per shard would this round's
      // overhead have paid for" — overhead_ns / (per-cell work × shard
      // count). The EWMA smooths scheduler noise; decide_cutover clamps
      // it before use. Timing only selects which of two bit-identical
      // engines runs (§6), so feeding it back is determinism-safe.
      const std::uint64_t visited = sched_stats_.route_cells +
                                    sched_stats_.signal_cells +
                                    sched_stats_.move_cells;
      const std::uint64_t overhead = round_timing_.pool_dispatch_ns +
                                     round_timing_.pool_resume_ns +
                                     round_timing_.pool_barrier_ns;
      if (visited > 0 && round_timing_.pool_task_ns > 0) {
        const double cell_ns =
            static_cast<double>(round_timing_.pool_task_ns) /
            static_cast<double>(visited);
        const std::size_t width =
            shard_count(cells_.size(), pool_->thread_count());
        const double sample = static_cast<double>(overhead) /
                              (cell_ns * static_cast<double>(width));
        ewma_cutover_grain_ = ewma_cutover_grain_ == 0.0
                                  ? sample
                                  : 0.8 * ewma_cutover_grain_ + 0.2 * sample;
      }
    }
    telemetry_->record_round(b);
    if (profiler_ != nullptr) {
      profiler_->record_counter("imbalance_route", t_end, b.imbalance_route);
      profiler_->record_counter("imbalance_signal", t_end, b.imbalance_signal);
      profiler_->record_counter("imbalance_move", t_end, b.imbalance_move);
      profiler_->record_counter("parallel_work_fraction", t_end,
                                b.parallel_work_fraction);
    }
  }
  if (metrics_) {
    metrics_->add(round_counts_);
    metrics_->add_round();
    round_counts_.reset();
  }
  ++round_;
  return events_;
}

void System::run_fused_round() {
  // One ThreadPool::run_plan dispatch for the whole round (DESIGN.md
  // §6). The legacy path pays a dispatch + full barrier per phase; here
  // the workers wake once and ride three stages:
  //
  //   stage 0 (parallel): Route over grid shards, then — when the
  //     choose policy is concurrent-safe — Signal over the same shard,
  //     gated per shard instead of globally: shard t's Signal half only
  //     needs the Route outputs of shards t-1, t, t+1 (every input a
  //     Signal cell reads lies within `side` cells of it, and update()
  //     only fuses when each shard spans >= side cells). Deadlock-free:
  //     tasks are claimed in ascending order and every task publishes
  //     its Route flag *before* waiting, so the only wait on an
  //     unclaimed task is the highest claimed task waiting on t+1 —
  //     and with >= 2 executors (pooled implies it; the caller is
  //     executor 0) some executor is free to claim t+1.
  //   stage 1 (serial, workers held): the phase merges, in the same
  //     shard order as the legacy path — plus the whole Signal phase
  //     when a stateful choose policy pins it serial.
  //   stage 2 (parallel): Move over grid shards.
  //
  // Same span bodies, same shard ranges, same merge order as the
  // legacy path ⇒ the §6 bit-identity argument is unchanged.
  ThreadPool* pool = round_pool_;
  const std::size_t n = cells_.size();
  const std::size_t used = shard_count(n, pool->thread_count());
  const bool signal_fused = choose_->concurrent_safe();
  const bool active = scheduler_ == RoundScheduler::kActiveSet;

  if (!active) {
    for (std::size_t k = 0; k < n; ++k)
      dist_snapshot_[k] = cells_[k].dist.raw();
  }
  const auto nshards = static_cast<std::size_t>(pool->thread_count());
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();

  // Reset the Route→Signal gate while the workers are quiescent.
  if (route_ready_cap_ < used) {
    route_ready_ = std::make_unique<std::atomic<std::uint32_t>[]>(used);
    route_ready_cap_ = used;
  }
  for (std::size_t s = 0; s < used; ++s)
    route_ready_[s].store(0, std::memory_order_relaxed);

  const auto wait_ready = [this](std::size_t t) {
    for (int spin = 0; route_ready_[t].load(std::memory_order_acquire) == 0;
         ++spin) {
      if (spin >= 256) std::this_thread::yield();
    }
  };
  const auto route_signal_stage = [&](std::size_t t) {
    const ShardRange r = shard_range_at(n, used, t);
    route_span(t, r.begin, r.end);
    route_ready_[t].store(1, std::memory_order_release);
    if (signal_fused) {
      if (t > 0) wait_ready(t - 1);
      if (t + 1 < used) wait_ready(t + 1);
      signal_span(t, r.begin, r.end);
    }
  };
  const auto merge_stage = [&](std::size_t) {
    merge_shard_counts(used);
    merge_route_results(used);
    if (signal_fused) {
      merge_signal_results(used);
    } else {
      // Stateful choose policy: Signal pinned serial in slot 0, exactly
      // like the legacy path (the merge then only sees slot 0's output).
      ShardScratch& sc0 = scratch_.shards[0];
      sc0.counts.reset();
      signal_span(0, 0, n);
      merge_signal_results(used);
      if (metrics_) round_counts_.merge(sc0.counts);
    }
    // Re-arm the shard slots for Move: tallies and the visited counter
    // restart per phase (the event buffers were already merged above
    // and are not reused by Move's slots).
    for (std::size_t s = 0; s < used; ++s) {
      scratch_.shards[s].counts.reset();
      scratch_.shards[s].visited = 0;
    }
  };
  const auto move_stage = [&](std::size_t t) {
    const ShardRange r = shard_range_at(n, used, t);
    move_span(t, r.begin, r.end);
  };

  const ThreadPool::PlanStage stages[3] = {
      {/*parallel=*/true, used, route_signal_stage},
      {/*parallel=*/false, 1, merge_stage},
      {/*parallel=*/true, used, move_stage},
  };
  pool->run_plan(stages, 3);

  merge_shard_counts(used);
  merge_move_results(used);
  run_inject_phase();
}

void System::run_route_phase() {
  // Phase-parallel Bellman–Ford: every cell reads its neighbors'
  // *previous-round* dist via dist_snapshot_ (Figure 4 semantics). The
  // snapshot makes the per-cell step a pure function of frozen data;
  // each cell writes only its own dist/next, so the loop shards freely.
  //
  // kExhaustive recopies the snapshot and visits every cell; kActiveSet
  // keeps the snapshot fresh incrementally (only cells whose dist
  // changed need resyncing) and visits only armed cells — a cell is
  // armed exactly when a neighborhood dist changed last round or an
  // external mutation touched it, which is precisely when route_step
  // could produce something new. Skipped live cells still tally their
  // would-be relaxations so the ProtocolCounts contract (bit-identical
  // counts across engines) holds.
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  if (!active) {
    for (std::size_t k = 0; k < cells_.size(); ++k)
      dist_snapshot_[k] = cells_[k].dist.raw();
  }

  ThreadPool* pool = round_pool_;
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();

  // Active-list sharding (DESIGN.md §6): when the armed set is sparse
  // (under a quarter of the grid), contiguous grid shards degenerate —
  // one shard can own the whole armed region while the rest only tally
  // skips. Instead the calling thread pre-scans the gates into an
  // ascending cell list, settles the skipped cells' counter obligations
  // directly (ProtocolCounts merging is additive, so tally order cannot
  // change the sums), and the pool shards the *list*. route_stamp_ is
  // frozen for the phase (re-arming happens in the merge), so the
  // pre-scan sees exactly the gates the shard bodies would have seen.
  const std::size_t grid_used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool use_list = active && pool != nullptr && grid_used > 1 &&
                        round_ > 0 &&
                        sched_stats_.route_cells * 4 < cells_.size();
  if (use_list) {
    auto& list = scratch_.active_list;
    list.clear();
    for (std::size_t k = 0; k < cells_.size(); ++k) {
      if (route_stamp_[k] >= round_) {
        list.push_back(static_cast<std::uint32_t>(k));
      } else if (metrics_ && !cells_[k].failed && k != target_k_) {
        for (const std::uint32_t nk : nbr_idx_[k])
          if (nk != kNoNbr) ++round_counts_.route_relaxations;
      }
    }
  }
  const std::size_t domain =
      use_list ? scratch_.active_list.size() : cells_.size();
  const std::size_t used = shard_count(domain, static_cast<int>(nshards));
  const bool pooled = pool != nullptr && used > 1;
  // Per-shard spans feed the profiler and the imbalance statistic; a
  // serial phase needs neither (imbalance is 1.0 and timed() already
  // covers the wall), so telemetry alone reads no clocks here.
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    if (use_list)
      route_list_span(s, r.begin, r.end);
    else
      route_span(s, r.begin, r.end);
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      scratch_.shards[s].span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("route", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool, domain, body);
  note_phase_timing(0, pool, used);
  // Merge is a separate telemetry component only when the phase pooled
  // (post-barrier serial section); in a serial phase it is simply part
  // of the phase's timed() work span.
  const bool merge_timing = telemetry_ != nullptr && pooled;
  const auto merge_t0 = merge_timing
                            ? obs::PhaseProfiler::Clock::now()
                            : obs::PhaseProfiler::Clock::time_point{};
  merge_shard_counts(nshards);
  merge_route_results(nshards);
  if (merge_timing)
    round_timing_.merge_ns +=
        span_ns(merge_t0, obs::PhaseProfiler::Clock::now());
}

void System::route_span(std::size_t s, std::size_t begin, std::size_t end) {
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  if (scheduler_ != RoundScheduler::kActiveSet) {
    if (!huge_dist_seen_) {
      // Packed-key fast path: interior cells (all four lattice neighbors
      // present) go through the bulk kernel; boundary rows/columns, the
      // target, and failed cells take the reference route_cell. The
      // kernel is exact below the guard band (tests/test_route_kernel),
      // and huge_dist_seen_ pins the whole phase to route_cell the
      // moment any raw approaches it.
      const auto side = static_cast<std::size_t>(config_.side);
      std::size_t k = begin;
      while (k < end) {
        const std::size_t j = k / side;
        const std::size_t i = k % side;
        if (side < 3 || j == 0 || j + 1 == side) {
          // Boundary row: scalar to the row's end (or the span's).
          const std::size_t row_end = std::min(end, (j + 1) * side);
          for (; k < row_end; ++k) route_cell(k, pc, nullptr);
          continue;
        }
        if (i == 0 || i + 1 >= side) {
          route_cell(k, pc, nullptr);
          ++k;
          continue;
        }
        // Interior segment of this row clipped to the span; break it at
        // the target and at failed cells (route_cell handles those).
        const std::size_t seg_end = std::min(end, j * side + side - 1);
        while (k < seg_end) {
          std::size_t stop = k;
          while (stop < seg_end && stop != target_k_ && !cells_[stop].failed)
            ++stop;
          if (stop > k) route_run_kernel(k, stop - k, sc, pc, nullptr);
          if (stop < seg_end) route_cell(stop, pc, nullptr);
          k = stop < seg_end ? stop + 1 : stop;
        }
      }
      sc.visited += end - begin;
    } else {
      for (std::size_t k = begin; k < end; ++k) route_cell(k, pc, nullptr);
      sc.visited += end - begin;
    }
  } else {
    for (std::size_t k = begin; k < end; ++k) {
      if (route_stamp_[k] >= round_) {
        route_cell(k, pc, &sc.changed);
        ++sc.visited;
      } else if (pc != nullptr && !cells_[k].failed) {
        // The exhaustive loop would have relaxed over every
        // lattice neighbor (and changed nothing — that is what
        // quiescence means); the target tallies nothing once
        // pinned at 0.
        if (k != target_k_) {
          for (const std::uint32_t nk : nbr_idx_[k])
            if (nk != kNoNbr) ++pc->route_relaxations;
        }
      }
    }
  }
}

void System::route_list_span(std::size_t s, std::size_t begin,
                             std::size_t end) {
  // Every list entry passed the arming gate on the calling thread, so
  // the body is unconditional; consecutive interior entries still form
  // kernel runs (an armed region is usually a contiguous frontier).
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  const auto& list = scratch_.active_list;
  const auto side = static_cast<std::size_t>(config_.side);
  std::size_t i = begin;
  while (i < end) {
    const std::size_t k = list[i];
    const std::size_t kj = k / side;
    const std::size_t ki = k % side;
    const bool interior = side >= 3 && kj >= 1 && kj + 1 < side && ki >= 1 &&
                          ki + 1 < side;
    if (!huge_dist_seen_ && interior && k != target_k_ && !cells_[k].failed) {
      // Last interior index of this row is kj*side + side - 2.
      const std::size_t row_int_end = kj * side + side - 1;
      std::size_t run = i + 1;
      while (run < end && list[run] == list[run - 1] + 1 &&
             list[run] < row_int_end &&
             list[run] != static_cast<std::uint32_t>(target_k_) &&
             !cells_[list[run]].failed)
        ++run;
      route_run_kernel(k, run - i, sc, pc, &sc.changed);
      sc.visited += run - i;
      i = run;
    } else {
      route_cell(k, pc, &sc.changed);
      ++sc.visited;
      ++i;
    }
  }
}

void System::route_run_kernel(std::size_t k0, std::size_t n, ShardScratch& sc,
                              obs::ProtocolCounts* counts,
                              std::vector<std::size_t>* changed_out) {
  const auto side = static_cast<std::size_t>(config_.side);
  if (sc.keys.size() < n) sc.keys.resize(n);
  route_min_keys_interior(dist_snapshot_.data(), k0, n, side, sc.keys.data());
  // Id-rank → dense-offset decode (W < S < N < E for index_of = j*side+i).
  const std::ptrdiff_t off[4] = {-1, -static_cast<std::ptrdiff_t>(side),
                                 static_cast<std::ptrdiff_t>(side), 1};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = k0 + i;
    CellState& c = cells_[k];
    const std::uint64_t key = sc.keys[i];
    Dist nd = Dist::infinity();
    OptCellId nxt = std::nullopt;
    std::uint32_t fk = kNoNbr;
    if (key != kRouteKeyNone) {
      nd = Dist::from_raw((key >> 2) + 1);
      const auto nk = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(k) + off[key & 3]);
      nxt = cell_id_[nk];
      fk = static_cast<std::uint32_t>(nk);
    }
    // Bookkeeping mirrors route_cell exactly (interior ⇒ 4 relaxations).
    if (counts != nullptr) {
      counts->route_relaxations += 4;
      if (c.dist != nd) ++counts->route_dist_changes;
    }
    if (changed_out != nullptr && c.dist != nd) changed_out->push_back(k);
    c.dist = nd;
    c.next = nxt;
    feed_[k] = (nxt.has_value() && !c.members.empty()) ? fk : kNoNbr;
  }
}

void System::merge_shard_counts(std::size_t used) {
  // Counter determinism: shard tallies merge in ascending shard order,
  // the same discipline as the event buffers (merging is additive, so
  // the order is a convention, not a correctness requirement).
  if (!metrics_) return;
  for (std::size_t s = 0; s < used; ++s)
    round_counts_.merge(scratch_.shards[s].counts);
}

void System::merge_route_results(std::size_t used) {
  sched_stats_.route_cells = 0;
  for (std::size_t s = 0; s < used; ++s)
    sched_stats_.route_cells += scratch_.shards[s].visited;
  if (scheduler_ == RoundScheduler::kActiveSet) {
    // Post-barrier merge, shard order: sync the snapshot for changed
    // cells and arm their readers (the lattice neighbors) for next
    // round. A cell's own Route output depends only on its neighbors'
    // dists, so its own change does not re-arm itself.
    for (std::size_t s = 0; s < used; ++s) {
      for (const std::size_t k : scratch_.shards[s].changed) {
        dist_snapshot_[k] = cells_[k].dist.raw();
        for (const std::uint32_t nk : nbr_idx_[k]) {
          if (nk == kNoNbr) continue;
          std::uint64_t& stamp = route_stamp_[nk];
          stamp = std::max(stamp, round_ + 1);
        }
      }
    }
  }
}

void System::route_cell(std::size_t k, obs::ProtocolCounts* counts,
                        std::vector<std::size_t>* changed_out) {
  CellState& c = cells_[k];
  const CellId id = cell_id_[k];
  if (c.failed) {
    // A failed cell feeds nobody (neighbors read signal/dist as if it
    // were absent), so the exhaustive Signal scan must see kNoNbr here.
    feed_[k] = kNoNbr;
    return;
  }
  if (id == config_.target) {
    // The target anchors routing: dist pinned to 0, next to ⊥. Pinning
    // every round (rather than only at init/recover) also washes out
    // adversarial corruption of the target's control state.
    if (c.dist != Dist::zero()) {
      if (counts != nullptr) ++counts->route_dist_changes;
      if (changed_out != nullptr) changed_out->push_back(k);
    }
    c.dist = Dist::zero();
    c.next = std::nullopt;
    feed_[k] = kNoNbr;  // next = ⊥: the target never feeds a neighbor
    return;
  }

  const std::array<std::uint32_t, 4>& nbr = nbr_idx_[k];
  NeighborDist nds[4];
  std::uint32_t nks[4];
  std::size_t n = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    const std::uint32_t nk = nbr[d];
    if (nk == kNoNbr) continue;
    nks[n] = nk;
    nds[n++] = NeighborDist{cell_id_[nk], Dist::from_raw(dist_snapshot_[nk])};
  }
  const RouteResult r = route_step(std::span<const NeighborDist>(nds, n));
  if (counts != nullptr) {
    counts->route_relaxations += n;
    if (c.dist != r.dist) ++counts->route_dist_changes;
  }
  // Only a *dist* change can perturb other cells (Route reads nothing
  // else); a next-only change re-routes this cell's own movers but
  // leaves every Route input, and hence the arming set, untouched.
  if (changed_out != nullptr && c.dist != r.dist) changed_out->push_back(k);
  c.dist = r.dist;
  c.next = r.next;
  // Feeder snapshot for the exhaustive Signal scan (header comment on
  // feed_): next is one of the gathered neighbors, so recover its dense
  // index from the gather instead of re-deriving it through the grid.
  feed_[k] = kNoNbr;
  if (r.next.has_value() && !c.members.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (nds[i].id == *r.next) {
        feed_[k] = nks[i];
        break;
      }
    }
  }
}

void System::run_signal_phase() {
  // Signal reads neighbors' fresh `next` (phase 1 output) and pre-Move
  // Members; it writes only its own ne_prev/token/signal — disjoint
  // struct fields, so concurrent cells never touch the same memory. A
  // stateful choose policy (RandomChoose) must observe the serial call
  // sequence, so it pins this phase to the in-order loop; the results
  // are identical either way for concurrent-safe (pure) policies.
  ThreadPool* pool = choose_->concurrent_safe() ? round_pool_ : nullptr;
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();

  // Active-list sharding, same shape as Route: occ_refs_ is frozen for
  // the phase (flips buffer and apply at the barrier), so the calling
  // thread's pre-scan sees exactly the gates the shard bodies would.
  const std::size_t grid_used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool use_list = active && pool != nullptr && grid_used > 1 &&
                        round_ > 0 &&
                        sched_stats_.signal_cells * 4 < cells_.size();
  if (use_list) {
    auto& list = scratch_.active_list;
    list.clear();
    for (std::size_t k = 0; k < cells_.size(); ++k) {
      if (occ_refs_[k] > 0) {
        list.push_back(static_cast<std::uint32_t>(k));
      } else if (metrics_ && !cells_[k].failed) {
        ++round_counts_.ne_prev_sizes[0];
      }
    }
  }
  const std::size_t domain =
      use_list ? scratch_.active_list.size() : cells_.size();
  const std::size_t used = shard_count(domain, static_cast<int>(nshards));
  const bool pooled = pool != nullptr && used > 1;
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    if (use_list)
      signal_list_span(s, r.begin, r.end);
    else
      signal_span(s, r.begin, r.end);
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      scratch_.shards[s].span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("signal", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool, domain, body);
  note_phase_timing(1, pool, used);
  const bool merge_timing = telemetry_ != nullptr && pooled;
  const auto merge_t0 = merge_timing
                            ? obs::PhaseProfiler::Clock::now()
                            : obs::PhaseProfiler::Clock::time_point{};
  merge_shard_counts(nshards);
  merge_signal_results(nshards);
  if (merge_timing)
    round_timing_.merge_ns +=
        span_ns(merge_t0, obs::PhaseProfiler::Clock::now());
}

void System::signal_span(std::size_t s, std::size_t begin, std::size_t end) {
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  if (scheduler_ != RoundScheduler::kActiveSet) {
    for (std::size_t k = begin; k < end; ++k)
      signal_cell(k, sc.blocked, pc, nullptr);
    sc.visited_b += end - begin;
  } else {
    for (std::size_t k = begin; k < end; ++k) {
      // occ_refs_ is frozen for the duration of the phase (flips
      // buffer per shard and apply at the barrier), so every
      // engine takes identical skip decisions. A cell with an
      // all-unoccupied closed neighborhood maps (⊥,⊥,[]) to
      // (⊥,⊥,[]) without consulting choose_, so skipping it is
      // exact — it only owes the exhaustive loop's ne_prev_sizes
      // tally for live cells.
      if (occ_refs_[k] > 0) {
        signal_cell(k, sc.blocked, pc, &sc.flips);
        ++sc.visited_b;
      } else if (pc != nullptr && !cells_[k].failed) {
        ++pc->ne_prev_sizes[0];
      }
    }
  }
}

void System::signal_list_span(std::size_t s, std::size_t begin,
                              std::size_t end) {
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  const auto& list = scratch_.active_list;
  for (std::size_t i = begin; i < end; ++i)
    signal_cell(list[i], sc.blocked, pc, &sc.flips);
  sc.visited_b += end - begin;
}

void System::merge_signal_results(std::size_t used) {
  // Shards cover ascending cell ranges (or an ascending slice of the
  // active list), so concatenating in shard order reproduces the serial
  // loop's blocked-event order exactly.
  sched_stats_.signal_cells = 0;
  for (std::size_t s = 0; s < used; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.blocked.insert(events_.blocked.end(), sc.blocked.begin(),
                           sc.blocked.end());
    sched_stats_.signal_cells += sc.visited_b;
  }
  // Occupancy flips apply at the barrier, in shard order, so the Move
  // phase's activity reads see the post-Signal occupancy on every
  // engine (a fresh grant makes its destination occupied, which is what
  // schedules the granted mover).
  for (std::size_t s = 0; s < used; ++s)
    for (const std::size_t k : scratch_.shards[s].flips)
      apply_occupancy_flip(k);
}

void System::signal_cell(std::size_t k, std::vector<CellId>& blocked_out,
                         obs::ProtocolCounts* counts,
                         std::vector<std::size_t>* flip_out) {
  CellState& c = cells_[k];
  if (c.failed) return;
  const CellId id = grid_.id_of(k);

  SignalInputs in;
  in.self = id;
  in.members = c.members;
  in.token = c.token;
  const std::array<std::uint32_t, 4>& nbr = nbr_idx_[k];
  if (scheduler_ != RoundScheduler::kActiveSet) {
    // Exhaustive: Route refreshed feed_ for every cell this round, so
    // "does this neighbor feed me?" is one dense 4-byte load per
    // direction instead of a gather over four scattered CellStates.
    for (const std::uint32_t nk : nbr) {
      if (nk != kNoNbr && feed_[nk] == k) in.ne_prev.push_back(cell_id_[nk]);
    }
  } else {
    // Active-set: Route skips quiescent cells, so feed_ may be stale —
    // read the neighbors directly (see the feed_ member comment).
    for (const std::uint32_t nk : nbr) {
      if (nk == kNoNbr) continue;
      const CellState& nc = cells_[nk];
      if (nc.failed) continue;  // a failed cell never communicates
      if (nc.next == OptCellId{id} && nc.has_entities())
        in.ne_prev.push_back(cell_id_[nk]);
    }
  }
  std::sort(in.ne_prev.begin(), in.ne_prev.end());

  const bool had_candidate = in.token.has_value() || !in.ne_prev.empty();
  const std::size_t ne_prev_size = in.ne_prev.size();
  const OptCellId old_token = c.token;
  SignalResult r =
      config_.signal_rule == SignalRule::kBlocking
          ? signal_step(std::move(in), config_.params, *choose_)
          : signal_step_always_grant(std::move(in), *choose_);
  if (had_candidate && !r.signal.has_value()) blocked_out.push_back(id);
  if (counts != nullptr) {
    ++counts->ne_prev_sizes[std::min<std::size_t>(
        ne_prev_size, counts->ne_prev_sizes.size() - 1)];
    if (r.signal.has_value()) ++counts->signal_grants;
    if (had_candidate && !r.signal.has_value()) ++counts->signal_blocks;
    if (old_token.has_value() && r.token != old_token)
      ++counts->signal_token_rotations;
  }
  c.signal = r.signal;
  c.token = r.token;
  c.ne_prev = std::move(r.ne_prev);
  if (flip_out != nullptr && occupied(c) != (occ_b_[k] != 0))
    flip_out->push_back(k);
}

void System::run_move_phase() {
  // All cells decide and move simultaneously (Figure 6 guard:
  // signal_{next_{i,j}} = ⟨i,j⟩), so: first apply every cell's own
  // displacement and pull out the boundary-crossers, then deliver the
  // crossers. The decision step reads only the destination's signal
  // (frozen since phase 2) and mutates only the cell's own Members, so
  // it shards freely; delivery happens after the barrier, in canonical
  // order, because appends into a shared destination determine Members
  // order and hence downstream traces.
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  ThreadPool* pool = round_pool_;
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();

  // Active-list sharding, same shape as Route/Signal. occ_refs_ here
  // already reflects this round's Signal output (flips merged at the
  // Signal barrier) and stays frozen until the Move merge, so the
  // pre-scan and the shard bodies agree on the gates. Skipped cells owe
  // no tallies (an inactive cell's move_cell is a tally-free no-op).
  const std::size_t grid_used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool use_list = active && pool != nullptr && grid_used > 1 &&
                        round_ > 0 &&
                        sched_stats_.move_cells * 4 < cells_.size();
  if (use_list) {
    auto& list = scratch_.active_list;
    list.clear();
    for (std::size_t k = 0; k < cells_.size(); ++k)
      if (occ_refs_[k] > 0) list.push_back(static_cast<std::uint32_t>(k));
  }
  const std::size_t domain =
      use_list ? scratch_.active_list.size() : cells_.size();
  const std::size_t used = shard_count(domain, static_cast<int>(nshards));
  const bool pooled = pool != nullptr && used > 1;
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    if (use_list)
      move_list_span(s, r.begin, r.end);
    else
      move_span(s, r.begin, r.end);
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      scratch_.shards[s].span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("move", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool, domain, body);
  note_phase_timing(2, pool, used);

  const bool merge_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto merge_t0 = merge_timing ? obs::PhaseProfiler::Clock::now()
                                     : obs::PhaseProfiler::Clock::time_point{};
  merge_shard_counts(nshards);
  merge_move_results(nshards);
  if (merge_timing) {
    const auto merge_t1 = obs::PhaseProfiler::Clock::now();
    if (profiler_ != nullptr)
      profiler_->record("merge", round_, -1, merge_t0, merge_t1);
    if (telemetry_ != nullptr && pooled)
      round_timing_.merge_ns += span_ns(merge_t0, merge_t1);
  }
}

void System::move_span(std::size_t s, std::size_t begin, std::size_t end) {
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  if (scheduler_ != RoundScheduler::kActiveSet) {
    for (std::size_t k = begin; k < end; ++k)
      move_cell(k, sc.moved, sc.pending, sc.crossed, pc);
    sc.visited += end - begin;
  } else {
    for (std::size_t k = begin; k < end; ++k) {
      // An unoccupied cell with an unoccupied closed neighborhood
      // cannot move: it has no members to relocate or compact,
      // and a grant in its favor would make its destination (a
      // lattice neighbor, post-Route) occupied — so move_cell
      // would be a no-op that tallies nothing. occ_refs_ already
      // reflects this round's Signal output (flips merged at the
      // barrier).
      if (occ_refs_[k] > 0) {
        move_cell(k, sc.moved, sc.pending, sc.crossed, pc);
        ++sc.visited;
      }
    }
  }
}

void System::move_list_span(std::size_t s, std::size_t begin,
                            std::size_t end) {
  ShardScratch& sc = scratch_.shards[s];
  obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
  const auto& list = scratch_.active_list;
  for (std::size_t i = begin; i < end; ++i)
    move_cell(list[i], sc.moved, sc.pending, sc.crossed, pc);
  sc.visited += end - begin;
}

void System::merge_move_results(std::size_t used) {
  sched_stats_.move_cells = 0;
  for (std::size_t s = 0; s < used; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.moved.insert(events_.moved.end(), sc.moved.begin(),
                         sc.moved.end());
    sched_stats_.move_cells += sc.visited;
  }

  std::vector<PendingTransfer>& transfers = scratch_.transfers;
  transfers.clear();
  for (std::size_t s = 0; s < used; ++s) {
    std::vector<PendingTransfer>& p = scratch_.shards[s].pending;
    transfers.insert(transfers.end(), std::make_move_iterator(p.begin()),
                     std::make_move_iterator(p.end()));
  }
  // Already canonical by construction (ascending shards, in-order within
  // each); enforce it anyway so no engine can drift.
  canonical_transfer_order(grid_, transfers);

  for (PendingTransfer& t : transfers) {
    TransferEvent ev{t.entity.id, t.from, t.to, /*consumed=*/false};
    if (t.to == config_.target) {
      ev.consumed = true;
      ++total_arrivals_;
      ++events_.arrivals;
      if (metrics_) ++round_counts_.consumptions;
      // Figure 6 line 11: the entity is not added to any cell — consumed.
    } else {
      cells_[grid_.index_of(t.to)].members.push_back(t.entity);
    }
    events_.transfers.push_back(ev);
  }
  if (scheduler_ == RoundScheduler::kActiveSet) {
    // Membership only changes at cells that applied a movement (shrink)
    // or received a delivery (growth); both lists are already in
    // canonical order. refresh_occupancy is idempotent, so overlap
    // (a cell that both moved and received) is harmless.
    for (const CellId id : events_.moved)
      refresh_occupancy(grid_.index_of(id));
    for (const TransferEvent& t : events_.transfers)
      if (!t.consumed) refresh_occupancy(grid_.index_of(t.to));
  }
}

void System::move_cell(std::size_t k, std::vector<CellId>& moved_out,
                       std::vector<PendingTransfer>& pending_out,
                       std::vector<Entity>& crossed_scratch,
                       obs::ProtocolCounts* counts) {
  CellState& c = cells_[k];
  if (c.failed || !c.next.has_value()) return;
  const CellId id = grid_.id_of(k);
  const CellId dest = *c.next;
  const CellState& dc = cells_[grid_.index_of(dest)];
  const bool permitted = dc.signal == OptCellId{id};

  // The in-place steps partition c.members directly (stayers keep their
  // order, crossers land in the shard's crossing scratch) — no per-cell
  // staying/crossed vectors; see move.hpp.
  crossed_scratch.clear();
  if (config_.movement_rule == MovementRule::kCoupled) {
    if (!permitted) return;  // Figure 6: move only with permission
    moved_out.push_back(id);
    if (counts != nullptr) ++counts->moves;
    move_step_inplace(id, dest, c.members, crossed_scratch, config_.params);
  } else {
    // §V relaxed coupling: compact every round; cross only when
    // permitted; never compact into our own promised strip.
    if (c.members.empty()) return;
    if (permitted) {
      moved_out.push_back(id);
      if (counts != nullptr) ++counts->moves;
    }
    CompactionContext ctx;
    ctx.may_cross = permitted;
    if (c.signal.has_value())
      ctx.promised_strip = grid_.direction_between(id, *c.signal);
    compact_move_step_inplace(id, dest, c.members, crossed_scratch,
                              config_.params, ctx);
  }
  if (counts != nullptr) counts->transfers += crossed_scratch.size();
  for (Entity& e : crossed_scratch)
    pending_out.push_back(PendingTransfer{e, id, dest});
}

void System::run_inject_phase() {
  for (const CellId s : config_.sources) {
    CellState& c = cells_[grid_.index_of(s)];
    if (c.failed) continue;
    const auto center = source_->propose(grid_, config_.params, s, c);
    if (!center.has_value()) continue;
    if (!injection_is_safe(s, *center)) {
      if (metrics_) ++round_counts_.blocked_injections;
      continue;
    }
    const EntityId id{next_entity_id_++};
    c.members.push_back(Entity{id, *center});
    refresh_occupancy(grid_.index_of(s));
    source_->note_accepted();
    events_.injected.emplace_back(s, id);
    if (metrics_) ++round_counts_.injections;
  }
}

bool System::injection_is_safe(CellId id, Vec2 center) const {
  const Params& p = config_.params;
  const double half = p.entity_length() / 2.0;
  const double d = p.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);

  // Invariant 1 bounds: the entity must lie wholly inside the cell.
  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;

  // Gap requirement (Safe_{i,j}): spacing ≥ d along some axis vs. every
  // existing member.
  const CellState& c = cells_[grid_.index_of(id)];
  for (const Entity& q : c.members) {
    if (std::abs(center.x - q.center.x) < d &&
        std::abs(center.y - q.center.y) < d)
      return false;
  }

  // Fairness guard (assumption (b) of §III-B): never fill the entry strip
  // toward the neighbor currently being served, so injection cannot
  // perpetually re-block it. The strip predicate is a conjunction over
  // entities, so clear(members ∪ {new}) ≡ clear(members) ∧ clear({new})
  // — probing the new entity alone avoids materializing the union.
  if (c.token.has_value()) {
    const bool was_clear = entry_strip_clear(id, *c.token, c.members, p);
    if (was_clear) {
      const Entity probe{EntityId{~0ULL}, center};
      const bool probe_clear = entry_strip_clear(
          id, *c.token, std::span<const Entity>(&probe, 1), p);
      if (!probe_clear) return false;
    }
  }
  return true;
}

EntityId System::seed_entity(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS_MSG(injection_is_safe(id, center),
                 "seed_entity: placement violates the gap requirement or "
                 "Invariant-1 bounds");
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(Entity{eid, center});
  refresh_occupancy(grid_.index_of(id));
  return eid;
}

EntityId System::seed_entity_unchecked(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(Entity{eid, center});
  refresh_occupancy(grid_.index_of(id));
  return eid;
}

void System::corrupt_control_state(CellId id, Dist dist, OptCellId next,
                                   OptCellId token, OptCellId signal) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  c.dist = dist;
  c.next = next;
  c.token = token;
  c.signal = signal;
  note_control_mutation(grid_.index_of(id));
}

}  // namespace cellflow
