#include "core/system.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/signal.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cellflow {

namespace {

// Reporting-only clock difference in whole ns, clamped at zero.
std::uint64_t span_ns(obs::PhaseProfiler::Clock::time_point a,
                      obs::PhaseProfiler::Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

ParallelPolicy parallel_policy_from_env() {
  const char* raw = std::getenv("CELLFLOW_THREADS");
  if (raw == nullptr || *raw == '\0') return ParallelPolicy::serial();
  char* end = nullptr;
  const long n = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0 || n > 1024)
    throw std::runtime_error(
        std::string("CELLFLOW_THREADS: expected an integer in [0, 1024], "
                    "got '") +
        raw + "'");
  return n == 0 ? ParallelPolicy::serial()
                : ParallelPolicy::parallel(static_cast<int>(n));
}

void canonical_transfer_order(const Grid& grid,
                              std::vector<PendingTransfer>& transfers) {
  const auto by_origin = [&grid](const PendingTransfer& a,
                                 const PendingTransfer& b) {
    return grid.index_of(a.from) < grid.index_of(b.from);
  };
  // The engines produce this order by construction (ascending shards,
  // in-order within each), so the common case is a linear verification
  // pass; a stable sort of an already-sorted sequence is the identity,
  // so skipping it cannot change the result — it only skips the sort's
  // temporary-buffer allocation on the hot path.
  if (std::is_sorted(transfers.begin(), transfers.end(), by_origin)) return;
  std::stable_sort(transfers.begin(), transfers.end(), by_origin);
}

System::System(SystemConfig config, std::unique_ptr<ChoosePolicy> choose,
               std::unique_ptr<SourcePolicy> source)
    : config_(std::move(config)),
      grid_(config_.side),
      cells_(grid_.cell_count()),
      choose_(choose ? std::move(choose)
                     : std::make_unique<RoundRobinChoose>()),
      source_(source ? std::move(source)
                     : std::make_unique<EntryEdgeSource>()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  // Canonical injection order: sources visit in cell-id order no matter
  // how the configuration listed them (mirrored by MessageSystem).
  std::sort(config_.sources.begin(), config_.sources.end());
  config_.sources.erase(
      std::unique(config_.sources.begin(), config_.sources.end()),
      config_.sources.end());
  // Initial state (Figure 3): everything ⊥/∞/empty except the target's
  // distance, which anchors the routing computation at 0.
  cells_[grid_.index_of(config_.target)].dist = Dist::zero();
  dist_snapshot_.resize(cells_.size());
  // Flatten the (immutable) grid topology into the dense tables the
  // phase loops index directly — see the member comments in system.hpp.
  nbr_idx_.resize(cells_.size());
  cell_id_.resize(cells_.size());
  feed_.assign(cells_.size(), kNoNbr);
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    const CellId id = grid_.id_of(k);
    cell_id_[k] = id;
    for (std::size_t d = 0; d < kAllDirections.size(); ++d) {
      const auto nb = grid_.neighbor(id, kAllDirections[d]);
      nbr_idx_[k][d] =
          nb ? static_cast<std::uint32_t>(grid_.index_of(*nb)) : kNoNbr;
    }
  }
  rebuild_active_sets();
  set_parallel_policy(parallel_policy_from_env());
}

void System::set_round_scheduler(RoundScheduler scheduler) {
  if (scheduler_ == scheduler) return;
  scheduler_ = scheduler;
  // Exhaustive rounds maintain none of the scheduler state, so entering
  // kActiveSet must re-derive all of it from the current protocol state.
  if (scheduler_ == RoundScheduler::kActiveSet) rebuild_active_sets();
}

void System::rebuild_active_sets() {
  route_stamp_.assign(cells_.size(), round_);
  occ_b_.assign(cells_.size(), 0);
  occ_refs_.assign(cells_.size(), 0);
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    dist_snapshot_[k] = cells_[k].dist;
    if (occupied(cells_[k])) apply_occupancy_flip(k);
  }
}

void System::arm_route_neighborhood(std::size_t k, std::uint64_t upto) {
  route_stamp_[k] = std::max(route_stamp_[k], upto);
  for (const std::uint32_t nk : nbr_idx_[k]) {
    if (nk == kNoNbr) continue;
    std::uint64_t& stamp = route_stamp_[nk];
    stamp = std::max(stamp, upto);
  }
}

void System::apply_occupancy_flip(std::size_t k) {
  occ_b_[k] ^= 1u;
  const int delta = occ_b_[k] != 0 ? 1 : -1;
  occ_refs_[k] = static_cast<std::uint8_t>(occ_refs_[k] + delta);
  for (const std::uint32_t nk : nbr_idx_[k]) {
    if (nk == kNoNbr) continue;
    occ_refs_[nk] = static_cast<std::uint8_t>(occ_refs_[nk] + delta);
  }
}

void System::refresh_occupancy(std::size_t k) {
  if (occupied(cells_[k]) != (occ_b_[k] != 0)) apply_occupancy_flip(k);
}

void System::note_control_mutation(std::size_t k) {
  // The exhaustive engine re-reads every dist each round and rewrites
  // every cell's control state; an external mutation therefore forces
  // the active scheduler to (a) keep the snapshot invariant, (b) rerun
  // Route over the affected neighborhood next round, and (c) refresh
  // the occupancy of the mutated cell.
  dist_snapshot_[k] = cells_[k].dist;
  arm_route_neighborhood(k, round_);
  refresh_occupancy(k);
}

void System::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry != nullptr
                 ? std::make_unique<obs::ProtocolMetrics>(*registry, "shared")
                 : nullptr;
  round_counts_.reset();
}

void System::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  sync_pool_timing();
}

void System::set_telemetry(obs::EngineTelemetry* telemetry) {
  telemetry_ = telemetry;
  sync_pool_timing();
}

void System::sync_pool_timing() {
  if (!pool_) return;
  const bool want = profiler_ != nullptr || telemetry_ != nullptr;
  if (want == pool_->timing_enabled()) return;
  pool_->set_timing(want);
  pool_->reset_timings();
  if (want)
    batch_samples_.reserve(static_cast<std::size_t>(pool_->thread_count()));
}

void System::note_phase_timing(int phase_idx, ThreadPool* pool,
                               std::size_t used) {
  // `pooled`: the partition actually ran on workers (parallel_for_shards
  // falls back to the caller for single-shard partitions).
  const bool pooled = pool != nullptr && used > 1;
  if (telemetry_ != nullptr) {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (std::size_t s = 0; s < used; ++s) {
      const std::uint64_t v = scratch_.shards[s].span_ns;
      sum += v;
      if (v > max) max = v;
    }
    round_timing_.imbalance[static_cast<std::size_t>(phase_idx)] =
        (used > 1 && sum > 0) ? static_cast<double>(max) *
                                    static_cast<double>(used) /
                                    static_cast<double>(sum)
                              : 1.0;
    // A phase that ran on the calling thread needs no attribution here:
    // update()'s timed() wrapper counts its whole wall span as serial
    // work (merges and glue included).
  }
  if (pooled && (telemetry_ != nullptr || profiler_ != nullptr)) {
    pool->last_batch_samples(batch_samples_);
    const auto dispatched = pool->last_batch_dispatch();
    const auto done = pool->last_batch_done();
    if (telemetry_ != nullptr && !batch_samples_.empty()) {
      // Wall-equivalent decomposition of the batch that just ran: each
      // participating worker's dispatch+busy+barrier chain spans
      // dispatched->done exactly, so the participant-normalized sums
      // partition the batch wall (see RoundTiming). busy (wake to own
      // last task end) rather than task time, so queue-claim waits and
      // OS preemption gaps inside the batch stay accounted.
      std::uint64_t disp = 0;
      std::uint64_t busy = 0;
      std::uint64_t barrier = 0;
      std::uint64_t task = 0;
      for (const ThreadPool::BatchWorkerSample& w : batch_samples_) {
        disp += span_ns(dispatched, w.wake);
        busy += span_ns(w.wake, w.last_task_end);
        barrier += span_ns(w.last_task_end, done);
        task += w.work_ns;
      }
      const auto n = static_cast<std::uint64_t>(batch_samples_.size());
      round_timing_.pool_dispatch_ns += disp / n;
      round_timing_.pool_busy_ns += busy / n;
      round_timing_.pool_barrier_ns += barrier / n;
      round_timing_.pool_task_ns += task;
      // Caller-resume latency: the last worker stamped `done`, but this
      // thread only continues once the OS reschedules it — on a
      // contended machine that gap is real round time, billed as
      // dispatch (both are scheduling, not protocol work).
      round_timing_.pool_resume_ns +=
          span_ns(done, obs::PhaseProfiler::Clock::now());
    }
    if (profiler_ != nullptr) {
      // Per-worker spans of the batch that just ran: dispatch latency,
      // the task-executing envelope, and the barrier stall — these
      // render as per-worker tracks in the Chrome-trace export, so
      // Perfetto shows exactly which worker idled at which barrier.
      for (const ThreadPool::BatchWorkerSample& w : batch_samples_) {
        profiler_->record_worker("dispatch", round_, w.worker, dispatched,
                                 w.wake);
        profiler_->record_worker("work", round_, w.worker, w.first_task_start,
                                 w.last_task_end);
        profiler_->record_worker("barrier_wait", round_, w.worker,
                                 w.last_task_end, done);
      }
    }
  }
}

void System::set_parallel_policy(const ParallelPolicy& policy) {
  CF_EXPECTS_MSG(policy.num_threads >= 1 && policy.num_threads <= 1024,
                 "ParallelPolicy::num_threads out of [1, 1024]");
  parallel_ = policy;
  if (policy.mode == ParallelPolicy::Mode::kParallel) {
    if (!pool_ || pool_->thread_count() != policy.num_threads) {
      pool_ = std::make_unique<ThreadPool>(policy.num_threads);
      sync_pool_timing();
    }
  } else {
    pool_.reset();
  }
  // One scratch slot per shard the engine can produce (the serial loop
  // and a pinned-serial Signal phase use slot 0 only). Shrinking on a
  // narrower policy would free warmed buffers for nothing, so don't.
  const auto width =
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1;
  if (scratch_.shards.size() < width) scratch_.shards.resize(width);
}

std::size_t System::entity_count() const noexcept {
  std::size_t n = 0;
  for (const CellState& c : cells_) n += c.members.size();
  return n;
}

CellMask System::alive_mask() const {
  CellMask m(grid_);
  for (std::size_t k = 0; k < cells_.size(); ++k)
    if (!cells_[k].failed) m.set(grid_.id_of(k));
  return m;
}

std::vector<Dist> System::reference_distances() const {
  return path_distances(grid_, alive_mask(), config_.target);
}

CellMask System::tc_mask() const {
  return target_connected(grid_, alive_mask(), config_.target);
}

void System::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  if (!c.failed && metrics_) metrics_->add_failure();  // idempotent action
  c.failed = true;
  c.dist = Dist::infinity();  // neighbors stop hearing from it
  c.next = std::nullopt;
  // "A failed cell … never communicates": in the message-passing reading,
  // neighbors read no grant from it, so its shared signal must present
  // as ⊥. The private token and NEPrev are simply lost.
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
  note_control_mutation(grid_.index_of(id));
}

void System::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  if (!c.failed) return;
  if (metrics_) metrics_->add_recovery();
  c.failed = false;
  // Reset to initial protocol state (§IV); Route repairs dist/next within
  // O(N²) rounds (Corollary 7). The target re-anchors at 0 so routing can
  // re-stabilize toward it.
  c.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  c.next = std::nullopt;
  c.token = std::nullopt;
  c.signal = std::nullopt;
  c.ne_prev.clear();
  // Members are retained: entities that were frozen on the failed cell
  // resume their journey.
  note_control_mutation(grid_.index_of(id));
}

const RoundEvents& System::update() {
  events_.clear();
  events_.round = round_;

  // Profiling/telemetry wrap (they never feed back into the round) and
  // metrics flush once per round, after the phases — see set_metrics().
  using ProfClock = obs::PhaseProfiler::Clock;
  const bool track = profiler_ != nullptr || telemetry_ != nullptr;
  const auto t_round = track ? ProfClock::now() : ProfClock::time_point{};
  if (telemetry_ != nullptr) round_timing_.reset();
  // `count_serial`: the phase will run entirely on the calling thread,
  // so its whole wall span — body, merges, glue — is telemetry "work"
  // (pooled phases decompose themselves via note_phase_timing instead).
  // Whether a phase pools is decided here exactly the way
  // parallel_for_shards decides it: a pool exists and the partition
  // yields more than one shard; Signal additionally pins serial under a
  // stateful choose policy.
  const bool pooled =
      pool_ != nullptr &&
      shard_count(cells_.size(), pool_->thread_count()) > 1;
  const bool signal_pooled = pooled && choose_->concurrent_safe();
  const auto timed = [this, track](const char* name, bool count_serial,
                                   auto&& phase) {
    if (!track) {
      phase();
      return;
    }
    const auto t0 = ProfClock::now();
    phase();
    const auto t1 = ProfClock::now();
    if (profiler_ != nullptr) profiler_->record(name, round_, -1, t0, t1);
    if (count_serial && telemetry_ != nullptr)
      round_timing_.serial_work_ns += span_ns(t0, t1);
  };

  timed("route", !pooled, [this] { run_route_phase(); });
  if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterRoute);
  timed("signal", !signal_pooled, [this] { run_signal_phase(); });
  if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterSignal);
  timed("move", !pooled, [this] { run_move_phase(); });
  if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterMove);
  timed("inject", true, [this] { run_inject_phase(); });
  if (phase_hook_) phase_hook_(*this, UpdatePhase::kAfterInject);

  const auto t_end = track ? ProfClock::now() : ProfClock::time_point{};
  if (profiler_ != nullptr)
    profiler_->record("round", round_, -1, t_round, t_end);
  if (telemetry_ != nullptr) {
    obs::RoundBreakdown b;
    b.round_ns = span_ns(t_round, t_end);
    b.workers = pool_ ? pool_->thread_count() : 1;
    b.work_ns = round_timing_.serial_work_ns + round_timing_.pool_busy_ns;
    b.barrier_wait_ns = round_timing_.pool_barrier_ns;
    b.dispatch_ns =
        round_timing_.pool_dispatch_ns + round_timing_.pool_resume_ns;
    b.merge_ns = round_timing_.merge_ns;
    b.imbalance_route = round_timing_.imbalance[0];
    b.imbalance_signal = round_timing_.imbalance[1];
    b.imbalance_move = round_timing_.imbalance[2];
    if (pool_ && b.round_ns > 0) {
      // Utilization: summed task-body time over the theoretical
      // width × wall budget (busy would overstate it on a preempted
      // machine — preemption gaps are not useful parallelism).
      b.parallel_work_fraction =
          static_cast<double>(round_timing_.pool_task_ns) /
          (static_cast<double>(pool_->thread_count()) *
           static_cast<double>(b.round_ns));
    }
    telemetry_->record_round(b);
    if (profiler_ != nullptr) {
      profiler_->record_counter("imbalance_route", t_end, b.imbalance_route);
      profiler_->record_counter("imbalance_signal", t_end, b.imbalance_signal);
      profiler_->record_counter("imbalance_move", t_end, b.imbalance_move);
      profiler_->record_counter("parallel_work_fraction", t_end,
                                b.parallel_work_fraction);
    }
  }
  if (metrics_) {
    metrics_->add(round_counts_);
    metrics_->add_round();
    round_counts_.reset();
  }
  ++round_;
  return events_;
}

void System::run_route_phase() {
  // Phase-parallel Bellman–Ford: every cell reads its neighbors'
  // *previous-round* dist via dist_snapshot_ (Figure 4 semantics). The
  // snapshot makes the per-cell step a pure function of frozen data;
  // each cell writes only its own dist/next, so the loop shards freely.
  //
  // kExhaustive recopies the snapshot and visits every cell; kActiveSet
  // keeps the snapshot fresh incrementally (only cells whose dist
  // changed need resyncing) and visits only armed cells — a cell is
  // armed exactly when a neighborhood dist changed last round or an
  // external mutation touched it, which is precisely when route_step
  // could produce something new. Skipped live cells still tally their
  // would-be relaxations so the ProtocolCounts contract (bit-identical
  // counts across engines) holds.
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  if (!active) {
    for (std::size_t k = 0; k < cells_.size(); ++k)
      dist_snapshot_[k] = cells_[k].dist;
  }

  const auto nshards =
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1;
  const std::size_t used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool pooled = pool_ != nullptr && used > 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();
  // Per-shard spans feed the profiler and the imbalance statistic; a
  // serial phase needs neither (imbalance is 1.0 and timed() already
  // covers the wall), so telemetry alone reads no clocks here.
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    ShardScratch& sc = scratch_.shards[s];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    if (!active) {
      for (std::size_t k = r.begin; k < r.end; ++k)
        route_cell(k, pc, nullptr);
      sc.visited = r.end - r.begin;
    } else {
      for (std::size_t k = r.begin; k < r.end; ++k) {
        if (route_stamp_[k] >= round_) {
          route_cell(k, pc, &sc.changed);
          ++sc.visited;
        } else if (pc != nullptr && !cells_[k].failed) {
          // The exhaustive loop would have relaxed over every
          // lattice neighbor (and changed nothing — that is what
          // quiescence means); the target tallies nothing once
          // pinned at 0.
          if (cell_id_[k] != config_.target) {
            for (const std::uint32_t nk : nbr_idx_[k])
              if (nk != kNoNbr) ++pc->route_relaxations;
          }
        }
      }
    }
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      sc.span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("route", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool_.get(), cells_.size(), body);
  note_phase_timing(0, pool_.get(), used);
  // Merge is a separate telemetry component only when the phase pooled
  // (post-barrier serial section); in a serial phase it is simply part
  // of the phase's timed() work span.
  const bool merge_timing = telemetry_ != nullptr && pooled;
  const auto merge_t0 = merge_timing
                            ? obs::PhaseProfiler::Clock::now()
                            : obs::PhaseProfiler::Clock::time_point{};
  // Counter determinism: shard tallies merge in ascending shard order,
  // the same discipline as the event buffers.
  sched_stats_.route_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    if (metrics_) round_counts_.merge(scratch_.shards[s].counts);
    sched_stats_.route_cells += scratch_.shards[s].visited;
  }

  if (active) {
    // Post-barrier merge, shard order: sync the snapshot for changed
    // cells and arm their readers (the lattice neighbors) for next
    // round. A cell's own Route output depends only on its neighbors'
    // dists, so its own change does not re-arm itself.
    for (std::size_t s = 0; s < nshards; ++s) {
      for (const std::size_t k : scratch_.shards[s].changed) {
        dist_snapshot_[k] = cells_[k].dist;
        for (const std::uint32_t nk : nbr_idx_[k]) {
          if (nk == kNoNbr) continue;
          std::uint64_t& stamp = route_stamp_[nk];
          stamp = std::max(stamp, round_ + 1);
        }
      }
    }
  }
  if (merge_timing)
    round_timing_.merge_ns +=
        span_ns(merge_t0, obs::PhaseProfiler::Clock::now());
}

void System::route_cell(std::size_t k, obs::ProtocolCounts* counts,
                        std::vector<std::size_t>* changed_out) {
  CellState& c = cells_[k];
  const CellId id = cell_id_[k];
  if (c.failed) {
    // A failed cell feeds nobody (neighbors read signal/dist as if it
    // were absent), so the exhaustive Signal scan must see kNoNbr here.
    feed_[k] = kNoNbr;
    return;
  }
  if (id == config_.target) {
    // The target anchors routing: dist pinned to 0, next to ⊥. Pinning
    // every round (rather than only at init/recover) also washes out
    // adversarial corruption of the target's control state.
    if (c.dist != Dist::zero()) {
      if (counts != nullptr) ++counts->route_dist_changes;
      if (changed_out != nullptr) changed_out->push_back(k);
    }
    c.dist = Dist::zero();
    c.next = std::nullopt;
    feed_[k] = kNoNbr;  // next = ⊥: the target never feeds a neighbor
    return;
  }

  const std::array<std::uint32_t, 4>& nbr = nbr_idx_[k];
  NeighborDist nds[4];
  std::uint32_t nks[4];
  std::size_t n = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    const std::uint32_t nk = nbr[d];
    if (nk == kNoNbr) continue;
    nks[n] = nk;
    nds[n++] = NeighborDist{cell_id_[nk], dist_snapshot_[nk]};
  }
  const RouteResult r = route_step(std::span<const NeighborDist>(nds, n));
  if (counts != nullptr) {
    counts->route_relaxations += n;
    if (c.dist != r.dist) ++counts->route_dist_changes;
  }
  // Only a *dist* change can perturb other cells (Route reads nothing
  // else); a next-only change re-routes this cell's own movers but
  // leaves every Route input, and hence the arming set, untouched.
  if (changed_out != nullptr && c.dist != r.dist) changed_out->push_back(k);
  c.dist = r.dist;
  c.next = r.next;
  // Feeder snapshot for the exhaustive Signal scan (header comment on
  // feed_): next is one of the gathered neighbors, so recover its dense
  // index from the gather instead of re-deriving it through the grid.
  feed_[k] = kNoNbr;
  if (r.next.has_value() && !c.members.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (nds[i].id == *r.next) {
        feed_[k] = nks[i];
        break;
      }
    }
  }
}

void System::run_signal_phase() {
  // Signal reads neighbors' fresh `next` (phase 1 output) and pre-Move
  // Members; it writes only its own ne_prev/token/signal — disjoint
  // struct fields, so concurrent cells never touch the same memory. A
  // stateful choose policy (RandomChoose) must observe the serial call
  // sequence, so it pins this phase to the in-order loop; the results
  // are identical either way for concurrent-safe (pure) policies.
  ThreadPool* pool = choose_->concurrent_safe() ? pool_.get() : nullptr;
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  const auto nshards =
      pool ? static_cast<std::size_t>(pool->thread_count()) : 1;
  const std::size_t used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool pooled = pool != nullptr && used > 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    ShardScratch& sc = scratch_.shards[s];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    if (!active) {
      for (std::size_t k = r.begin; k < r.end; ++k)
        signal_cell(k, sc.blocked, pc, nullptr);
      sc.visited = r.end - r.begin;
    } else {
      for (std::size_t k = r.begin; k < r.end; ++k) {
        // occ_refs_ is frozen for the duration of the phase (flips
        // buffer per shard and apply at the barrier), so every
        // engine takes identical skip decisions. A cell with an
        // all-unoccupied closed neighborhood maps (⊥,⊥,[]) to
        // (⊥,⊥,[]) without consulting choose_, so skipping it is
        // exact — it only owes the exhaustive loop's ne_prev_sizes
        // tally for live cells.
        if (occ_refs_[k] > 0) {
          signal_cell(k, sc.blocked, pc, &sc.flips);
          ++sc.visited;
        } else if (pc != nullptr && !cells_[k].failed) {
          ++pc->ne_prev_sizes[0];
        }
      }
    }
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      sc.span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("signal", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool, cells_.size(), body);
  note_phase_timing(1, pool, used);
  const bool merge_timing = telemetry_ != nullptr && pooled;
  const auto merge_t0 = merge_timing
                            ? obs::PhaseProfiler::Clock::now()
                            : obs::PhaseProfiler::Clock::time_point{};
  // Shards cover ascending cell ranges, so concatenating in shard order
  // reproduces the serial loop's blocked-event order exactly.
  sched_stats_.signal_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.blocked.insert(events_.blocked.end(), sc.blocked.begin(),
                           sc.blocked.end());
    if (metrics_) round_counts_.merge(sc.counts);
    sched_stats_.signal_cells += sc.visited;
  }
  // Occupancy flips apply at the barrier, in shard order, so the Move
  // phase's activity reads see the post-Signal occupancy on every
  // engine (a fresh grant makes its destination occupied, which is what
  // schedules the granted mover).
  for (std::size_t s = 0; s < nshards; ++s)
    for (const std::size_t k : scratch_.shards[s].flips)
      apply_occupancy_flip(k);
  if (merge_timing)
    round_timing_.merge_ns +=
        span_ns(merge_t0, obs::PhaseProfiler::Clock::now());
}

void System::signal_cell(std::size_t k, std::vector<CellId>& blocked_out,
                         obs::ProtocolCounts* counts,
                         std::vector<std::size_t>* flip_out) {
  CellState& c = cells_[k];
  if (c.failed) return;
  const CellId id = grid_.id_of(k);

  SignalInputs in;
  in.self = id;
  in.members = c.members;
  in.token = c.token;
  const std::array<std::uint32_t, 4>& nbr = nbr_idx_[k];
  if (scheduler_ != RoundScheduler::kActiveSet) {
    // Exhaustive: Route refreshed feed_ for every cell this round, so
    // "does this neighbor feed me?" is one dense 4-byte load per
    // direction instead of a gather over four scattered CellStates.
    for (const std::uint32_t nk : nbr) {
      if (nk != kNoNbr && feed_[nk] == k) in.ne_prev.push_back(cell_id_[nk]);
    }
  } else {
    // Active-set: Route skips quiescent cells, so feed_ may be stale —
    // read the neighbors directly (see the feed_ member comment).
    for (const std::uint32_t nk : nbr) {
      if (nk == kNoNbr) continue;
      const CellState& nc = cells_[nk];
      if (nc.failed) continue;  // a failed cell never communicates
      if (nc.next == OptCellId{id} && nc.has_entities())
        in.ne_prev.push_back(cell_id_[nk]);
    }
  }
  std::sort(in.ne_prev.begin(), in.ne_prev.end());

  const bool had_candidate = in.token.has_value() || !in.ne_prev.empty();
  const std::size_t ne_prev_size = in.ne_prev.size();
  const OptCellId old_token = c.token;
  SignalResult r =
      config_.signal_rule == SignalRule::kBlocking
          ? signal_step(std::move(in), config_.params, *choose_)
          : signal_step_always_grant(std::move(in), *choose_);
  if (had_candidate && !r.signal.has_value()) blocked_out.push_back(id);
  if (counts != nullptr) {
    ++counts->ne_prev_sizes[std::min<std::size_t>(
        ne_prev_size, counts->ne_prev_sizes.size() - 1)];
    if (r.signal.has_value()) ++counts->signal_grants;
    if (had_candidate && !r.signal.has_value()) ++counts->signal_blocks;
    if (old_token.has_value() && r.token != old_token)
      ++counts->signal_token_rotations;
  }
  c.signal = r.signal;
  c.token = r.token;
  c.ne_prev = std::move(r.ne_prev);
  if (flip_out != nullptr && occupied(c) != (occ_b_[k] != 0))
    flip_out->push_back(k);
}

void System::run_move_phase() {
  // All cells decide and move simultaneously (Figure 6 guard:
  // signal_{next_{i,j}} = ⟨i,j⟩), so: first apply every cell's own
  // displacement and pull out the boundary-crossers, then deliver the
  // crossers. The decision step reads only the destination's signal
  // (frozen since phase 2) and mutates only the cell's own Members, so
  // it shards freely; delivery happens after the barrier, in canonical
  // order, because appends into a shared destination determine Members
  // order and hence downstream traces.
  const bool active = scheduler_ == RoundScheduler::kActiveSet;
  const auto nshards =
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1;
  const std::size_t used =
      shard_count(cells_.size(), static_cast<int>(nshards));
  const bool pooled = pool_ != nullptr && used > 1;
  for (std::size_t s = 0; s < nshards; ++s)
    scratch_.shards[s].begin_phase();
  const bool shard_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto body = [&](std::size_t s, ShardRange r) {
    const auto t0 = shard_timing ? obs::PhaseProfiler::Clock::now()
                                 : obs::PhaseProfiler::Clock::time_point{};
    ShardScratch& sc = scratch_.shards[s];
    obs::ProtocolCounts* pc = metrics_ ? &sc.counts : nullptr;
    if (!active) {
      for (std::size_t k = r.begin; k < r.end; ++k)
        move_cell(k, sc.moved, sc.pending, sc.crossed, pc);
      sc.visited = r.end - r.begin;
    } else {
      for (std::size_t k = r.begin; k < r.end; ++k) {
        // An unoccupied cell with an unoccupied closed neighborhood
        // cannot move: it has no members to relocate or compact,
        // and a grant in its favor would make its destination (a
        // lattice neighbor, post-Route) occupied — so move_cell
        // would be a no-op that tallies nothing. occ_refs_ already
        // reflects this round's Signal output (flips merged at the
        // barrier).
        if (occ_refs_[k] > 0) {
          move_cell(k, sc.moved, sc.pending, sc.crossed, pc);
          ++sc.visited;
        }
      }
    }
    if (shard_timing) {
      const auto t1 = obs::PhaseProfiler::Clock::now();
      sc.span_ns = span_ns(t0, t1);
      if (profiler_ != nullptr)
        profiler_->record("move", round_, static_cast<int>(s), t0, t1);
    }
  };
  parallel_for_shards(pool_.get(), cells_.size(), body);
  note_phase_timing(2, pool_.get(), used);

  sched_stats_.move_cells = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardScratch& sc = scratch_.shards[s];
    events_.moved.insert(events_.moved.end(), sc.moved.begin(),
                         sc.moved.end());
    if (metrics_) round_counts_.merge(sc.counts);
    sched_stats_.move_cells += sc.visited;
  }

  const bool merge_timing =
      profiler_ != nullptr || (telemetry_ != nullptr && pooled);
  const auto merge_t0 = merge_timing ? obs::PhaseProfiler::Clock::now()
                                     : obs::PhaseProfiler::Clock::time_point{};
  std::vector<PendingTransfer>& transfers = scratch_.transfers;
  transfers.clear();
  for (std::size_t s = 0; s < nshards; ++s) {
    std::vector<PendingTransfer>& p = scratch_.shards[s].pending;
    transfers.insert(transfers.end(), std::make_move_iterator(p.begin()),
                     std::make_move_iterator(p.end()));
  }
  // Already canonical by construction (ascending shards, in-order within
  // each); enforce it anyway so no engine can drift.
  canonical_transfer_order(grid_, transfers);

  for (PendingTransfer& t : transfers) {
    TransferEvent ev{t.entity.id, t.from, t.to, /*consumed=*/false};
    if (t.to == config_.target) {
      ev.consumed = true;
      ++total_arrivals_;
      ++events_.arrivals;
      if (metrics_) ++round_counts_.consumptions;
      // Figure 6 line 11: the entity is not added to any cell — consumed.
    } else {
      cells_[grid_.index_of(t.to)].members.push_back(t.entity);
    }
    events_.transfers.push_back(ev);
  }
  if (active) {
    // Membership only changes at cells that applied a movement (shrink)
    // or received a delivery (growth); both lists are already in
    // canonical order. refresh_occupancy is idempotent, so overlap
    // (a cell that both moved and received) is harmless.
    for (const CellId id : events_.moved)
      refresh_occupancy(grid_.index_of(id));
    for (const TransferEvent& t : events_.transfers)
      if (!t.consumed) refresh_occupancy(grid_.index_of(t.to));
  }
  if (merge_timing) {
    const auto merge_t1 = obs::PhaseProfiler::Clock::now();
    if (profiler_ != nullptr)
      profiler_->record("merge", round_, -1, merge_t0, merge_t1);
    if (telemetry_ != nullptr && pooled)
      round_timing_.merge_ns += span_ns(merge_t0, merge_t1);
  }
}

void System::move_cell(std::size_t k, std::vector<CellId>& moved_out,
                       std::vector<PendingTransfer>& pending_out,
                       std::vector<Entity>& crossed_scratch,
                       obs::ProtocolCounts* counts) {
  CellState& c = cells_[k];
  if (c.failed || !c.next.has_value()) return;
  const CellId id = grid_.id_of(k);
  const CellId dest = *c.next;
  const CellState& dc = cells_[grid_.index_of(dest)];
  const bool permitted = dc.signal == OptCellId{id};

  // The in-place steps partition c.members directly (stayers keep their
  // order, crossers land in the shard's crossing scratch) — no per-cell
  // staying/crossed vectors; see move.hpp.
  crossed_scratch.clear();
  if (config_.movement_rule == MovementRule::kCoupled) {
    if (!permitted) return;  // Figure 6: move only with permission
    moved_out.push_back(id);
    if (counts != nullptr) ++counts->moves;
    move_step_inplace(id, dest, c.members, crossed_scratch, config_.params);
  } else {
    // §V relaxed coupling: compact every round; cross only when
    // permitted; never compact into our own promised strip.
    if (c.members.empty()) return;
    if (permitted) {
      moved_out.push_back(id);
      if (counts != nullptr) ++counts->moves;
    }
    CompactionContext ctx;
    ctx.may_cross = permitted;
    if (c.signal.has_value())
      ctx.promised_strip = grid_.direction_between(id, *c.signal);
    compact_move_step_inplace(id, dest, c.members, crossed_scratch,
                              config_.params, ctx);
  }
  if (counts != nullptr) counts->transfers += crossed_scratch.size();
  for (Entity& e : crossed_scratch)
    pending_out.push_back(PendingTransfer{e, id, dest});
}

void System::run_inject_phase() {
  for (const CellId s : config_.sources) {
    CellState& c = cells_[grid_.index_of(s)];
    if (c.failed) continue;
    const auto center = source_->propose(grid_, config_.params, s, c);
    if (!center.has_value()) continue;
    if (!injection_is_safe(s, *center)) {
      if (metrics_) ++round_counts_.blocked_injections;
      continue;
    }
    const EntityId id{next_entity_id_++};
    c.members.push_back(Entity{id, *center});
    refresh_occupancy(grid_.index_of(s));
    source_->note_accepted();
    events_.injected.emplace_back(s, id);
    if (metrics_) ++round_counts_.injections;
  }
}

bool System::injection_is_safe(CellId id, Vec2 center) const {
  const Params& p = config_.params;
  const double half = p.entity_length() / 2.0;
  const double d = p.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);

  // Invariant 1 bounds: the entity must lie wholly inside the cell.
  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;

  // Gap requirement (Safe_{i,j}): spacing ≥ d along some axis vs. every
  // existing member.
  const CellState& c = cells_[grid_.index_of(id)];
  for (const Entity& q : c.members) {
    if (std::abs(center.x - q.center.x) < d &&
        std::abs(center.y - q.center.y) < d)
      return false;
  }

  // Fairness guard (assumption (b) of §III-B): never fill the entry strip
  // toward the neighbor currently being served, so injection cannot
  // perpetually re-block it. The strip predicate is a conjunction over
  // entities, so clear(members ∪ {new}) ≡ clear(members) ∧ clear({new})
  // — probing the new entity alone avoids materializing the union.
  if (c.token.has_value()) {
    const bool was_clear = entry_strip_clear(id, *c.token, c.members, p);
    if (was_clear) {
      const Entity probe{EntityId{~0ULL}, center};
      const bool probe_clear = entry_strip_clear(
          id, *c.token, std::span<const Entity>(&probe, 1), p);
      if (!probe_clear) return false;
    }
  }
  return true;
}

EntityId System::seed_entity(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS_MSG(injection_is_safe(id, center),
                 "seed_entity: placement violates the gap requirement or "
                 "Invariant-1 bounds");
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(Entity{eid, center});
  refresh_occupancy(grid_.index_of(id));
  return eid;
}

EntityId System::seed_entity_unchecked(CellId id, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  const EntityId eid{next_entity_id_++};
  cells_[grid_.index_of(id)].members.push_back(Entity{eid, center});
  refresh_occupancy(grid_.index_of(id));
  return eid;
}

void System::corrupt_control_state(CellId id, Dist dist, OptCellId next,
                                   OptCellId token, OptCellId signal) {
  CF_EXPECTS(grid_.contains(id));
  CellState& c = cells_[grid_.index_of(id)];
  c.dist = dist;
  c.next = next;
  c.token = token;
  c.signal = signal;
  note_control_mutation(grid_.index_of(id));
}

}  // namespace cellflow
