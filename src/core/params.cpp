#include "core/params.hpp"

#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace cellflow {

Params::Params(double entity_length, double safety_gap, double velocity)
    : l_(entity_length), rs_(safety_gap), v_(velocity) {
  CF_EXPECTS_MSG(feasible(entity_length, safety_gap, velocity),
                 "parameters must satisfy 0 < v < l < 1, rs > 0, rs + l < 1");
}

bool Params::feasible(double entity_length, double safety_gap,
                      double velocity) noexcept {
  // §II-B states v < l, yet Figure 7 itself evaluates v = l = 0.25. The
  // proofs only need v ≤ l (Lemma 4's contradiction requires just
  // v < l + rs), so we accept the boundary case the paper's own
  // evaluation uses.
  return velocity > 0.0 && velocity <= entity_length && entity_length < 1.0 &&
         safety_gap > 0.0 && safety_gap + entity_length < 1.0;
}

std::string Params::to_string() const {
  std::ostringstream os;
  os << "Params{l=" << l_ << ", rs=" << rs_ << ", v=" << v_ << ", d=" << center_spacing() << '}';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Params& p) {
  return os << p.to_string();
}

}  // namespace cellflow
