// The Signal function (paper Figure 5) as a pure per-cell step.
//
// Signal is the heart of the protocol: it maintains safety by *blocking*
// (refusing entity transfers into a cell whose boundary strip is occupied)
// and progress by *fair token rotation* over the nonempty predecessors.
//
//   NEPrev := {⟨m,n⟩ ∈ Nbrs : next_{m,n} = ⟨i,j⟩ ∧ Members_{m,n} ≠ ∅}
//   if token = ⊥ then token := choose NEPrev
//   if (strip of depth d from the edge shared with token is entity-free)
//     signal := token
//     rotate token within NEPrev (away from the served neighbor if possible)
//   else
//     signal := ⊥ ; token unchanged   // keep serving the same neighbor —
//                                     // this retry is what makes blocking fair
//
// Note on the published pseudocode: Figure 5's fourth strip condition reads
// "token = i−1 ∧ py − l/2 ≥ j + d", an obvious typo for the *south*
// neighbor ⟨i,j−1⟩ (the first two cases cover east/west, the third north).
// We implement the evident intent; predicate H in §III-A confirms it.
#pragma once

#include <span>
#include <vector>

#include "core/cell_state.hpp"
#include "core/choose.hpp"
#include "core/params.hpp"
#include "grid/grid.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// True iff the strip of depth d = rs + l inward from the edge of cell
/// `self` shared with neighbor `toward` contains no part of any member's
/// safety region — Figure 5 lines 4–7, equivalently one disjunct of
/// predicate H (§III-A):
///   east  (⟨i+1,j⟩): ∀p. px + l/2 ≤ i+1−d
///   west  (⟨i−1,j⟩): ∀p. px − l/2 ≥ i+d
///   north (⟨i,j+1⟩): ∀p. py + l/2 ≤ j+1−d
///   south (⟨i,j−1⟩): ∀p. py − l/2 ≥ j+d
/// Precondition: `toward` is a lattice neighbor of `self`.
[[nodiscard]] bool entry_strip_clear(CellId self, CellId toward,
                                     std::span<const Entity> members,
                                     const Params& params);

struct SignalResult {
  OptCellId signal;
  OptCellId token;
  /// NEPrev as computed this round (sorted ascending by id). Inline
  /// storage (see cell_state.hpp's NeighborSet): moving it into the
  /// cell's ne_prev never allocates.
  NeighborSet ne_prev;
};

/// Inputs to one Signal step for cell `self`. `ne_prev` must already hold
/// the nonempty predecessors — the System computes it from neighbors'
/// freshly-routed `next` values and their (pre-Move) Members — sorted
/// ascending. `token` is the cell's previous token value.
struct SignalInputs {
  CellId self;
  std::span<const Entity> members;
  NeighborSet ne_prev;
  OptCellId token;
};

/// Executes Figure 5 for one non-faulty cell. `choose` realizes the two
/// nondeterministic choices (see choose.hpp).
[[nodiscard]] SignalResult signal_step(SignalInputs in, const Params& params,
                                       ChoosePolicy& choose);

/// The UNSAFE always-grant ablation (see SignalRule::kAlwaysGrant in
/// system.hpp): identical token bookkeeping, but the entry-strip check is
/// skipped — the token holder is always granted. Exists only to
/// demonstrate that the blocking rule is necessary for Theorem 5.
[[nodiscard]] SignalResult signal_step_always_grant(SignalInputs in,
                                                    ChoosePolicy& choose);

}  // namespace cellflow
