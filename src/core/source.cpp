#include "core/source.hpp"

#include "util/check.hpp"

namespace cellflow {

std::optional<Vec2> EntryEdgeSource::propose(const Grid& grid,
                                             const Params& params, CellId self,
                                             const CellState& state) {
  const double half = params.entity_length() / 2.0;
  const auto i = static_cast<double>(self.i);
  const auto j = static_cast<double>(self.j);
  if (!state.next.has_value()) {
    return Vec2{i + 0.5, j + 0.5};
  }
  // Flush against the edge opposite the travel direction, centered on the
  // perpendicular axis.
  const Direction toward = grid.direction_between(self, *state.next);
  switch (opposite(toward)) {
    case Direction::kEast: return Vec2{i + 1.0 - half, j + 0.5};
    case Direction::kWest: return Vec2{i + half, j + 0.5};
    case Direction::kNorth: return Vec2{i + 0.5, j + 1.0 - half};
    case Direction::kSouth: return Vec2{i + 0.5, j + half};
  }
  return std::nullopt;
}

RateLimitedSource::RateLimitedSource(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  CF_EXPECTS(rate >= 0.0 && rate <= 1.0);
}

std::optional<Vec2> RateLimitedSource::propose(const Grid& grid,
                                               const Params& params,
                                               CellId self,
                                               const CellState& state) {
  if (!rng_.bernoulli(rate_)) return std::nullopt;
  return inner_.propose(grid, params, self, state);
}

void RateLimitedSource::encode_state(std::vector<std::uint64_t>& out) const {
  const auto words = rng_.state();
  out.insert(out.end(), words.begin(), words.end());
}

bool RateLimitedSource::decode_state(std::span<const std::uint64_t> words) {
  if (words.size() != 4) return false;
  rng_.set_state({words[0], words[1], words[2], words[3]});
  return true;
}

std::optional<Vec2> BoundedSource::propose(const Grid& grid,
                                           const Params& params, CellId self,
                                           const CellState& state) {
  if (remaining_ == 0) return std::nullopt;
  return inner_.propose(grid, params, self, state);
}

void BoundedSource::note_accepted() noexcept {
  if (remaining_ > 0) --remaining_;
}

void BoundedSource::encode_state(std::vector<std::uint64_t>& out) const {
  out.push_back(remaining_);
}

bool BoundedSource::decode_state(std::span<const std::uint64_t> words) {
  if (words.size() != 1) return false;
  remaining_ = words[0];
  return true;
}

}  // namespace cellflow
