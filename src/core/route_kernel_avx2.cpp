// AVX2 body of route_min_keys_interior: four cells per iteration, one
// unaligned 4-lane load per neighbor direction. Compiled with -mavx2
// on x86-64 (see src/CMakeLists.txt); route_kernel.cpp only dispatches
// here after __builtin_cpu_supports("avx2") confirmed the CPU. The
// lane arithmetic mirrors route_pack_key exactly: a raw is "unusable"
// iff it is >= kRouteHugeDist unsigned, i.e. (as signed) negative or
// greater than kRouteHugeDist - 1 — two signed compares, which is all
// AVX2 offers for 64-bit lanes.
#include "core/route_kernel.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace cellflow::detail {

namespace {

inline __m256i pack_lanes(__m256i raw, long long rank) {
  const __m256i huge =
      _mm256_set1_epi64x(static_cast<long long>(kRouteHugeDist - 1));
  const __m256i none =
      _mm256_set1_epi64x(static_cast<long long>(kRouteKeyNone));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i shifted =
      _mm256_or_si256(_mm256_slli_epi64(raw, 2), _mm256_set1_epi64x(rank));
  const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(zero, raw),
                                      _mm256_cmpgt_epi64(raw, huge));
  return _mm256_blendv_epi8(shifted, none, bad);
}

inline __m256i min_keys(__m256i a, __m256i b) {
  // All keys are non-negative in signed terms (max is kRouteKeyNone =
  // INT64_MAX), so the signed compare orders them correctly.
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

}  // namespace

void route_min_keys_interior_avx2(const std::uint64_t* dist_raw,
                                  std::size_t k0, std::size_t n,
                                  std::size_t side, std::uint64_t* keys_out) {
  const std::uint64_t* base = dist_raw + k0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto load = [&](std::ptrdiff_t off) {
      return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          base + static_cast<std::ptrdiff_t>(i) + off));
    };
    const __m256i w = pack_lanes(load(-1), 0);
    const __m256i s =
        pack_lanes(load(-static_cast<std::ptrdiff_t>(side)), 1);
    const __m256i nb = pack_lanes(load(static_cast<std::ptrdiff_t>(side)), 2);
    const __m256i e = pack_lanes(load(1), 3);
    const __m256i best = min_keys(min_keys(w, s), min_keys(nb, e));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys_out + i), best);
  }
  if (i < n)
    route_min_keys_interior_scalar(dist_raw, k0 + i, n - i, side,
                                   keys_out + i);
}

}  // namespace cellflow::detail

#else  // non-AVX2 build of this TU: keep the symbol, defer to scalar.

namespace cellflow::detail {

void route_min_keys_interior_avx2(const std::uint64_t* dist_raw,
                                  std::size_t k0, std::size_t n,
                                  std::size_t side, std::uint64_t* keys_out) {
  route_min_keys_interior_scalar(dist_raw, k0, n, side, keys_out);
}

}  // namespace cellflow::detail

#endif
