// Source (entity-injection) policies.
//
// The paper (§II-B, end of Move) specifies only that each source cell
// "adds at most one entity in each round to Members such that the addition
// does not violate the minimum gap requirement", plus the fairness
// assumption of §III-B(b): the source must not perpetually block a
// nonempty non-faulty neighbor. A policy *proposes* a placement; the
// System accepts it only if it keeps the cell safe (gap requirement +
// Invariant 1 bounds) and does not fill the entry strip toward the
// neighbor currently being served (`token`) — that last guard is how we
// discharge assumption (b) by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/cell_state.hpp"
#include "core/params.hpp"
#include "geometry/vec2.hpp"
#include "grid/grid.hpp"
#include "util/rng.hpp"

namespace cellflow {

/// Strategy deciding where (and whether) a source cell spawns an entity
/// this round. Returning nullopt skips the round.
class SourcePolicy {
 public:
  virtual ~SourcePolicy() = default;

  /// Proposes a center for a new entity on source cell `self`. The System
  /// validates safety; a proposal that would be unsafe is dropped for the
  /// round (not retried elsewhere), matching "at most one per round".
  [[nodiscard]] virtual std::optional<Vec2> propose(
      const Grid& grid, const Params& params, CellId self,
      const CellState& state) = 0;

  /// Called by the System when a proposal passed validation and the entity
  /// was actually created. Default: nothing.
  virtual void note_accepted() noexcept {}

  /// Appends the policy's mutable state as opaque u64 words (snapshot
  /// support, DESIGN.md §11). Stateless policies append nothing.
  virtual void encode_state(std::vector<std::uint64_t>&) const {}

  /// Restores state captured by encode_state(). Returns false when the
  /// word count does not match this policy.
  [[nodiscard]] virtual bool decode_state(
      std::span<const std::uint64_t> words) {
    return words.empty();
  }
};

/// Injects at the center of the edge *opposite* the cell's current `next`
/// direction (entities then traverse the whole cell, as a car entering a
/// highway segment would). Falls back to the cell center while `next` is ⊥
/// (e.g. before routing stabilizes).
class EntryEdgeSource final : public SourcePolicy {
 public:
  [[nodiscard]] std::optional<Vec2> propose(const Grid& grid,
                                            const Params& params, CellId self,
                                            const CellState& state) override;
};

/// EntryEdgeSource gated by a Bernoulli coin: injects with probability
/// `rate` per round. Models lighter offered load.
class RateLimitedSource final : public SourcePolicy {
 public:
  /// Precondition: 0 <= rate <= 1.
  RateLimitedSource(double rate, std::uint64_t seed);

  [[nodiscard]] std::optional<Vec2> propose(const Grid& grid,
                                            const Params& params, CellId self,
                                            const CellState& state) override;

  void encode_state(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override;

 private:
  EntryEdgeSource inner_;
  double rate_;
  Xoshiro256 rng_;
};

/// EntryEdgeSource that stops after `budget` successful injections system-
/// wide; used by progress tests that track a finite population to the
/// target. The System reports acceptance via note_accepted().
class BoundedSource final : public SourcePolicy {
 public:
  explicit BoundedSource(std::uint64_t budget) : remaining_(budget) {}

  [[nodiscard]] std::optional<Vec2> propose(const Grid& grid,
                                            const Params& params, CellId self,
                                            const CellState& state) override;

  void note_accepted() noexcept override;
  [[nodiscard]] std::uint64_t remaining() const noexcept { return remaining_; }

  void encode_state(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override;

 private:
  EntryEdgeSource inner_;
  std::uint64_t remaining_;
};

/// Never injects. Useful for closed-system experiments seeded by hand.
class NullSource final : public SourcePolicy {
 public:
  [[nodiscard]] std::optional<Vec2> propose(const Grid&, const Params&,
                                            CellId, const CellState&) override {
    return std::nullopt;
  }
};

}  // namespace cellflow
