#include "core/predicates.hpp"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "core/signal.hpp"
#include "geometry/rect.hpp"

namespace cellflow {

namespace {

std::string describe_pair(const Entity& p, const Entity& q) {
  std::ostringstream os;
  os << to_string(p.id) << " at " << to_string(p.center) << " vs "
     << to_string(q.id) << " at " << to_string(q.center);
  return os.str();
}

}  // namespace

bool safe_cell(const System& sys, CellId id, double eps) {
  const double d = sys.params().center_spacing();
  const auto& members = sys.cell(id).members;
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      const Vec2 pa = members[a].center;
      const Vec2 pb = members[b].center;
      const bool ok = std::abs(pa.x - pb.x) >= d - eps ||
                      std::abs(pa.y - pb.y) >= d - eps;
      if (!ok) return false;
    }
  }
  return true;
}

std::optional<Violation> check_safe(const System& sys, double eps) {
  const double d = sys.params().center_spacing();
  for (const CellId id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const Vec2 pa = members[a].center;
        const Vec2 pb = members[b].center;
        if (std::abs(pa.x - pb.x) < d - eps &&
            std::abs(pa.y - pb.y) < d - eps) {
          return Violation{"Safe", id, describe_pair(members[a], members[b])};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_members_in_bounds(const System& sys,
                                                 double eps) {
  const double half = sys.params().entity_length() / 2.0;
  for (const CellId id : sys.grid().all_cells()) {
    const auto i = static_cast<double>(id.i);
    const auto j = static_cast<double>(id.j);
    for (const Entity& p : sys.cell(id).members) {
      const bool ok = p.center.x - half >= i - eps &&
                      p.center.x + half <= i + 1.0 + eps &&
                      p.center.y - half >= j - eps &&
                      p.center.y + half <= j + 1.0 + eps;
      if (!ok) {
        return Violation{"Invariant1", id,
                         to_string(p.id) + " at " + to_string(p.center)};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_members_disjoint(const System& sys) {
  std::unordered_set<EntityId> seen;
  for (const CellId id : sys.grid().all_cells()) {
    for (const Entity& p : sys.cell(id).members) {
      if (!seen.insert(p.id).second) {
        return Violation{"Invariant2", id,
                         to_string(p.id) + " appears in two cells"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_h_predicate(const System& sys, double eps) {
  // H uses the strip conditions verbatim; evaluate with a tolerance by
  // shrinking d by eps — entry_strip_clear itself is exact, so re-derive.
  const Params& prm = sys.params();
  const double half = prm.entity_length() / 2.0;
  const double d = prm.center_spacing() - eps;
  for (const CellId id : sys.grid().all_cells()) {
    const CellState& c = sys.cell(id);
    if (!c.signal.has_value()) continue;
    const CellId t = *c.signal;
    const int di = t.i - id.i;
    const int dj = t.j - id.j;
    if (!((di == 0 || dj == 0) && di * di + dj * dj == 1))
      return Violation{"H", id, "signal points at a non-neighbor"};
    const auto i = static_cast<double>(id.i);
    const auto j = static_cast<double>(id.j);
    for (const Entity& p : c.members) {
      bool ok = true;
      if (t.i == id.i + 1 && t.j == id.j)
        ok = p.center.x + half <= i + 1.0 - d;
      else if (t.i == id.i - 1 && t.j == id.j)
        ok = p.center.x - half >= i + d;
      else if (t.i == id.i && t.j == id.j + 1)
        ok = p.center.y + half <= j + 1.0 - d;
      else if (t.i == id.i && t.j == id.j - 1)
        ok = p.center.y - half >= j + d;
      if (!ok) {
        return Violation{"H", id,
                         "strip toward " + to_string(t) + " occupied by " +
                             to_string(p.id)};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_footprints_separated(const System& sys,
                                                    double eps) {
  const double l = sys.params().entity_length();
  const double rs = sys.params().safety_gap();
  for (const CellId id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const Rect ra = members[a].footprint(l);
        const Rect rb = members[b].footprint(l);
        if (ra.overlaps(rb)) {
          return Violation{"FootprintOverlap", id,
                           describe_pair(members[a], members[b])};
        }
        if (ra.linf_gap(rb) < rs - eps) {
          return Violation{"FootprintGap", id,
                           describe_pair(members[a], members[b])};
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<Violation> check_all(const System& sys, double eps) {
  std::vector<Violation> out;
  if (auto v = check_safe(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_members_in_bounds(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_members_disjoint(sys)) out.push_back(*std::move(v));
  if (auto v = check_footprints_separated(sys, eps))
    out.push_back(*std::move(v));
  return out;
}

std::string to_string(const Violation& v) {
  return v.predicate + " violated at " + to_string(v.cell) + ": " + v.detail;
}

}  // namespace cellflow
