#include "core/signal.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {

bool entry_strip_clear(CellId self, CellId toward,
                       std::span<const Entity> members, const Params& params) {
  const double half = params.entity_length() / 2.0;
  const double d = params.center_spacing();
  const auto i = static_cast<double>(self.i);
  const auto j = static_cast<double>(self.j);

  if (toward.i == self.i + 1 && toward.j == self.j) {  // east
    return std::all_of(members.begin(), members.end(), [&](const Entity& p) {
      return p.center.x + half <= i + 1.0 - d;
    });
  }
  if (toward.i == self.i - 1 && toward.j == self.j) {  // west
    return std::all_of(members.begin(), members.end(), [&](const Entity& p) {
      return p.center.x - half >= i + d;
    });
  }
  if (toward.i == self.i && toward.j == self.j + 1) {  // north
    return std::all_of(members.begin(), members.end(), [&](const Entity& p) {
      return p.center.y + half <= j + 1.0 - d;
    });
  }
  if (toward.i == self.i && toward.j == self.j - 1) {  // south
    return std::all_of(members.begin(), members.end(), [&](const Entity& p) {
      return p.center.y - half >= j + d;
    });
  }
  CF_CHECK_MSG(false, "entry_strip_clear: cells are not lattice neighbors");
  return false;
}

SignalResult signal_step(SignalInputs in, const Params& params,
                         ChoosePolicy& choose) {
  CF_EXPECTS(std::is_sorted(in.ne_prev.begin(), in.ne_prev.end()));

  SignalResult out;
  out.ne_prev = std::move(in.ne_prev);
  out.token = in.token;

  // Self-stabilization hygiene: a token naming a non-neighbor can only
  // arise from transient state corruption (the protocol itself only ever
  // stores neighbor ids). Drop it so the acquisition rule below re-seats
  // the token from NEPrev instead of tripping over garbage.
  if (out.token.has_value()) {
    const int di = out.token->i - in.self.i;
    const int dj = out.token->j - in.self.j;
    if (!((di == 0 || dj == 0) && di * di + dj * dj == 1))
      out.token = std::nullopt;
  }

  // Figure 5 line 3: acquire a token if none held.
  if (!out.token.has_value() && !out.ne_prev.empty())
    out.token = choose.choose(in.self, out.ne_prev, std::nullopt);

  if (!out.token.has_value()) {
    // No nonempty predecessor wants in; nothing to grant.
    out.signal = std::nullopt;
    return out;
  }

  // Figure 5 lines 4–7: grant only if the entry strip toward the token
  // holder is free of our own entities' safety regions.
  if (entry_strip_clear(in.self, *out.token, in.members, params)) {
    out.signal = out.token;  // line 9
    // Lines 10–12: rotate the token for the next round.
    if (out.ne_prev.size() > 1) {
      NeighborSet others;
      for (const CellId c : out.ne_prev)
        if (c != *out.token) others.push_back(c);
      // `others` may equal ne_prev when the stale token holder left NEPrev.
      out.token = choose.choose(in.self, others, out.token);
    } else if (out.ne_prev.size() == 1) {
      out.token = out.ne_prev.front();
    } else {
      out.token = std::nullopt;
    }
  } else {
    // Line 14: block, and keep serving the same neighbor next round.
    out.signal = std::nullopt;
  }
  return out;
}

SignalResult signal_step_always_grant(SignalInputs in, ChoosePolicy& choose) {
  CF_EXPECTS(std::is_sorted(in.ne_prev.begin(), in.ne_prev.end()));
  SignalResult out;
  out.ne_prev = std::move(in.ne_prev);
  out.token = in.token;
  if (out.token.has_value()) {
    const int di = out.token->i - in.self.i;
    const int dj = out.token->j - in.self.j;
    if (!((di == 0 || dj == 0) && di * di + dj * dj == 1))
      out.token = std::nullopt;
  }
  if (!out.token.has_value() && !out.ne_prev.empty())
    out.token = choose.choose(in.self, out.ne_prev, std::nullopt);
  if (!out.token.has_value()) {
    out.signal = std::nullopt;
    return out;
  }
  // The deliberate bug: no entry-strip check before granting.
  out.signal = out.token;
  if (out.ne_prev.size() > 1) {
    NeighborSet others;
    for (const CellId c : out.ne_prev)
      if (c != *out.token) others.push_back(c);
    out.token = choose.choose(in.self, others, out.token);
  } else if (out.ne_prev.size() == 1) {
    out.token = out.ne_prev.front();
  } else {
    out.token = std::nullopt;
  }
  return out;
}

}  // namespace cellflow
