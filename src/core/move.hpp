// The Move function (paper Figure 6) decomposed into pure helpers.
//
// Cell ⟨i,j⟩ with next = ⟨m,n⟩ moves all its entities by v toward ⟨m,n⟩
// iff signal_{m,n} = ⟨i,j⟩. Entities whose edge crosses the shared
// boundary leave the cell: they are consumed if ⟨m,n⟩ is the target,
// otherwise re-placed flush against the entry edge of ⟨m,n⟩:
//
//   crossing (line 7):   e.g. east: px + l/2 > i+1
//   placement (13–20):   east: px := m + l/2      west:  px := m+1 − l/2
//                        north: py := n + l/2     south: py := n+1 − l/2
//   (the perpendicular coordinate is preserved — simultaneous transfers of
//    abreast entities stay separated, cf. proof of Theorem 5)
//
// Note on the published pseudocode: Figure 6's west/south placements are
// typeset as "px := m − l/2" which would land *outside* cell ⟨m,n⟩;
// Invariant 1 (i + l/2 ≤ px ≤ i+1 − l/2 for members of cell i) fixes the
// evident intent to m+1 − l/2 (flush with the entry edge), which we use.
//
// The cross-cell bookkeeping (who moves, appending to the destination,
// target consumption, simultaneity) is the System's job — see system.hpp.
#pragma once

#include <vector>

#include "core/entity.hpp"
#include "core/params.hpp"
#include "grid/grid.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// Result of moving one cell's entities for one round.
struct MoveResult {
  /// Entities still in the cell, positions advanced by v.
  std::vector<Entity> staying;
  /// Entities that crossed the boundary toward `toward`, already re-placed
  /// flush with the entry edge of the destination cell.
  std::vector<Entity> crossed;
};

/// Advances every entity of cell `self` by v toward neighbor `toward` and
/// splits them into staying/crossed. Pure: works on a copy.
/// Precondition: `toward` is a lattice neighbor of `self`.
[[nodiscard]] MoveResult move_step(CellId self, CellId toward,
                                   std::vector<Entity> members,
                                   const Params& params);

/// In-place form of move_step — the round hot path (DESIGN.md §10).
/// Partitions `members` with a stable two-pointer pass: stayers keep
/// their exact relative order in `members` (the write index never
/// overtakes the read index, so no unread element is clobbered), and
/// crossers are *appended* to `crossed_out` in that same order, already
/// re-placed at the destination's entry edge. No allocation unless
/// `crossed_out` must grow. move_step delegates here, so the two forms
/// cannot diverge.
void move_step_inplace(CellId self, CellId toward,
                       std::vector<Entity>& members,
                       std::vector<Entity>& crossed_out,
                       const Params& params);

/// True iff entity `p` (center after displacement) sticks out of cell
/// `self` across the edge shared with `toward` (Figure 6 line 7).
[[nodiscard]] bool crosses_boundary(CellId self, CellId toward,
                                    const Entity& p, const Params& params);

/// Entry placement (Figure 6 lines 13–20): returns `p` with the coordinate
/// along the motion axis snapped flush to the entry edge of `dest`.
[[nodiscard]] Entity place_at_entry(CellId from, CellId dest, Entity p,
                                    const Params& params);

// --- Relaxed coupling (paper §V, future work) -------------------------
//
// "For practical applications, we need algorithms that tolerate a relaxed
// coupling between entities and allow them some degree of independent
// movement while preserving safety and progress."
//
// compact_move_step realizes the natural relaxation: entities in a cell
// advance toward `toward` *independently*, each by up to v, subject to
//   (1) staying ≥ d behind every same-lane entity ahead of it (a lane is
//       the set of entities within < d on the perpendicular axis — pairs
//       separated ≥ d perpendicular are unconstrained, exactly mirroring
//       the Safe predicate's disjunction);
//   (2) not crossing the boundary unless the cell holds permission
//       (signal_{toward} = self), in which case the front may cross and
//       transfer exactly as in Figure 6;
//   (3) never entering the entry strip this cell has *promised* via its
//       own current signal when that promise is along the motion
//       direction — otherwise an incoming transfer could land within d
//       of a compacted resident (this constraint is what preserves the
//       proof of Theorem 5; see tests/test_relaxed_coupling.cpp).
//
// Unlike the paper's coupled Move, compaction advances entities even in
// rounds where the cell has no permission — queues close up behind the
// boundary instead of freezing, which is where the throughput gain
// comes from (bench/ablation_relaxed_coupling).

struct CompactionContext {
  /// Cell holds permission to transfer (signal of `toward` names it).
  bool may_cross = false;
  /// Direction of this cell's own granted signal, if any: the strip that
  /// must stay clear for the incoming transfer.
  std::optional<Direction> promised_strip;
};

/// One compaction round for cell `self` toward `toward`.
/// Precondition: `toward` is a lattice neighbor; members satisfy Safe.
[[nodiscard]] MoveResult compact_move_step(CellId self, CellId toward,
                                           std::vector<Entity> members,
                                           const Params& params,
                                           const CompactionContext& ctx);

/// In-place form of compact_move_step (same contract as
/// move_step_inplace): sorts `members` front-to-back and partitions it
/// stably, so `members` afterwards equals the pure form's `staying` —
/// the sort is part of the semantics (the pure form's staying is sorted
/// too), not an artifact. compact_move_step delegates here.
void compact_move_step_inplace(CellId self, CellId toward,
                               std::vector<Entity>& members,
                               std::vector<Entity>& crossed_out,
                               const Params& params,
                               const CompactionContext& ctx);

}  // namespace cellflow
