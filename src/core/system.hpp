// The System automaton (paper §II-B): the synchronous composition of all
// N² cell state machines, plus the environment actions.
//
// Transitions:
//   * fail(⟨i,j⟩)    — crash: failed := true, dist := ∞, next := ⊥ and,
//                      because a failed cell "never communicates",
//                      neighbors subsequently read signal = ⊥ from it
//                      (we clear signal/token so the shared-variable model
//                      matches the message-passing reading of the paper).
//                      Members freeze in place.
//   * recover(⟨i,j⟩) — §IV's recovery: failed := false with protocol state
//                      reset to initial values (target: dist := 0).
//   * update()       — one synchronous round, atomically:
//                        phase 1  Route  (all cells, reading previous-round
//                                         neighbor dists — Figure 4)
//                        phase 2  Signal (all cells, reading the fresh next
//                                         values and pre-Move Members —
//                                         Figure 5)
//                        phase 3  Move   (all cells simultaneously, then
//                                         transfers applied — Figure 6)
//                        phase 4  source injection (≤1 entity per source,
//                                         validated for safety)
//
// The phase structure mirrors the proof of Lemma 3, which speaks of the
// intermediate states x →Route→ xR →Signal→ xS →Move→ x′. A PhaseHook can
// observe exactly those intermediate states (the safety test suite checks
// predicate H at the xS point, where the paper asserts it).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "chunk/cell_store.hpp"
#include "core/cell_state.hpp"
#include "core/choose.hpp"
#include "core/params.hpp"
#include "core/source.hpp"
#include "grid/grid.hpp"
#include "grid/mask.hpp"
#include "obs/protocol_metrics.hpp"
#include "util/ids.hpp"
#include "util/thread_pool.hpp"

namespace cellflow::obs {
class EngineTelemetry;
class PhaseProfiler;
}  // namespace cellflow::obs

namespace cellflow::snapshot {
struct Access;
}  // namespace cellflow::snapshot

namespace cellflow {

/// Which grant rule Signal uses. The paper argues its blocking
/// permission-to-move policy is *necessary* for safety; kAlwaysGrant is
/// the broken strawman that grants without the entry-strip check, kept so
/// the necessity claim is demonstrable (bench/ablation_signal_necessity
/// and tests/test_signal_necessity.cpp show it violates Theorem 5).
enum class SignalRule {
  kBlocking,     ///< Figure 5 as published (the protocol)
  kAlwaysGrant,  ///< UNSAFE ablation: grant the token holder unconditionally
};

/// Which movement rule Move uses. kCoupled is the paper's protocol (all
/// entities of a cell move identically, only with permission).
/// kCompacting is the §V "relaxed coupling" extension: entities advance
/// independently within the cell (see core/move.hpp's compact_move_step),
/// preserving safety and progress while letting queues close up during
/// blocked rounds.
enum class MovementRule {
  kCoupled,     ///< Figure 6 as published
  kCompacting,  ///< §V relaxed-coupling extension
};

/// Execution engine for update()'s per-cell phase loops. The synchronous
/// phase structure (Route reads only previous-round dists; Signal and
/// Move write only cell-local state, with transfers applied in a separate
/// step) makes the per-cell work embarrassingly parallel; this policy
/// only selects *how* the loops run. Results are bit-identical across
/// modes and thread counts — see the determinism contract in system.cpp's
/// phase implementations (sharded loops, barriers between phases,
/// canonical cell-id-ordered merge of cross-cell effects).
struct ParallelPolicy {
  enum class Mode {
    kSerial,    ///< plain in-order loop over cells (the default)
    kParallel,  ///< sharded across a fixed ThreadPool of num_threads
  };

  /// Whether a kParallel engine may fall back to the serial loop for
  /// rounds whose per-shard work is too small to pay for dispatch and
  /// barriers. kAuto decides per round from the *previous* round's
  /// scheduler visit counts (deterministic inputs; and by the §6
  /// bit-identity contract either engine yields the same results, so
  /// the choice is purely a throughput knob). The pool stays alive
  /// across cutover rounds — only the round's execution is serial.
  enum class Cutover {
    kNever,  ///< always run sharded (the differential-test setting)
    kAuto,   ///< per-round serial fallback below the work threshold
  };

  /// Default per-shard visit count under which kAuto runs serial, used
  /// until live telemetry calibrates a machine-specific threshold (see
  /// System::set_telemetry). ~a few hundred cells covers the dispatch +
  /// two-barrier cost of a persistent-pool round on current hardware.
  static constexpr int kDefaultCutoverGrain = 256;

  Mode mode = Mode::kSerial;
  int num_threads = 1;  ///< pool size when mode == kParallel (>= 1)
  Cutover cutover = Cutover::kNever;
  int cutover_grain = kDefaultCutoverGrain;  ///< cells/shard floor (kAuto)

  [[nodiscard]] static constexpr ParallelPolicy serial() noexcept {
    return {};
  }
  [[nodiscard]] static constexpr ParallelPolicy parallel(
      int threads) noexcept {
    return ParallelPolicy{Mode::kParallel, threads};
  }
  [[nodiscard]] static constexpr ParallelPolicy parallel_auto(
      int threads, int grain = kDefaultCutoverGrain) noexcept {
    return ParallelPolicy{Mode::kParallel, threads, Cutover::kAuto, grain};
  }

  friend constexpr bool operator==(const ParallelPolicy&,
                                   const ParallelPolicy&) = default;
};

/// Policy from the CELLFLOW_THREADS environment variable — the ambient
/// override used by every System unless set_parallel_policy() is called:
/// unset, empty, or "0" means serial; an integer N >= 1 means
/// parallel_auto(N) (the ambient knob is a throughput request, so it
/// gets the serial cutover; explicit set_parallel_policy keeps full
/// control). Anything else throws std::runtime_error (a typo should
/// not silently run serial). Safe as an ambient knob precisely because
/// the engines are bit-identical.
[[nodiscard]] ParallelPolicy parallel_policy_from_env();

/// Which cells a round visits. Both schedulers produce bit-identical
/// protocol state, events, and metric counts (pinned by the three-way
/// differential in tests/test_parallel_system.cpp); kActiveSet merely
/// skips cells whose phase bodies are provably no-ops this round:
///
///   * Route — a cell reruns only while armed: some lattice neighbor's
///     dist changed last round, or the neighborhood was perturbed by
///     fail()/recover()/corrupt_control_state(). route_step is a pure
///     function of the neighbors' previous-round dists, so unchanged
///     inputs reproduce the stored dist/next.
///   * Signal/Move — a cell runs only if some cell of its closed
///     neighborhood is "occupied" (has members, a token, a signal, or a
///     stale NEPrev). An unoccupied cell with unoccupied neighbors maps
///     (⊥,⊥,[]) to (⊥,⊥,[]) without consulting the ChoosePolicy, and a
///     granted mover always has an occupied destination, so skipping is
///     invisible — including to stateful (RandomChoose) token streams.
///
/// The active sets are maintained incrementally (injection, transfer,
/// consumption, failure events), never rescanned; see DESIGN.md §9 for
/// the re-arm invariants. kExhaustive is the reference engine the
/// differential suites pin against.
enum class RoundScheduler {
  kActiveSet,    ///< skip provably-quiescent cells (the default)
  kExhaustive,  ///< visit every cell every phase (reference semantics)
};

/// Static configuration of a System.
struct SystemConfig {
  int side = 8;                      ///< N: grid is N×N
  Params params{0.25, 0.05, 0.1};    ///< l, rs, v
  CellId target{1, 7};               ///< tid (consumes entities)
  std::vector<CellId> sources{CellId{1, 0}};  ///< SID (produce entities)
  SignalRule signal_rule = SignalRule::kBlocking;
  MovementRule movement_rule = MovementRule::kCoupled;
};

/// One entity hand-off between adjacent cells during a round. A transfer
/// into the target is a *consumption*: the entity leaves the system.
struct TransferEvent {
  EntityId entity;
  CellId from;
  CellId to;
  bool consumed = false;
};

/// A boundary-crossing entity awaiting delivery, as produced by the Move
/// phase before transfers are applied (the entity is already re-placed
/// flush with `to`'s entry edge).
struct PendingTransfer {
  Entity entity;
  CellId from;
  CellId to;
};

/// Canonical order of one round's cross-cell transfers: ascending origin
/// cell index, preserving the origin's Members order within a cell
/// (stable). This is exactly the order the serial in-order Move loop
/// produces; the parallel engine's shard merge — and any future engine —
/// must funnel through it so that destination Members order, the
/// transfer-event sequence, and hence every downstream trace are
/// independent of internal iteration order.
void canonical_transfer_order(const Grid& grid,
                              std::vector<PendingTransfer>& transfers);

/// Everything that happened in one update() round, for observers.
struct RoundEvents {
  std::uint64_t round = 0;
  std::vector<TransferEvent> transfers;
  /// Cells that applied a movement this round (had permission).
  std::vector<CellId> moved;
  /// Cells holding a token whose grant was *blocked* (signal forced to ⊥
  /// by an occupied entry strip) — Figure 5 line 14.
  std::vector<CellId> blocked;
  /// Entities created by sources this round.
  std::vector<std::pair<CellId, EntityId>> injected;
  /// Arrivals (= transfers with consumed == true).
  std::uint64_t arrivals = 0;

  /// Empties the event lists keeping their capacity — update() reuses one
  /// RoundEvents across rounds so the steady state never reallocates.
  void clear() noexcept {
    round = 0;
    transfers.clear();
    moved.clear();
    blocked.clear();
    injected.clear();
    arrivals = 0;
  }
};

/// Phases of update(), in execution order, for PhaseHook.
enum class UpdatePhase { kAfterRoute, kAfterSignal, kAfterMove, kAfterInject };

class System {
 public:
  /// Hook invoked with the System frozen at each intermediate state of the
  /// current round. Observing only — the hook must not mutate the System.
  using PhaseHook = std::function<void(const System&, UpdatePhase)>;

  /// Builds the initial state: all cells empty and non-faulty, dist = ∞
  /// except dist_target = 0, all pointers ⊥ (paper Figure 3).
  /// `choose`/`source` default to RoundRobinChoose / EntryEdgeSource.
  /// `config.sources` is canonicalized (sorted by cell id, deduplicated)
  /// so injection order — and thus entity-id assignment — cannot depend
  /// on how the caller happened to list the sources. The execution
  /// engine defaults to parallel_policy_from_env().
  explicit System(SystemConfig config,
                  std::unique_ptr<ChoosePolicy> choose = nullptr,
                  std::unique_ptr<SourcePolicy> source = nullptr);

  // --- observation ---------------------------------------------------

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept { return config_.params; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] CellId target() const noexcept { return config_.target; }
  [[nodiscard]] std::span<const CellId> sources() const noexcept {
    return config_.sources;
  }

  [[nodiscard]] const CellState& cell(CellId id) const {
    return cells_[grid_.index_of(id)];
  }
  [[nodiscard]] std::span<const CellState> cells() const noexcept {
    return cells_.span();
  }

  /// Rounds executed so far.
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  /// Entities consumed by the target since construction.
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  /// Entities currently in the system.
  [[nodiscard]] std::size_t entity_count() const noexcept;
  /// Entities ever injected.
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }

  /// N F(x) as a mask (true = non-faulty).
  [[nodiscard]] CellMask alive_mask() const;
  /// ρ(x, ·) over the current failure pattern (reference BFS oracle).
  [[nodiscard]] std::vector<Dist> reference_distances() const;
  /// TC(x): target-connected cells under the current failure pattern.
  [[nodiscard]] CellMask tc_mask() const;

  // --- transitions ----------------------------------------------------

  /// fail(⟨i,j⟩). Idempotent. Precondition: id is on the grid.
  void fail(CellId id);

  /// §IV recovery. Idempotent (no-op on non-failed cells).
  void recover(CellId id);

  /// One synchronous round. Returns what happened (also retrievable via
  /// last_events()).
  const RoundEvents& update();

  /// Events of the most recent update().
  [[nodiscard]] const RoundEvents& last_events() const noexcept {
    return events_;
  }

  /// Registers an intermediate-state observer (replaces any previous).
  /// Hooks always run on the calling thread, at the barrier between
  /// phases, with all workers quiescent — regardless of ParallelPolicy.
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  /// Selects the execution engine for subsequent update() calls.
  /// Changing the policy never changes results — only how the per-cell
  /// loops are scheduled. kParallel spawns (or resizes) the owned
  /// ThreadPool; kSerial releases it. Precondition: num_threads in
  /// [1, 1024] (the same bound CELLFLOW_THREADS enforces).
  ///
  /// Note: a stateful (non-concurrent_safe) ChoosePolicy pins the Signal
  /// phase to the serial in-order loop even under kParallel, because its
  /// internal stream must observe the exact serial call sequence; Route
  /// and Move still run sharded.
  void set_parallel_policy(const ParallelPolicy& policy);

  [[nodiscard]] const ParallelPolicy& parallel_policy() const noexcept {
    return parallel_;
  }

  /// Selects the round scheduler for subsequent update() calls. Changing
  /// it never changes results (see RoundScheduler); switching to
  /// kActiveSet rebuilds the active sets from the current state, so the
  /// switch is valid at any round boundary.
  void set_round_scheduler(RoundScheduler scheduler);

  [[nodiscard]] RoundScheduler round_scheduler() const noexcept {
    return scheduler_;
  }

  /// How many cells each phase of the most recent update() actually
  /// visited (diagnostics for the active-set scheduler; under
  /// kExhaustive every figure equals cell_count()). Deliberately not
  /// part of RoundEvents: the differential suites compare RoundEvents
  /// across schedulers, and these figures legitimately differ.
  struct SchedulerStats {
    std::uint64_t route_cells = 0;
    std::uint64_t signal_cells = 0;
    std::uint64_t move_cells = 0;
  };
  [[nodiscard]] const SchedulerStats& last_scheduler_stats() const noexcept {
    return sched_stats_;
  }

  // --- observability ---------------------------------------------------

  /// Attaches a metrics registry (non-owning; must outlive this System's
  /// updates); nullptr detaches. The protocol counters (see
  /// obs/protocol_metrics.hpp) accumulate per shard and merge in shard
  /// order at the phase barriers, so every count is bit-identical across
  /// ParallelPolicy modes and thread counts. Detached, the hot paths are
  /// a null-pointer test per phase — effectively free.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a phase profiler (non-owning; nullptr detaches). Timing
  /// only — spans never feed back into protocol state, and the counts
  /// contract above is untouched. With a pool live, also enables
  /// per-worker timing so worker/barrier spans land in the profiler.
  void set_profiler(obs::PhaseProfiler* profiler);

  /// Attaches engine telemetry (non-owning; nullptr detaches): per-round
  /// work/barrier_wait/dispatch/merge attribution, per-phase imbalance,
  /// and the Amdahl serial-fraction estimate — see
  /// obs/engine_telemetry.hpp. Timings are outside the determinism
  /// contract; the per-round observation *counts* it produces are
  /// inside (bit-identical across engines and thread counts). Attached
  /// explicitly — never implied by set_metrics — so registries shared
  /// with determinism byte-diff fixtures stay timing-free.
  void set_telemetry(obs::EngineTelemetry* telemetry);

  // --- direct state access (testing / fault injection) -----------------

  /// Places an entity directly (bypassing sources). Used by tests and
  /// examples to set up initial configurations. Throws if the position is
  /// outside cell `id`'s Invariant-1 bounds or violates the gap
  /// requirement against existing members.
  EntityId seed_entity(CellId id, Vec2 center);

  /// Places an entity without any safety validation. Exists so tests can
  /// construct *unsafe* states and prove the §III-A oracles actually
  /// detect them; never used by the protocol or the benches.
  EntityId seed_entity_unchecked(CellId id, Vec2 center);

  /// Adversarial state corruption for self-stabilization experiments:
  /// overwrite the *protocol* variables (dist/next/token/signal) of a
  /// cell. Members and failed are preserved — the stabilization theorems
  /// are about control state, and corrupting Members could by itself break
  /// Safe, which no protocol can repair. See tests/test_self_stabilization.
  void corrupt_control_state(CellId id, Dist dist, OptCellId next,
                             OptCellId token, OptCellId signal);

 private:
  // Snapshot/restore (src/snapshot) reads and rebuilds the full private
  // state; it is the one sanctioned backdoor (DESIGN.md §11).
  friend struct snapshot::Access;

  struct ShardScratch;  // defined below, used by the phase-body helpers

  void run_route_phase();
  void run_signal_phase();
  void run_move_phase();
  void run_inject_phase();

  // --- per-shard phase bodies and post-barrier merges ------------------
  //
  // The three phase loops are factored out of run_*_phase so the fused
  // run_plan orchestration (run_fused_round) executes the exact same
  // scalar code over the exact same shard ranges as the legacy
  // one-dispatch-per-phase path — the §6 bit-identity argument then
  // reduces to "same bodies, same merge order".
  //
  // route_span / signal_span / move_span run a contiguous cell range
  // [begin, end) honoring the active-set gates; route_list_span and the
  // list variants run a range of scratch_.active_list instead (the
  // active-list sharding mode — see run_route_phase). `s` is the shard's
  // scratch slot.
  void route_span(std::size_t s, std::size_t begin, std::size_t end);
  void route_list_span(std::size_t s, std::size_t begin, std::size_t end);
  void signal_span(std::size_t s, std::size_t begin, std::size_t end);
  void signal_list_span(std::size_t s, std::size_t begin, std::size_t end);
  void move_span(std::size_t s, std::size_t begin, std::size_t end);
  void move_list_span(std::size_t s, std::size_t begin, std::size_t end);

  /// Bulk Route over `n` interior, live, non-target cells starting at
  /// k0 (all four lattice neighbors exist): packs the neighbors'
  /// snapshot raws through core/route_kernel.hpp's key argmin — the
  /// SIMD fast path — and applies the decoded results with route_cell's
  /// exact bookkeeping. Only called while !huge_dist_seen_.
  void route_run_kernel(std::size_t k0, std::size_t n, ShardScratch& sc,
                        obs::ProtocolCounts* counts,
                        std::vector<std::size_t>* changed_out);

  /// Merges the per-shard ProtocolCounts tallies of slots [0, used) into
  /// round_counts_ (no-op when no registry is attached).
  void merge_shard_counts(std::size_t used);
  // Post-barrier merges of each phase, in shard order (DESIGN.md §6):
  // Route syncs the dist snapshot and re-arms readers; Signal
  // concatenates blocked events and applies occupancy flips; Move
  // concatenates movers, funnels transfers through
  // canonical_transfer_order, delivers them, and refreshes occupancy.
  void merge_route_results(std::size_t used);
  void merge_signal_results(std::size_t used);
  void merge_move_results(std::size_t used);

  /// The fused-barrier orchestration of one round (DESIGN.md §6): a
  /// single ThreadPool::run_plan covering Route (+Signal when the
  /// choose policy is concurrent-safe, overlapped via the shard gate),
  /// the serial merge stage, and Move. Preconditions (checked by
  /// update()): pooled round, no phase hook, no profiler/telemetry
  /// attachment (those need the per-phase barriers they measure), and
  /// every shard at least `side` cells wide so the Route→Signal gate
  /// only spans adjacent shards.
  void run_fused_round();

  /// kAuto cutover decision for the round about to run, from the
  /// previous round's SchedulerStats (deterministic inputs).
  [[nodiscard]] bool decide_cutover() const;

  // Per-cell bodies of the three phases, shared verbatim by the serial
  // and sharded loops (same scalar code on the same inputs ⇒ bit-equal
  // outputs). Outputs that the serial loop would append to round-global
  // vectors go to out-params so shards can buffer privately and merge in
  // canonical (ascending cell-index) order afterwards.
  // `counts` is the shard-private tally slot (nullptr when no registry
  // is attached — the bodies then skip all bookkeeping).
  // `changed_out`/`flip_out` are the active-set scheduler's shard-private
  // change buffers (nullptr under kExhaustive): cells whose dist changed
  // (Route) / whose occupancy bit flipped (Signal). Both are applied to
  // the shared scheduler state only at the post-phase barrier, in shard
  // order, so intra-phase reads of that state see a frozen snapshot on
  // every engine.
  void route_cell(std::size_t k, obs::ProtocolCounts* counts,
                  std::vector<std::size_t>* changed_out);
  void signal_cell(std::size_t k, std::vector<CellId>& blocked_out,
                   obs::ProtocolCounts* counts,
                   std::vector<std::size_t>* flip_out);
  void move_cell(std::size_t k, std::vector<CellId>& moved_out,
                 std::vector<PendingTransfer>& pending_out,
                 std::vector<Entity>& crossed_scratch,
                 obs::ProtocolCounts* counts);

  // --- round scratch arena (DESIGN.md §10) -----------------------------
  //
  // Every buffer the phase loops used to allocate locally per round lives
  // here instead, cleared (capacity retained) at each use. One slot per
  // shard: a shard only ever touches its own slot during a phase, and the
  // post-barrier merges walk the slots in ascending shard order — the
  // same discipline that makes the engines bit-identical also makes the
  // arena race-free. Sized by set_parallel_policy to the engine width.
  struct ShardScratch {
    std::vector<CellId> blocked;           ///< Signal: blocked-grant events
    std::vector<CellId> moved;             ///< Move: cells that moved
    std::vector<PendingTransfer> pending;  ///< Move: crossers, pre-merge
    std::vector<Entity> crossed;           ///< Move: per-cell crossing batch
    std::vector<std::size_t> changed;      ///< Route: dist-changed cells
    std::vector<std::size_t> flips;        ///< Signal: occupancy flips
    std::vector<std::uint64_t> keys;       ///< Route: packed-key kernel out
    obs::ProtocolCounts counts;            ///< shard-private tallies
    std::uint64_t visited = 0;             ///< Route/Move: cells this shard ran
    std::uint64_t visited_b = 0;           ///< Signal's visit count (separate
                                           ///< so a fused Route+Signal stage
                                           ///< keeps both)
    std::uint64_t span_ns = 0;             ///< this shard's phase-body time
                                           ///< (profiler/telemetry only)

    void begin_phase() noexcept {
      blocked.clear();
      moved.clear();
      pending.clear();
      crossed.clear();
      changed.clear();
      flips.clear();
      counts.reset();
      visited = 0;
      visited_b = 0;
      span_ns = 0;
      // `keys` is a capacity-reused output buffer, never read before
      // being written — no clear needed.
    }
  };
  struct RoundScratch {
    std::vector<ShardScratch> shards;       ///< >= 1; index = shard id
    std::vector<PendingTransfer> transfers; ///< canonical merge buffer
    /// Active-list sharding (DESIGN.md §6/§9): when the previous round's
    /// visit count shows a phase is sparse, the phase gates once on the
    /// calling thread into this ascending cell-index list and shards the
    /// *list* instead of the grid, so the parallel work splits evenly
    /// over the cells that actually run. Rebuilt per phase.
    std::vector<std::uint32_t> active_list;
  };

  // --- active-set scheduler internals (DESIGN.md §9) -------------------

  /// B(c): true iff the cell can influence (or be mutated by) Signal or
  /// Move this round. Computed from the raw fields regardless of
  /// `failed`, so even adversarially corrupted failed cells keep their
  /// neighborhoods scheduled exactly as the exhaustive loop behaves.
  [[nodiscard]] static bool occupied(const CellState& c) noexcept {
    return !c.members.empty() || c.token.has_value() || c.signal.has_value() ||
           !c.ne_prev.empty();
  }

  /// Re-derives every scheduler structure from the current protocol
  /// state: all cells armed for Route this round, occupancy bits and
  /// neighborhood refcounts recomputed, dist snapshot synced.
  void rebuild_active_sets();

  /// Arms `k` and its lattice neighbors to run Route in round `upto`.
  void arm_route_neighborhood(std::size_t k, std::uint64_t upto);

  /// Toggles occ_b_[k] and propagates ±1 to the closed neighborhood's
  /// refcounts. Callers guarantee the bit is actually stale.
  void apply_occupancy_flip(std::size_t k);

  /// Recomputes B(cells_[k]) and applies the flip if it changed
  /// (idempotent; used by the serial mutation points: injection,
  /// transfer delivery, seeding, fail/recover/corruption).
  void refresh_occupancy(std::size_t k);

  /// Bookkeeping shared by fail()/recover()/corrupt_control_state():
  /// syncs the dist snapshot, re-arms Route around the mutation, and
  /// refreshes occupancy.
  void note_control_mutation(std::size_t k);

  /// True iff adding an entity centered at `center` to cell `id` keeps the
  /// cell safe: Invariant-1 bounds, pairwise gap ≥ d, and (fairness guard,
  /// see source.hpp) the entry strip toward the current token stays clear.
  [[nodiscard]] bool injection_is_safe(CellId id, Vec2 center) const;

  SystemConfig config_;
  Grid grid_;
  /// The dense realization of the cell-store seam (chunk/cell_store.hpp):
  /// all N² cells resident. chunk::ChunkedSystem is the sparse sibling.
  chunk::DenseCellStore cells_;
  std::unique_ptr<ChoosePolicy> choose_;
  std::unique_ptr<SourcePolicy> source_;
  PhaseHook phase_hook_;

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  RoundEvents events_;

  ParallelPolicy parallel_;
  std::unique_ptr<ThreadPool> pool_;  ///< live iff mode == kParallel
  /// The pool the round in flight actually uses: pool_.get(), or nullptr
  /// when a kAuto cutover pinned this round serial. Set by update(); the
  /// phase loops read it instead of pool_.
  ThreadPool* round_pool_ = nullptr;
  RoundScratch scratch_;              ///< see the struct comment above

  /// Shard gate of the fused Route+Signal stage: route_ready_[s] != 0
  /// once shard s's Route output is published (release); a shard's
  /// Signal half spin-waits (acquire) on its neighbors' flags. Reset on
  /// the calling thread before each plan dispatch.
  std::unique_ptr<std::atomic<std::uint32_t>[]> route_ready_;
  std::size_t route_ready_cap_ = 0;

  /// Sticky guard of the packed-key Route fast path: set as soon as any
  /// cell's dist carries a raw encoding at or above kRouteHugeDist / 2
  /// (only reachable through corrupt_control_state / snapshot restore —
  /// checked at every external-mutation point). Once set, Route runs the
  /// reference route_step gather forever after, because the kernel's
  /// key packing saturates such raws. The /2 margin makes the check
  /// sound: a sub-threshold raw would need ~2^59 rounds of +1 growth to
  /// reach the kernel's guard band.
  bool huge_dist_seen_ = false;
  std::size_t target_k_ = 0;  ///< grid_.index_of(config_.target), cached

  // Observability attachments; all optional, all non-owning.
  std::unique_ptr<obs::ProtocolMetrics> metrics_;  ///< live iff attached
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::EngineTelemetry* telemetry_ = nullptr;
  obs::ProtocolCounts round_counts_;  ///< merged tally of the current round

  // --- engine timing scaffolding (profiler / telemetry only) ----------
  //
  // Everything below is reporting-only plumbing: written on the calling
  // thread (worker timings come pre-aggregated from the pool, under its
  // mutex) and untouched when neither attachment is live.

  /// Syncs the pool's per-worker timing with the current attachments
  /// (enabled iff profiler or telemetry is live).
  void sync_pool_timing();

  /// Post-phase bookkeeping: shard-span imbalance, serial-phase work
  /// attribution, and per-worker profiler spans for the batch that just
  /// ran. `phase_idx`: 0 = route, 1 = signal, 2 = move. `pool` is the
  /// pool the phase actually used (nullptr when pinned serial), `used`
  /// the shard count the partition produced.
  void note_phase_timing(int phase_idx, ThreadPool* pool, std::size_t used);

  /// Accumulators for the round in flight, reset at each update() when
  /// telemetry is attached. The pool_* fields come from the per-batch
  /// worker samples of each pooled phase, summed over the participating
  /// workers and divided by their count — each participant's
  /// dispatch+busy+barrier chain spans the batch's dispatch->done wall
  /// exactly, so the normalized components sum to the batch wall even
  /// when fewer workers than the pool width claimed tasks (routine on
  /// an oversubscribed machine).
  struct RoundTiming {
    std::uint64_t serial_work_ns = 0;    ///< phase loops run on the caller
    std::uint64_t merge_ns = 0;          ///< post-barrier serial sections
    std::uint64_t pool_busy_ns = 0;      ///< wall-equiv worker busy spans
    std::uint64_t pool_barrier_ns = 0;   ///< wall-equiv barrier stalls
    std::uint64_t pool_dispatch_ns = 0;  ///< wall-equiv dispatch latency
    std::uint64_t pool_resume_ns = 0;    ///< batch done -> caller resumed
    std::uint64_t pool_task_ns = 0;      ///< summed task bodies (utilization)
    std::array<double, 3> imbalance{1.0, 1.0, 1.0};

    void reset() noexcept { *this = RoundTiming{}; }
  };
  RoundTiming round_timing_;
  std::vector<ThreadPool::BatchWorkerSample> batch_samples_;  ///< scratch

  /// Telemetry-calibrated kAuto threshold: EWMA of "per-shard visit
  /// count at which a round's pooled overhead (dispatch + barriers)
  /// equals its pooled work", updated after each pooled, telemetry-
  /// tracked round. 0 until the first sample; then it overrides the
  /// policy's static cutover_grain. Timing-derived, so it only ever
  /// selects *which* of two bit-identical engines runs (§6).
  double ewma_cutover_grain_ = 0.0;
  /// Last dispatch_stats() reading, for per-round deltas in telemetry.
  DispatchStats last_dispatch_stats_;

  // Scratch buffers reused across rounds to avoid per-round allocation.
  // Under kActiveSet, dist_snapshot_ is not a scratch buffer but an
  // invariant: dist_snapshot_[k] == cells_[k].dist.raw() at every round
  // boundary (maintained incrementally by the post-Route merge and by
  // note_control_mutation); under kExhaustive it is recopied each round.
  // Stored as raw encodings (Dist::raw / Dist::from_raw — order-
  // preserving, ∞ = UINT64_MAX) so the Route fast path can feed whole
  // rows straight into core/route_kernel.hpp without a conversion pass.
  std::vector<std::uint64_t> dist_snapshot_;

  // --- cache-tight topology tables (DESIGN.md §10) ---------------------
  //
  // The grid is immutable after construction, so the per-cell adjacency
  // the phase loops used to recompute through Grid (bounds-checked
  // neighbor()/index_of()/id_of() per access) is flattened once into
  // dense arrays the hot loops index directly.

  /// Sentinel for "no neighbor in this direction" in nbr_idx_.
  static constexpr std::uint32_t kNoNbr =
      std::numeric_limits<std::uint32_t>::max();

  /// nbr_idx_[k][d]: dense index of cell k's neighbor in kAllDirections
  /// order, or kNoNbr at the boundary.
  std::vector<std::array<std::uint32_t, 4>> nbr_idx_;
  /// cell_id_[k] == grid_.id_of(k), cached (avoids a div/mod per access).
  std::vector<CellId> cell_id_;

  /// Signal feeder snapshot: feed_[k] is the dense index of the cell that
  /// k *feeds* this round — i.e. index_of(next_k) iff k is live, nonempty
  /// and next_k ≠ ⊥ — else kNoNbr. Written by route_cell (the inputs —
  /// next is Route's own output; members/failed cannot change between
  /// Route and Signal) so the exhaustive Signal scan tests
  /// `feed_[nbr] == k` against one dense 4-byte-per-cell array instead of
  /// gathering failed/next/members from four scattered CellStates. Only
  /// kExhaustive reads it: under kActiveSet, Route skips quiescent cells,
  /// whose feed entry would go stale when Move empties or fills them, so
  /// the active engine keeps the direct CellState reads (equivalence
  /// pinned by the differential suites and the bench digest checks).
  std::vector<std::uint32_t> feed_;

  // Active-set scheduler state (kActiveSet; rebuilt on switch). All
  // three vectors are read-only during the sharded phase loops and
  // mutated only at the barriers / between rounds, on the calling
  // thread — shards buffer their changes privately (see route_cell /
  // signal_cell) and the merges apply them in shard order.
  RoundScheduler scheduler_ = RoundScheduler::kActiveSet;
  std::vector<std::uint64_t> route_stamp_;  ///< run Route iff >= round_
  std::vector<std::uint8_t> occ_b_;         ///< B(cells_[k]), cached
  std::vector<std::uint8_t> occ_refs_;      ///< # occupied in closed nbhd
  SchedulerStats sched_stats_;
};

}  // namespace cellflow
