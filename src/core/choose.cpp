#include "core/choose.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace cellflow {

CellId RoundRobinChoose::choose(CellId /*self*/,
                                std::span<const CellId> candidates,
                                OptCellId previous) {
  CF_EXPECTS(!candidates.empty());
  CF_EXPECTS(std::is_sorted(candidates.begin(), candidates.end()));
  if (!previous.has_value()) return candidates.front();
  // First candidate strictly greater than the previous token, cyclically.
  const auto it =
      std::upper_bound(candidates.begin(), candidates.end(), *previous);
  return it == candidates.end() ? candidates.front() : *it;
}

CellId RandomChoose::choose(CellId /*self*/,
                            std::span<const CellId> candidates,
                            OptCellId /*previous*/) {
  CF_EXPECTS(!candidates.empty());
  return candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
}

void RandomChoose::encode_state(std::vector<std::uint64_t>& out) const {
  const auto words = rng_.state();
  out.insert(out.end(), words.begin(), words.end());
}

bool RandomChoose::decode_state(std::span<const std::uint64_t> words) {
  if (words.size() != 4) return false;
  rng_.set_state({words[0], words[1], words[2], words[3]});
  return true;
}

CellId LowestIdChoose::choose(CellId /*self*/,
                              std::span<const CellId> candidates,
                              OptCellId /*previous*/) {
  CF_EXPECTS(!candidates.empty());
  return candidates.front();
}

std::unique_ptr<ChoosePolicy> make_choose_policy(std::string_view name,
                                                 std::uint64_t seed) {
  if (name == "round-robin") return std::make_unique<RoundRobinChoose>();
  if (name == "random") return std::make_unique<RandomChoose>(seed);
  if (name == "lowest-id") return std::make_unique<LowestIdChoose>();
  throw std::runtime_error("unknown choose policy: " + std::string(name));
}

}  // namespace cellflow
