// Token-choice policies.
//
// The paper's Signal function (Figure 5) uses nondeterministic `choose`
// twice: acquiring a token when it is ⊥ (line 3) and rotating it after a
// grant (lines 10–12). Any realization is correct for *safety*; for
// *progress* (Lemma 9) the choice must be fair — every nonempty
// predecessor must be chosen infinitely often. We provide:
//
//   * RoundRobinChoose (default) — cycles through candidates in id order
//     relative to the previous token. Deterministic and fair.
//   * RandomChoose — uniform over candidates from a seeded stream.
//     Fair with probability 1; used to reproduce the paper's
//     nondeterminism statistically.
//   * LowestIdChoose — always the smallest id. Deliberately UNFAIR: with
//     more than one competing predecessor it can starve the larger id.
//     Kept as an ablation (bench/ablation_token_policy) and as a negative
//     test for the fairness assumption in Lemma 9.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cellflow {

/// Strategy for the Signal function's `choose`.
class ChoosePolicy {
 public:
  virtual ~ChoosePolicy() = default;

  /// Picks one of `candidates` (precondition: nonempty, sorted unique
  /// ascending). `previous` is the token being rotated away from, or ⊥ on
  /// first acquisition. `self` identifies the choosing cell so stateful
  /// policies can keep independent per-cell streams.
  [[nodiscard]] virtual CellId choose(CellId self,
                                      std::span<const CellId> candidates,
                                      OptCellId previous) = 0;

  /// True iff choose() is a pure function of its arguments — no internal
  /// state — so concurrent calls from System's parallel Signal phase are
  /// both data-race-free and call-order-independent. Stateful policies
  /// keep the conservative default (false); the parallel engine then
  /// runs the Signal phase serially so the policy's stream observes the
  /// exact serial call sequence (determinism over speed).
  [[nodiscard]] virtual bool concurrent_safe() const noexcept {
    return false;
  }

  /// Appends the policy's mutable state as opaque u64 words (snapshot
  /// support, DESIGN.md §11). Stateless policies append nothing.
  virtual void encode_state(std::vector<std::uint64_t>&) const {}

  /// Restores state captured by encode_state(). Returns false when the
  /// word count does not match this policy (the snapshot was taken with a
  /// differently configured engine); the caller reports that as a typed
  /// config mismatch.
  [[nodiscard]] virtual bool decode_state(
      std::span<const std::uint64_t> words) {
    return words.empty();
  }
};

/// Deterministic fair rotation: the smallest candidate strictly greater
/// than `previous` in id order, wrapping to the smallest overall.
class RoundRobinChoose final : public ChoosePolicy {
 public:
  [[nodiscard]] CellId choose(CellId self, std::span<const CellId> candidates,
                              OptCellId previous) override;
  [[nodiscard]] bool concurrent_safe() const noexcept override {
    return true;
  }
};

/// Uniformly random choice from a seeded generator (deterministic given
/// the seed and call sequence).
class RandomChoose final : public ChoosePolicy {
 public:
  explicit RandomChoose(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] CellId choose(CellId self, std::span<const CellId> candidates,
                              OptCellId previous) override;

  void encode_state(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override;

 private:
  Xoshiro256 rng_;
};

/// Always the smallest id — unfair on purpose (see file comment).
class LowestIdChoose final : public ChoosePolicy {
 public:
  [[nodiscard]] CellId choose(CellId self, std::span<const CellId> candidates,
                              OptCellId previous) override;
  [[nodiscard]] bool concurrent_safe() const noexcept override {
    return true;
  }
};

/// Factory from a name ("round-robin" | "random" | "lowest-id"), used by
/// CLI-configurable binaries. Throws on unknown names.
[[nodiscard]] std::unique_ptr<ChoosePolicy> make_choose_policy(
    std::string_view name, std::uint64_t seed);

}  // namespace cellflow
