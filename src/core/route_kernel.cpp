#include "core/route_kernel.hpp"

namespace cellflow {

namespace detail {

void route_min_keys_interior_scalar(const std::uint64_t* dist_raw,
                                    std::size_t k0, std::size_t n,
                                    std::size_t side,
                                    std::uint64_t* keys_out) {
  const std::uint64_t* base = dist_raw + k0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = route_pack_key(base[i - 1], 0);
    const std::uint64_t s = route_pack_key(base[i - side], 1);
    const std::uint64_t nb = route_pack_key(base[i + side], 2);
    const std::uint64_t e = route_pack_key(base[i + 1], 3);
    std::uint64_t best = w < s ? w : s;
    if (nb < best) best = nb;
    if (e < best) best = e;
    keys_out[i] = best;
  }
}

}  // namespace detail

namespace {

using KernelFn = void (*)(const std::uint64_t*, std::size_t, std::size_t,
                          std::size_t, std::uint64_t*);

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelFn pick_kernel() noexcept {
  return cpu_has_avx2() ? &detail::route_min_keys_interior_avx2
                        : &detail::route_min_keys_interior_scalar;
}

// Resolved once; both bodies are pure functions of their inputs, so the
// choice is observational only (bit-identical results either way).
const KernelFn kKernel = pick_kernel();

}  // namespace

void route_min_keys_interior(const std::uint64_t* dist_raw, std::size_t k0,
                             std::size_t n, std::size_t side,
                             std::uint64_t* keys_out) {
  kKernel(dist_raw, k0, n, side, keys_out);
}

bool route_kernel_uses_avx2() noexcept {
  return kKernel == &detail::route_min_keys_interior_avx2;
}

}  // namespace cellflow
