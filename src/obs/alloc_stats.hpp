// Allocation observability for the zero-allocation round hot path
// (DESIGN.md §10). The counters here are fed by an *optional* global
// operator-new/delete interposer (alloc_interposer.cpp) that is linked
// only into the binaries that measure allocation — tests/test_alloc_churn
// and bench/micro_alloc_churn. The cellflow library itself never calls
// note_alloc; in every other binary the counters stay zero and
// alloc_interposer_linked() reports false, so callers can distinguish
// "no allocations" from "not instrumented".
//
// Thread safety: counters are relaxed atomics — the contract is only that
// a quiesced program (all round work joined at a barrier) reads exact
// totals, which is how both the test and the bench use them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"

namespace cellflow::obs {

/// Snapshot of the global allocation counters.
struct AllocTotals {
  std::uint64_t allocs = 0;  ///< operator-new calls
  std::uint64_t frees = 0;   ///< operator-delete calls
  std::uint64_t bytes = 0;   ///< bytes requested from operator-new

  friend AllocTotals operator-(const AllocTotals& a, const AllocTotals& b) {
    return {a.allocs - b.allocs, a.frees - b.frees, a.bytes - b.bytes};
  }
};

/// Called by the interposer on every operator-new. Relaxed atomics; safe
/// from any thread, including before main().
void note_alloc(std::size_t bytes) noexcept;
/// Called by the interposer on every operator-delete.
void note_free() noexcept;

/// Current global totals (exact only while no other thread allocates).
[[nodiscard]] AllocTotals alloc_totals() noexcept;

/// Interposer registration: its translation unit flips this at static
/// initialization, so instrumented binaries can assert they really are.
void mark_interposer_linked() noexcept;
[[nodiscard]] bool alloc_interposer_linked() noexcept;

/// Process-level resident memory, read from /proc/self/status. All-zero
/// when the platform has no procfs (or the read fails) — callers treat 0
/// as "not measured", never as "no memory".
struct ProcessMemory {
  std::uint64_t vm_rss_bytes = 0;  ///< VmRSS: current resident set
  std::uint64_t vm_hwm_bytes = 0;  ///< VmHWM: lifetime peak resident set
};

[[nodiscard]] ProcessMemory process_memory() noexcept;

/// One sample of a chunked store's footprint and lifecycle totals — plain
/// numbers so obs does not depend on src/chunk (the store provides them;
/// see ChunkedCellStore::stats/resident_bytes).
struct StoreStatsSample {
  std::uint64_t resident_bytes = 0;      ///< store-attributed heap bytes
  std::uint64_t live_chunks = 0;
  std::uint64_t parked_chunks = 0;
  std::uint64_t virgin_chunks = 0;
  std::uint64_t materialized_total = 0;  ///< monotone lifecycle counters
  std::uint64_t parked_total = 0;
  std::uint64_t unparked_total = 0;
};

/// Publishes store samples into a MetricsRegistry: instantaneous gauges
/// (`cellflow_store_resident_bytes`, `cellflow_store_chunks{state=...}`),
/// the process high-water gauge `cellflow_resident_bytes_peak` (VmHWM
/// when procfs is available, otherwise the peak store figure observed),
/// and the lifecycle counters (`cellflow_chunk_{materialized,parked,
/// unparked}_total`), incremented by delta so repeated publishing of the
/// monotone totals stays correct. Deliberately NOT wired into
/// ChunkedSystem::set_metrics: the protocol exposition must stay
/// byte-identical across storage models (the differential suites compare
/// it), so store telemetry is attached explicitly by benches and the sim.
class StoreStatsPublisher {
 public:
  explicit StoreStatsPublisher(MetricsRegistry& registry, Labels labels = {});

  void publish(const StoreStatsSample& sample) noexcept;

 private:
  Gauge* resident_bytes_;
  Gauge* resident_peak_;
  Gauge* live_;
  Gauge* parked_;
  Gauge* virgin_;
  Counter* materialized_;
  Counter* parked_total_;
  Counter* unparked_total_;
  StoreStatsSample last_;
  std::uint64_t peak_seen_ = 0;
};

/// Delta helper: captures totals at construction; delta() is the
/// allocation traffic since then.
class AllocWindow {
 public:
  AllocWindow() noexcept : start_(alloc_totals()) {}
  [[nodiscard]] AllocTotals delta() const noexcept {
    return alloc_totals() - start_;
  }
  void reset() noexcept { start_ = alloc_totals(); }

 private:
  AllocTotals start_;
};

}  // namespace cellflow::obs
