// Allocation observability for the zero-allocation round hot path
// (DESIGN.md §10). The counters here are fed by an *optional* global
// operator-new/delete interposer (alloc_interposer.cpp) that is linked
// only into the binaries that measure allocation — tests/test_alloc_churn
// and bench/micro_alloc_churn. The cellflow library itself never calls
// note_alloc; in every other binary the counters stay zero and
// alloc_interposer_linked() reports false, so callers can distinguish
// "no allocations" from "not instrumented".
//
// Thread safety: counters are relaxed atomics — the contract is only that
// a quiesced program (all round work joined at a barrier) reads exact
// totals, which is how both the test and the bench use them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cellflow::obs {

/// Snapshot of the global allocation counters.
struct AllocTotals {
  std::uint64_t allocs = 0;  ///< operator-new calls
  std::uint64_t frees = 0;   ///< operator-delete calls
  std::uint64_t bytes = 0;   ///< bytes requested from operator-new

  friend AllocTotals operator-(const AllocTotals& a, const AllocTotals& b) {
    return {a.allocs - b.allocs, a.frees - b.frees, a.bytes - b.bytes};
  }
};

/// Called by the interposer on every operator-new. Relaxed atomics; safe
/// from any thread, including before main().
void note_alloc(std::size_t bytes) noexcept;
/// Called by the interposer on every operator-delete.
void note_free() noexcept;

/// Current global totals (exact only while no other thread allocates).
[[nodiscard]] AllocTotals alloc_totals() noexcept;

/// Interposer registration: its translation unit flips this at static
/// initialization, so instrumented binaries can assert they really are.
void mark_interposer_linked() noexcept;
[[nodiscard]] bool alloc_interposer_linked() noexcept;

/// Delta helper: captures totals at construction; delta() is the
/// allocation traffic since then.
class AllocWindow {
 public:
  AllocWindow() noexcept : start_(alloc_totals()) {}
  [[nodiscard]] AllocTotals delta() const noexcept {
    return alloc_totals() - start_;
  }
  void reset() noexcept { start_ = alloc_totals(); }

 private:
  AllocTotals start_;
};

}  // namespace cellflow::obs
