#include "obs/protocol_metrics.hpp"

namespace cellflow::obs {

void ProtocolCounts::merge(const ProtocolCounts& other) noexcept {
  route_relaxations += other.route_relaxations;
  route_dist_changes += other.route_dist_changes;
  signal_grants += other.signal_grants;
  signal_blocks += other.signal_blocks;
  signal_token_rotations += other.signal_token_rotations;
  for (std::size_t k = 0; k < ne_prev_sizes.size(); ++k)
    ne_prev_sizes[k] += other.ne_prev_sizes[k];
  moves += other.moves;
  transfers += other.transfers;
  consumptions += other.consumptions;
  injections += other.injections;
  blocked_injections += other.blocked_injections;
}

ProtocolMetrics::ProtocolMetrics(MetricsRegistry& registry,
                                 std::string_view realization) {
  const Labels labels{{"realization", std::string(realization)}};
  const auto c = [&](std::string_view name, std::string_view help) {
    return &registry.counter(name, help, labels);
  };
  rounds_ = c("cellflow_rounds_total", "Protocol rounds executed");
  route_relaxations_ = c("cellflow_route_relaxations_total",
                         "Neighbor dist values examined by Route");
  route_dist_changes_ = c("cellflow_route_dist_changes_total",
                          "Cells whose dist changed in a Route phase");
  signal_grants_ = c("cellflow_signal_grants_total",
                     "Signal grants issued (signal set to a neighbor)");
  signal_blocks_ =
      c("cellflow_signal_blocks_total",
        "Grants refused because the entry strip was occupied (Figure 5)");
  signal_token_rotations_ = c("cellflow_signal_token_rotations_total",
                              "Token handed to a different predecessor");
  ne_prev_size_ = &registry.histogram(
      "cellflow_signal_ne_prev_size",
      "NEPrev set size per non-faulty cell per Signal phase",
      {0.0, 1.0, 2.0, 3.0}, labels);
  moves_ = c("cellflow_move_moves_total",
             "Cells that applied a movement with permission");
  transfers_ = c("cellflow_move_transfers_total",
                 "Entities handed across a cell boundary (consumptions "
                 "included)");
  consumptions_ = c("cellflow_move_consumptions_total",
                    "Entities consumed by the target");
  injections_ =
      c("cellflow_source_injections_total", "Entities injected by sources");
  blocked_injections_ = c("cellflow_source_blocked_total",
                          "Source proposals dropped by the safety validation");
  failures_ = c("cellflow_failures_total", "fail transitions applied");
  recoveries_ = c("cellflow_recoveries_total", "recover transitions applied");
}

void ProtocolMetrics::add(const ProtocolCounts& counts) {
  route_relaxations_->inc(counts.route_relaxations);
  route_dist_changes_->inc(counts.route_dist_changes);
  signal_grants_->inc(counts.signal_grants);
  signal_blocks_->inc(counts.signal_blocks);
  signal_token_rotations_->inc(counts.signal_token_rotations);
  for (std::size_t s = 0; s < counts.ne_prev_sizes.size(); ++s)
    ne_prev_size_->observe_many(static_cast<double>(s),
                                counts.ne_prev_sizes[s]);
  moves_->inc(counts.moves);
  transfers_->inc(counts.transfers);
  consumptions_->inc(counts.consumptions);
  injections_->inc(counts.injections);
  blocked_injections_->inc(counts.blocked_injections);
}

}  // namespace cellflow::obs
