// Bench sidecar model: parse, validate, compare, and synthesize the
// BENCH_<name>.json files the bench binaries drop next to their console
// output (bench/bench_common.hpp writes them, results/ commits them).
//
// Two schema generations coexist:
//   * v1 (no "sidecar_version" key): {"bench","elapsed_seconds",
//     optional "rounds"/"rounds_per_sec","series":{"header","rows"}} —
//     the committed baselines predating the regression gate.
//   * v2 ("sidecar_version": 2): adds "provenance" (git_sha, build_type,
//     compiler, threads, hardware_threads, repetitions), an optional
//     "dispersion" map {metric: {n, mean, rel}} carrying the relative
//     spread of each metric across repetitions, and an optional "memory"
//     map {metric: bytes} of process/store memory figures (VmHWM, store
//     peak) — *_bytes metrics gate lower-better like any other column.
//
// The comparison logic (used by tools/cellflow_bench_diff and the
// benchdiff ctest fixtures) classifies series columns by naming
// convention — see classify_metric — and flags a regression only when
// the relative change exceeds a noise-aware threshold:
//     threshold = max(margin, dispersion_mult * max(rel disp of the two
//                     runs, per-row *_rd column when present)).
// Timings are noisy; the gate is deliberately one-sided per metric
// direction (a faster run never fails) and wide by default (35%), so it
// catches real cliffs (2x) without flaking on scheduler jitter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace cellflow::obs {

/// How a series column (or top-level scalar) participates in the gate.
enum class MetricDirection {
  kHigherBetter,    ///< *_per_sec — throughput; regression = drop
  kLowerBetter,     ///< *_ns/_us/_ms/_seconds/_bytes — cost; regression = rise
  kInformational,   ///< ratios/percentages — reported, never gated
  kDispersion,      ///< *_rd — relative dispersion of the base metric
  kKey,             ///< everything else — identifies the row
};

/// Column/metric classification by naming convention (suffix match).
[[nodiscard]] MetricDirection classify_metric(std::string_view name);

/// Cross-repetition spread of one metric.
struct Dispersion {
  std::uint64_t n = 0;  ///< repetitions observed
  double mean = 0.0;    ///< mean across repetitions
  double rel = 0.0;     ///< (max-min)/mean, 0 when degenerate
};

/// Build/run provenance stamped into v2 sidecars.
struct Provenance {
  std::string git_sha;     ///< "unknown" when not supplied
  std::string build_type;  ///< CMAKE_BUILD_TYPE at compile time
  std::string compiler;    ///< compiler id + version at compile time
  int threads = 0;         ///< CELLFLOW_THREADS (0 = serial/unset)
  int hardware_threads = 0;
  int repetitions = 1;     ///< measurement repetitions behind dispersion
};

/// One parsed sidecar document.
struct Sidecar {
  std::string bench;
  double elapsed_seconds = 0.0;
  std::optional<double> rounds;
  std::optional<double> rounds_per_sec;
  int version = 1;  ///< 1 when the key is absent
  Provenance provenance;
  std::vector<std::string> header;
  std::vector<std::vector<JsonValue>> rows;
  std::map<std::string, Dispersion> dispersion;
  /// v2 optional "memory" map: metric name → bytes (e.g. vm_hwm_bytes,
  /// store_peak_bytes). Compared like top-level scalars.
  std::map<std::string, double> memory;
};

/// Parses either schema generation. Tolerant of v1 (missing provenance/
/// dispersion → defaults); throws std::runtime_error on malformed JSON
/// or a structurally broken document (ragged rows, wrong types).
[[nodiscard]] Sidecar parse_sidecar(std::string_view json_text);

/// Strict v2 schema validation on the raw document: every provenance
/// field present and typed, series rows rectangular, dispersion entries
/// complete. Throws std::runtime_error naming the offending key.
/// (v1 documents fail — callers gate on parse_sidecar().version.)
void validate_sidecar_schema(std::string_view json_text);

/// Gate tuning. Defaults are wide on purpose: micro-bench timings on a
/// shared machine routinely wobble 10-20%; the injected-regression
/// fixture doctors by 2x, comfortably past the default margin.
struct CompareOptions {
  double margin = 0.35;          ///< minimum relative-change threshold
  double dispersion_mult = 4.0;  ///< threshold >= mult * observed rel disp
};

/// One gated (or informational) metric comparison.
struct CompareRow {
  std::string row_key;   ///< concatenated key columns ("8/4"), or "#i"
  std::string metric;    ///< column / scalar name
  double base = 0.0;
  double fresh = 0.0;
  double rel_change = 0.0;  ///< (fresh-base)/|base|
  double threshold = 0.0;   ///< 0 for informational rows
  bool gated = false;
  bool regression = false;
};

/// Full per-bench comparison.
struct CompareReport {
  std::string bench;
  std::vector<CompareRow> rows;
  std::vector<std::string> notes;  ///< rows only in one run, etc.
  int regressions = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Compares two sidecars of the same bench. Series rows are matched by
/// their key columns (falling back to row order when a bench has none);
/// rows present on only one side are reported as notes, not failures.
[[nodiscard]] CompareReport compare_sidecars(const Sidecar& baseline,
                                             const Sidecar& fresh,
                                             const CompareOptions& options);

/// Returns a copy of `json_text` with every gated metric scaled to look
/// `factor`x as fast (throughput columns and top-level rounds_per_sec
/// multiplied by factor, time columns divided by it). Key, dispersion,
/// and informational columns are untouched. Powers the benchdiff.inject
/// fixture: factor 0.5 synthesizes a credible "2x slower" run without
/// re-timing anything. Throws on malformed input.
[[nodiscard]] std::string scale_sidecar_metrics(std::string_view json_text,
                                                double factor);

}  // namespace cellflow::obs
