#include "obs/json.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/export.hpp"

namespace cellflow::obs {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json type error: value is not ") +
                           want);
}

// Recursive-descent parser over the same grammar JsonChecker accepts,
// building a DOM instead of merely validating. Numbers go through strtod
// after the grammar check (the grammar guarantees strtod consumes the
// whole token and is locale-safe: JSON numbers use '.' only, and a
// comma-decimal strtod simply stops at the '.', which the grammar has
// already pinned as the fraction separator — so we parse the integer,
// fraction, and exponent pieces manually to stay locale-independent).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("bad literal (expected " + std::string(word) + ")");
    pos_ += word.size();
  }

  static int hex_digit(char h) {
    if (h >= '0' && h <= '9') return h - '0';
    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
    return -1;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const int d = hex_digit(peek());
      ++pos_;
      if (d < 0) fail("bad \\u escape");
      v = (v << 4) | static_cast<unsigned>(d);
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate in \\u escape");
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("unpaired surrogate in \\u escape");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    double mag = 0.0;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        mag = mag * 10.0 + (text_[pos_] - '0');
        ++pos_;
      }
    } else {
      fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("malformed fraction");
      double place = 0.1;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        mag += place * (text_[pos_] - '0');
        place *= 0.1;
        ++pos_;
      }
    }
    int exp10 = 0;
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      bool neg_exp = false;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        neg_exp = (text_[pos_] == '-');
        ++pos_;
      }
      if (!(peek() >= '0' && peek() <= '9')) fail("malformed exponent");
      int exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        if (exp < 100000) exp = exp * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      exp10 = neg_exp ? -exp : exp;
    }
    // Manual digit accumulation is exact for integers but can drift a few
    // ULPs on long fraction+exponent forms; re-parse the grammar-verified
    // token with strtod for full precision. Under a comma-decimal locale
    // strtod stops at the '.', which we detect and fall back from.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() + token.size()) return parsed;
    double out = mag;
    for (int k = 0; k < (exp10 < 0 ? -exp10 : exp10); ++k)
      out = exp10 < 0 ? out / 10.0 : out * 10.0;
    return negative ? -out : out;  // comma-decimal locale fallback
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue(string());
      case 't': literal("true"); return JsonValue(true);
      case 'f': literal("false"); return JsonValue(false);
      case 'n': literal("null"); return JsonValue(nullptr);
      default: return JsonValue(number());
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(out));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      for (const auto& [k, v] : out)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      out.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump(const JsonValue& v, std::string& out, int indent, int level) {
  const auto newline = [&](int lvl) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * lvl), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    out += format_double(v.as_number());
  } else if (v.is_string()) {
    out.push_back('"');
    out += json_escape(v.as_string());
    out.push_back('"');
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(level + 1);
      dump(a[i], out, indent, level + 1);
    }
    newline(level);
    out.push_back(']');
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, val] : o) {
      if (!first) out.push_back(',');
      first = false;
      newline(level + 1);
      out.push_back('"');
      out += json_escape(key);
      out += indent > 0 ? "\": " : "\":";
      dump(val, out, indent, level + 1);
    }
    newline(level);
    out.push_back('}');
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  type_error("a bool");
}

double JsonValue::as_number() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  type_error("a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  type_error("a string");
}

const JsonValue::Array& JsonValue::as_array() const {
  if (const auto* a = std::get_if<Array>(&v_)) return *a;
  type_error("an array");
}

const JsonValue::Object& JsonValue::as_object() const {
  if (const auto* o = std::get_if<Object>(&v_)) return *o;
  type_error("an object");
}

JsonValue::Array& JsonValue::as_array() {
  if (auto* a = std::get_if<Array>(&v_)) return *a;
  type_error("an array");
}

JsonValue::Object& JsonValue::as_object() {
  if (auto* o = std::get_if<Object>(&v_)) return *o;
  type_error("an object");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  for (const auto& [k, v] : *o)
    if (k == key) return &v;
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view key) {
  auto* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  for (auto& [k, v] : *o)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string_view key, JsonValue value) {
  auto& o = as_object();
  for (auto& [k, v] : o) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  o.emplace_back(std::string(key), std::move(value));
}

JsonValue parse_json(std::string_view text) { return JsonParser(text).run(); }

std::string to_json(const JsonValue& value, int indent) {
  std::string out;
  dump(value, out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

}  // namespace cellflow::obs
