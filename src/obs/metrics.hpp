// MetricsRegistry: labeled counters, gauges, and histograms for the
// protocol and the simulation harness.
//
// Determinism contract (mirrors DESIGN.md §6 for the parallel engine):
// metric *counts* are part of the observable behavior and must be
// bit-identical across ParallelPolicy modes and thread counts. The hot
// paths therefore never touch the registry from worker threads — the
// round engine accumulates into per-shard plain structs (see
// obs/protocol_metrics.hpp) and merges them in shard order at the phase
// barriers. The metric objects themselves are nevertheless atomic, so a
// stray concurrent increment (e.g. from CF_LOG-style harness code) is
// safe rather than undefined; atomicity is a belt, the shard merge is
// the suspenders.
//
// Timings never live here: wall-clock spans go through obs::PhaseProfiler
// (reporting-only, explicitly outside the determinism contract).
//
// The registry owns its metrics; Counter/Gauge/Histogram references stay
// valid for the registry's lifetime. Attach points (System::set_metrics,
// MessageSystem::set_metrics, MetricsObserver) resolve their handles once
// so per-round cost is plain pointer arithmetic, and every path is a
// no-op when no registry is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cellflow::obs {

/// One key="value" pair. Label *sets* are kept sorted by key, so the
/// same logical series is found regardless of the order a caller lists
/// the labels in.
struct Label {
  std::string key;
  std::string value;

  friend auto operator<=>(const Label&, const Label&) = default;
};

using Labels = std::vector<Label>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};  // IEEE-754 payload of the double
};

/// Fixed-bucket histogram (Prometheus semantics: each bound is an
/// inclusive upper edge, with an implicit +Inf overflow bucket).
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept { observe_many(v, 1); }
  /// Records `n` observations of the same value in one step — how the
  /// shard-merged integer tallies of ProtocolCounts enter the histogram
  /// (one deterministic addition per round instead of n).
  void observe_many(double v, std::uint64_t n) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf
  /// overflow bucket at the back.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Point-in-time copy of one labeled series, already flattened to plain
/// numbers — what the exporters consume.
struct SeriesSnapshot {
  Labels labels;
  std::uint64_t counter_value = 0;  ///< kCounter
  double gauge_value = 0.0;         ///< kGauge
  std::uint64_t count = 0;          ///< kHistogram
  double sum = 0.0;                 ///< kHistogram
  /// kHistogram: (upper bound, *cumulative* count), +Inf bucket last.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesSnapshot> series;  ///< sorted by labels
};

/// Get-or-create registry of metric families. A *family* is (name, help,
/// type[, bounds]); a *series* is a family member with a concrete label
/// set. Re-requesting an existing series returns the same object;
/// re-requesting a name with a mismatched type/help/bounds throws
/// std::runtime_error (silent divergence would corrupt exports).
/// Get-or-create is mutex-guarded; see the file comment for how the hot
/// paths avoid the registry entirely.
class MetricsRegistry {
 public:
  // Both out of line: Family is incomplete here.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Names must match Prometheus conventions: [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> upper_bounds, Labels labels = {});

  /// Deterministic point-in-time copy: families sorted by name, series
  /// sorted by label set — the same registry contents always export the
  /// same bytes no matter the creation order.
  [[nodiscard]] std::vector<FamilySnapshot> snapshot() const;

  [[nodiscard]] std::size_t family_count() const;

 private:
  struct Family;
  Family& family(std::string_view name, std::string_view help,
                 MetricType type, const std::vector<double>& bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
  std::map<std::string, std::size_t, std::less<>> index_;  // name → slot
};

/// True iff `name` is a valid Prometheus metric name.
[[nodiscard]] bool valid_metric_name(std::string_view name);

}  // namespace cellflow::obs
