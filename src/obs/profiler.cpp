#include "obs/profiler.hpp"

namespace cellflow::obs {

void PhaseProfiler::record(const char* name, std::uint64_t round, int shard,
                           Clock::time_point start, Clock::time_point end) {
  Span s;
  s.name = name;
  s.round = round;
  s.shard = shard;
  s.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count());
  s.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(s);
}

std::vector<PhaseProfiler::Span> PhaseProfiler::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t PhaseProfiler::total_ns(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Span& s : spans_)
    if (s.shard == -1 && name == s.name) total += s.duration_ns;
  return total;
}

std::size_t PhaseProfiler::span_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void PhaseProfiler::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

}  // namespace cellflow::obs
