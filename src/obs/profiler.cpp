#include "obs/profiler.hpp"

#include <algorithm>

namespace cellflow::obs {

namespace {

std::uint64_t clamped_ns(PhaseProfiler::Clock::time_point a,
                         PhaseProfiler::Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

// Shrinks `ring` (with ring head `head`) to hold at most `capacity`
// newest entries, rebasing it to a linear vector with head 0.
template <typename T>
void rebound_ring(std::vector<T>& ring, std::size_t& head,
                  std::size_t capacity) {
  std::vector<T> ordered;
  ordered.reserve(std::min(ring.size(), capacity));
  const std::size_t n = ring.size();
  const std::size_t skip = n > capacity ? n - capacity : 0;
  for (std::size_t i = skip; i < n; ++i)
    ordered.push_back(ring[(head + i) % n]);
  ring = std::move(ordered);
  head = 0;
}

}  // namespace

void PhaseProfiler::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity ? capacity : 1;
  rebound_ring(spans_, span_head_, capacity_);
  rebound_ring(counters_, counter_head_, capacity_);
}

std::size_t PhaseProfiler::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PhaseProfiler::push_span(const Span& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() < capacity_) {
    spans_.push_back(s);
  } else {
    spans_[span_head_] = s;
    span_head_ = (span_head_ + 1) % spans_.size();
    ++dropped_spans_;
  }
}

void PhaseProfiler::record(const char* name, std::uint64_t round, int shard,
                           Clock::time_point start, Clock::time_point end) {
  Span s;
  s.name = name;
  s.round = round;
  s.shard = shard;
  s.start_ns = clamped_ns(epoch_, start);
  s.duration_ns = clamped_ns(start, end);
  push_span(s);
}

void PhaseProfiler::record_worker(const char* name, std::uint64_t round,
                                  int worker, Clock::time_point start,
                                  Clock::time_point end) {
  Span s;
  s.name = name;
  s.round = round;
  s.shard = -1;
  s.worker = worker;
  s.start_ns = clamped_ns(epoch_, start);
  s.duration_ns = clamped_ns(start, end);
  push_span(s);
}

void PhaseProfiler::record_counter(const char* name, Clock::time_point ts,
                                   double value) {
  CounterSample c;
  c.name = name;
  c.ts_ns = clamped_ns(epoch_, ts);
  c.value = value;
  const std::lock_guard<std::mutex> lock(mu_);
  if (counters_.size() < capacity_) {
    counters_.push_back(c);
  } else {
    counters_[counter_head_] = c;
    counter_head_ = (counter_head_ + 1) % counters_.size();
    ++dropped_counters_;
  }
}

std::vector<PhaseProfiler::Span> PhaseProfiler::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  const std::size_t n = spans_.size();
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(spans_[(span_head_ + i) % n]);
  return out;
}

std::vector<PhaseProfiler::CounterSample> PhaseProfiler::counter_samples()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  const std::size_t n = counters_.size();
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(counters_[(counter_head_ + i) % n]);
  return out;
}

std::uint64_t PhaseProfiler::total_ns(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Span& s : spans_)
    if (s.shard == -1 && s.worker == -1 && name == s.name)
      total += s.duration_ns;
  return total;
}

std::size_t PhaseProfiler::span_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t PhaseProfiler::counter_sample_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

std::uint64_t PhaseProfiler::dropped_spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

std::uint64_t PhaseProfiler::dropped_counter_samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_counters_;
}

void PhaseProfiler::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  span_head_ = 0;
  dropped_spans_ = 0;
  counters_.clear();
  counter_head_ = 0;
  dropped_counters_ = 0;
}

}  // namespace cellflow::obs
