#include "obs/engine_telemetry.hpp"

namespace cellflow::obs {

namespace {

Labels with_phase(std::string_view realization, const char* phase) {
  return Labels{{"phase", phase}, {"realization", std::string(realization)}};
}

Labels with_component(std::string_view realization, const char* component) {
  return Labels{{"component", component},
                {"realization", std::string(realization)}};
}

// Round durations: 1 µs .. 1 s, decade edges (a dense-50 serial round is
// ~100 µs; a pathological parallel round can reach tens of ms).
const std::vector<double> kRoundBounds = {1e3, 1e4, 1e5, 1e6,
                                          1e7, 1e8, 1e9};
// Imbalance = max/mean shard span; 1.0 is perfect balance.
const std::vector<double> kImbalanceBounds = {1.0, 1.25, 1.5,  2.0,
                                              3.0, 5.0,  10.0, 25.0};

}  // namespace

EngineTelemetry::EngineTelemetry(MetricsRegistry& registry,
                                 std::string_view realization) {
  const Labels realization_only{{"realization", std::string(realization)}};
  round_ns_ = &registry.histogram(
      "cellflow_round_duration_ns",
      "Wall-clock duration of one protocol round (ns)", kRoundBounds,
      realization_only);
  const char* imbalance_help =
      "Per-phase shard imbalance: max/mean shard span (1.0 = balanced)";
  imbalance_route_ =
      &registry.histogram("cellflow_phase_imbalance", imbalance_help,
                          kImbalanceBounds, with_phase(realization, "route"));
  imbalance_signal_ =
      &registry.histogram("cellflow_phase_imbalance", imbalance_help,
                          kImbalanceBounds, with_phase(realization, "signal"));
  imbalance_move_ =
      &registry.histogram("cellflow_phase_imbalance", imbalance_help,
                          kImbalanceBounds, with_phase(realization, "move"));
  const char* component_help =
      "Wall-equivalent round time attributed to each engine component (ns)";
  work_total_ =
      &registry.counter("cellflow_engine_component_ns_total", component_help,
                        with_component(realization, "work"));
  barrier_total_ =
      &registry.counter("cellflow_engine_component_ns_total", component_help,
                        with_component(realization, "barrier_wait"));
  dispatch_total_ =
      &registry.counter("cellflow_engine_component_ns_total", component_help,
                        with_component(realization, "dispatch"));
  merge_total_ =
      &registry.counter("cellflow_engine_component_ns_total", component_help,
                        with_component(realization, "merge"));
  workers_ = &registry.gauge("cellflow_engine_workers",
                             "Execution width of the round engine",
                             realization_only);
  parallel_fraction_ = &registry.gauge(
      "cellflow_engine_parallel_work_fraction",
      "Pooled work / (width x round wall), most recent round",
      realization_only);
  serial_fraction_ = &registry.gauge(
      "cellflow_engine_serial_fraction",
      "Amdahl estimate over the run: 1 - wall-equivalent work / round wall",
      realization_only);
  cutover_rounds_ = &registry.counter(
      "cellflow_engine_cutover_rounds_total",
      "Rounds the kAuto cutover pinned to the serial engine",
      realization_only);
  pool_dispatches_ = &registry.counter(
      "cellflow_engine_pool_dispatches_total",
      "Persistent-pool batches published (run/run_plan dispatches)",
      realization_only);
  const char* wake_help =
      "Pool executor wake-ups by kind: spin (epoch observed while "
      "spinning) vs park (condvar round-trip)";
  spin_wakes_ = &registry.counter(
      "cellflow_engine_pool_wakes_total", wake_help,
      Labels{{"kind", "spin"}, {"realization", std::string(realization)}});
  park_wakes_ = &registry.counter(
      "cellflow_engine_pool_wakes_total", wake_help,
      Labels{{"kind", "park"}, {"realization", std::string(realization)}});
}

void EngineTelemetry::record_round(const RoundBreakdown& b) {
  totals_.rounds += 1;
  totals_.round_ns += b.round_ns;
  totals_.work_ns += b.work_ns;
  totals_.barrier_wait_ns += b.barrier_wait_ns;
  totals_.dispatch_ns += b.dispatch_ns;
  totals_.merge_ns += b.merge_ns;
  totals_.imbalance_route_sum += b.imbalance_route;
  totals_.imbalance_signal_sum += b.imbalance_signal;
  totals_.imbalance_move_sum += b.imbalance_move;
  totals_.rounds_cutover += b.cutover ? 1 : 0;
  totals_.dispatches += b.pool_dispatches;
  totals_.spin_wakes += b.pool_spin_wakes;
  totals_.park_wakes += b.pool_park_wakes;

  round_ns_->observe(static_cast<double>(b.round_ns));
  imbalance_route_->observe(b.imbalance_route);
  imbalance_signal_->observe(b.imbalance_signal);
  imbalance_move_->observe(b.imbalance_move);
  work_total_->inc(b.work_ns);
  barrier_total_->inc(b.barrier_wait_ns);
  dispatch_total_->inc(b.dispatch_ns);
  merge_total_->inc(b.merge_ns);
  workers_->set(static_cast<double>(b.workers));
  parallel_fraction_->set(b.parallel_work_fraction);
  serial_fraction_->set(totals_.serial_fraction());
  if (b.cutover) cutover_rounds_->inc(1);
  if (b.pool_dispatches > 0) pool_dispatches_->inc(b.pool_dispatches);
  if (b.pool_spin_wakes > 0) spin_wakes_->inc(b.pool_spin_wakes);
  if (b.pool_park_wakes > 0) park_wakes_->inc(b.pool_park_wakes);
}

}  // namespace cellflow::obs
