// EngineTelemetry: contention/imbalance accounting for the round
// engines.
//
// Attributes every nanosecond of a round to one of four components —
//   work         time inside phase bodies (worker task bodies on the
//                parallel engine, the phase loops themselves on serial),
//   barrier_wait time a worker idled between finishing its own shards
//                and the phase barrier releasing,
//   dispatch     latency from run() publishing a batch to a worker
//                waking for it,
//   merge        the serial post-barrier sections (shard-buffer
//                concatenation, canonical transfer delivery, active-set
//                bookkeeping),
// normalized to *wall-equivalent* nanoseconds (worker-summed time
// divided by the pool width) so the components of one round compare
// directly against that round's wall clock. Per-phase imbalance is
// max/mean over the shard spans of the phase (1.0 when a phase ran as a
// single shard), and the Amdahl serial-fraction estimate over a run is
// 1 − Σwork / Σround.
//
// Determinism boundary (DESIGN.md §7): every duration and ratio here is
// timing — outside the determinism contract, free to differ run to run.
// What *is* inside the contract is the event structure: one histogram
// observation per round per family and one imbalance observation per
// phase per round, so the metric *counts* stay bit-identical across
// ParallelPolicy modes and thread counts (pinned by
// tests/test_engine_telemetry.cpp). Telemetry is attached explicitly
// (System::set_telemetry) and never feeds back into protocol state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cellflow::obs {

/// Wall-equivalent decomposition of one protocol round, produced by the
/// engines and consumed by EngineTelemetry::record_round.
struct RoundBreakdown {
  std::uint64_t round_ns = 0;         ///< wall clock of the whole round
  std::uint64_t work_ns = 0;          ///< phase-body time (÷ width if pooled)
  std::uint64_t barrier_wait_ns = 0;  ///< worker idle at barriers ÷ width
  std::uint64_t dispatch_ns = 0;      ///< batch wake latency ÷ width
  std::uint64_t merge_ns = 0;         ///< serial post-barrier sections
  double imbalance_route = 1.0;       ///< max/mean shard span, Route
  double imbalance_signal = 1.0;
  double imbalance_move = 1.0;
  double parallel_work_fraction = 0.0;  ///< pooled work ÷ (width · round)
  int workers = 1;                      ///< engine width this round
  bool cutover = false;  ///< kAuto pinned this round to the serial engine
  /// Persistent-pool dispatch counters, as per-round deltas of the
  /// pool's cumulative DispatchStats: batches published, and how each
  /// executor wait resolved (observed the epoch while spinning vs.
  /// parked on the condvar). A cutover round reports all three as 0.
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_spin_wakes = 0;
  std::uint64_t pool_park_wakes = 0;

  [[nodiscard]] std::uint64_t accounted_ns() const noexcept {
    return work_ns + barrier_wait_ns + dispatch_ns + merge_ns;
  }
};

class EngineTelemetry {
 public:
  /// Creates/binds the telemetry families in `registry`, labeled with the
  /// protocol realization ("shared" | "messages"). The registry must
  /// outlive this object.
  explicit EngineTelemetry(MetricsRegistry& registry,
                           std::string_view realization = "shared");

  EngineTelemetry(const EngineTelemetry&) = delete;
  EngineTelemetry& operator=(const EngineTelemetry&) = delete;

  /// Records one completed round. Called once per update() by the
  /// attached engine, on the round-driving thread.
  void record_round(const RoundBreakdown& b);

  /// Run-level aggregation since construction / the last reset_totals()
  /// (what the benches read to build their breakdown columns).
  struct Totals {
    std::uint64_t rounds = 0;
    std::uint64_t round_ns = 0;
    std::uint64_t work_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t dispatch_ns = 0;
    std::uint64_t merge_ns = 0;
    double imbalance_route_sum = 0.0;   ///< Σ per-round imbalance (÷ rounds
    double imbalance_signal_sum = 0.0;  ///<  for the mean)
    double imbalance_move_sum = 0.0;
    std::uint64_t rounds_cutover = 0;  ///< rounds the kAuto cutover ran serial
    std::uint64_t dispatches = 0;      ///< pool batches published
    std::uint64_t spin_wakes = 0;      ///< executor waits resolved spinning
    std::uint64_t park_wakes = 0;      ///< executor waits that parked

    [[nodiscard]] std::uint64_t accounted_ns() const noexcept {
      return work_ns + barrier_wait_ns + dispatch_ns + merge_ns;
    }
    /// Fraction of round wall time the four components explain.
    [[nodiscard]] double coverage() const noexcept {
      return round_ns > 0 ? static_cast<double>(accounted_ns()) /
                                static_cast<double>(round_ns)
                          : 0.0;
    }
    /// Amdahl estimate: fraction of wall time NOT spent in (wall-
    /// equivalent) phase-body work — barriers, dispatch, merges, and
    /// anything unaccounted are all serial overhead for scaling purposes.
    [[nodiscard]] double serial_fraction() const noexcept {
      if (round_ns == 0) return 1.0;
      const double f =
          static_cast<double>(work_ns) / static_cast<double>(round_ns);
      return f < 1.0 ? 1.0 - f : 0.0;
    }
  };
  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }
  void reset_totals() noexcept { totals_ = Totals{}; }

 private:
  Totals totals_;
  Histogram* round_ns_;
  Histogram* imbalance_route_;
  Histogram* imbalance_signal_;
  Histogram* imbalance_move_;
  Counter* work_total_;
  Counter* barrier_total_;
  Counter* dispatch_total_;
  Counter* merge_total_;
  Gauge* workers_;
  Gauge* parallel_fraction_;
  Gauge* serial_fraction_;
  Counter* cutover_rounds_;
  Counter* pool_dispatches_;
  Counter* spin_wakes_;
  Counter* park_wakes_;
};

}  // namespace cellflow::obs
