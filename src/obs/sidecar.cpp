#include "obs/sidecar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/export.hpp"

namespace cellflow::obs {

namespace {

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

[[noreturn]] void schema_fail(const std::string& why) {
  throw std::runtime_error("sidecar schema error: " + why);
}

const JsonValue& require(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) schema_fail("missing key \"" + std::string(key) + "\"");
  return *v;
}

double require_number(const JsonValue& doc, std::string_view key) {
  const JsonValue& v = require(doc, key);
  if (!v.is_number()) schema_fail("\"" + std::string(key) + "\" not a number");
  return v.as_number();
}

std::string require_string(const JsonValue& doc, std::string_view key) {
  const JsonValue& v = require(doc, key);
  if (!v.is_string()) schema_fail("\"" + std::string(key) + "\" not a string");
  return v.as_string();
}

// Renders a key-column cell for row matching / the trend table.
std::string cell_as_key(const JsonValue& cell) {
  if (cell.is_string()) return cell.as_string();
  if (cell.is_number()) return format_double(cell.as_number());
  if (cell.is_bool()) return cell.as_bool() ? "true" : "false";
  return "?";
}

// Row identity = key columns joined with '/'; falls back to row order
// when the bench has no key columns at all.
std::string row_key(const std::vector<std::string>& header,
                    const std::vector<JsonValue>& row, std::size_t index) {
  std::string key;
  for (std::size_t c = 0; c < header.size() && c < row.size(); ++c) {
    if (classify_metric(header[c]) != MetricDirection::kKey) continue;
    if (!key.empty()) key.push_back('/');
    key += cell_as_key(row[c]);
  }
  if (key.empty()) key = "#" + std::to_string(index);
  return key;
}

// Relative dispersion for one metric of one row, combining the sidecar's
// cross-repetition map with a per-row "<metric>_rd" column when present.
double rel_dispersion(const Sidecar& s, const std::vector<JsonValue>& row,
                      std::string_view metric) {
  double rel = 0.0;
  if (const auto it = s.dispersion.find(std::string(metric));
      it != s.dispersion.end())
    rel = it->second.rel;
  const std::string rd_col = std::string(metric) + "_rd";
  for (std::size_t c = 0; c < s.header.size() && c < row.size(); ++c) {
    if (s.header[c] == rd_col && row[c].is_number())
      rel = std::max(rel, row[c].as_number());
  }
  return rel;
}

void compare_one(const std::string& key, const std::string& metric,
                 double base, double fresh, double base_rel, double fresh_rel,
                 const CompareOptions& options, CompareReport& report) {
  const MetricDirection dir = classify_metric(metric);
  CompareRow row;
  row.row_key = key;
  row.metric = metric;
  row.base = base;
  row.fresh = fresh;
  const double denom = std::abs(base);
  row.rel_change = denom > 0.0 ? (fresh - base) / denom : 0.0;
  if (dir == MetricDirection::kHigherBetter ||
      dir == MetricDirection::kLowerBetter) {
    row.gated = true;
    row.threshold =
        std::max(options.margin,
                 options.dispersion_mult * std::max(base_rel, fresh_rel));
    const double bad = dir == MetricDirection::kHigherBetter
                           ? -row.rel_change
                           : row.rel_change;
    row.regression = denom > 0.0 && bad > row.threshold;
  }
  if (row.regression) ++report.regressions;
  report.rows.push_back(std::move(row));
}

void parse_dispersion_map(const JsonValue& doc, Sidecar& out) {
  const JsonValue* disp = doc.find("dispersion");
  if (disp == nullptr) return;
  if (!disp->is_object()) schema_fail("\"dispersion\" not an object");
  for (const auto& [metric, entry] : disp->as_object()) {
    if (!entry.is_object())
      schema_fail("dispersion entry \"" + metric + "\" not an object");
    Dispersion d;
    d.n = static_cast<std::uint64_t>(require_number(entry, "n"));
    d.mean = require_number(entry, "mean");
    d.rel = require_number(entry, "rel");
    out.dispersion.emplace(metric, d);
  }
}

void parse_memory_map(const JsonValue& doc, Sidecar& out) {
  const JsonValue* mem = doc.find("memory");
  if (mem == nullptr) return;
  if (!mem->is_object()) schema_fail("\"memory\" not an object");
  for (const auto& [metric, value] : mem->as_object()) {
    if (!value.is_number())
      schema_fail("memory entry \"" + metric + "\" not a number");
    out.memory.emplace(metric, value.as_number());
  }
}

void parse_series(const JsonValue& doc, Sidecar& out) {
  const JsonValue& series = require(doc, "series");
  if (!series.is_object()) schema_fail("\"series\" not an object");
  const JsonValue& header = require(series, "header");
  if (!header.is_array()) schema_fail("series.header not an array");
  for (const JsonValue& h : header.as_array()) {
    if (!h.is_string()) schema_fail("series.header entry not a string");
    out.header.push_back(h.as_string());
  }
  const JsonValue& rows = require(series, "rows");
  if (!rows.is_array()) schema_fail("series.rows not an array");
  for (const JsonValue& r : rows.as_array()) {
    if (!r.is_array()) schema_fail("series row not an array");
    if (r.as_array().size() != out.header.size())
      schema_fail("ragged series row (want " +
                  std::to_string(out.header.size()) + " cells, got " +
                  std::to_string(r.as_array().size()) + ")");
    out.rows.push_back(r.as_array());
  }
}

}  // namespace

MetricDirection classify_metric(std::string_view name) {
  if (ends_with(name, "_rd")) return MetricDirection::kDispersion;
  if (ends_with(name, "_per_sec")) return MetricDirection::kHigherBetter;
  if (ends_with(name, "_ns") || ends_with(name, "_us") ||
      ends_with(name, "_ms") || ends_with(name, "_seconds") ||
      ends_with(name, "_bytes"))
    return MetricDirection::kLowerBetter;
  // Derived ratios: meaningful to eyeball, unstable to gate (their inputs
  // are gated already; gating both double-counts every wobble).
  if (ends_with(name, "_pct") || ends_with(name, "_fraction") ||
      ends_with(name, "_ratio") || name.find("speedup") != std::string::npos ||
      name == "coverage" || ends_with(name, "_coverage") ||
      name.find("imbalance") != std::string::npos)
    return MetricDirection::kInformational;
  return MetricDirection::kKey;
}

Sidecar parse_sidecar(std::string_view json_text) {
  const JsonValue doc = parse_json(json_text);
  if (!doc.is_object()) schema_fail("document not an object");
  Sidecar out;
  out.bench = require_string(doc, "bench");
  out.elapsed_seconds = require_number(doc, "elapsed_seconds");
  if (const JsonValue* v = doc.find("rounds"); v != nullptr && v->is_number())
    out.rounds = v->as_number();
  if (const JsonValue* v = doc.find("rounds_per_sec");
      v != nullptr && v->is_number())
    out.rounds_per_sec = v->as_number();
  if (const JsonValue* v = doc.find("sidecar_version")) {
    if (!v->is_number()) schema_fail("\"sidecar_version\" not a number");
    out.version = static_cast<int>(v->as_number());
  }
  if (const JsonValue* prov = doc.find("provenance")) {
    if (!prov->is_object()) schema_fail("\"provenance\" not an object");
    // Tolerant here (strictness lives in validate_sidecar_schema) so a
    // hand-trimmed baseline still diffs.
    const auto opt_str = [&](std::string_view key, std::string& into) {
      if (const JsonValue* v = prov->find(key); v != nullptr && v->is_string())
        into = v->as_string();
    };
    const auto opt_int = [&](std::string_view key, int& into) {
      if (const JsonValue* v = prov->find(key); v != nullptr && v->is_number())
        into = static_cast<int>(v->as_number());
    };
    opt_str("git_sha", out.provenance.git_sha);
    opt_str("build_type", out.provenance.build_type);
    opt_str("compiler", out.provenance.compiler);
    opt_int("threads", out.provenance.threads);
    opt_int("hardware_threads", out.provenance.hardware_threads);
    opt_int("repetitions", out.provenance.repetitions);
  }
  parse_series(doc, out);
  parse_dispersion_map(doc, out);
  parse_memory_map(doc, out);
  return out;
}

void validate_sidecar_schema(std::string_view json_text) {
  const JsonValue doc = parse_json(json_text);
  if (!doc.is_object()) schema_fail("document not an object");
  (void)require_string(doc, "bench");
  (void)require_number(doc, "elapsed_seconds");
  const double version = require_number(doc, "sidecar_version");
  if (version < 2.0)
    schema_fail("sidecar_version " + format_double(version) + " < 2");
  const JsonValue& prov = require(doc, "provenance");
  if (!prov.is_object()) schema_fail("\"provenance\" not an object");
  (void)require_string(prov, "git_sha");
  (void)require_string(prov, "build_type");
  (void)require_string(prov, "compiler");
  (void)require_number(prov, "threads");
  const double hw = require_number(prov, "hardware_threads");
  if (hw < 1.0) schema_fail("provenance.hardware_threads < 1");
  const double reps = require_number(prov, "repetitions");
  if (reps < 1.0) schema_fail("provenance.repetitions < 1");
  Sidecar parsed;  // reuse the structural checks on series + dispersion
  parse_series(doc, parsed);
  parse_dispersion_map(doc, parsed);
  parse_memory_map(doc, parsed);
  for (const auto& [metric, d] : parsed.dispersion) {
    if (d.n < 1) schema_fail("dispersion." + metric + ".n < 1");
    if (d.rel < 0.0) schema_fail("dispersion." + metric + ".rel < 0");
  }
  for (const auto& [metric, bytes] : parsed.memory) {
    if (bytes < 0.0) schema_fail("memory." + metric + " < 0");
  }
}

CompareReport compare_sidecars(const Sidecar& baseline, const Sidecar& fresh,
                               const CompareOptions& options) {
  CompareReport report;
  report.bench = fresh.bench;
  if (baseline.bench != fresh.bench)
    report.notes.push_back("bench name mismatch: baseline \"" +
                           baseline.bench + "\" vs fresh \"" + fresh.bench +
                           "\"");

  if (baseline.rounds_per_sec && fresh.rounds_per_sec) {
    double base_rel = 0.0;
    double fresh_rel = 0.0;
    if (const auto it = baseline.dispersion.find("rounds_per_sec");
        it != baseline.dispersion.end())
      base_rel = it->second.rel;
    if (const auto it = fresh.dispersion.find("rounds_per_sec");
        it != fresh.dispersion.end())
      fresh_rel = it->second.rel;
    compare_one("-", "rounds_per_sec", *baseline.rounds_per_sec,
                *fresh.rounds_per_sec, base_rel, fresh_rel, options, report);
  }

  // Memory figures compare like top-level scalars; metrics present on
  // only one side are noted (new instrumentation, not a regression).
  for (const auto& [metric, fresh_bytes] : fresh.memory) {
    const auto bit = baseline.memory.find(metric);
    if (bit == baseline.memory.end()) {
      report.notes.push_back("memory." + metric + " only in fresh run");
      continue;
    }
    double base_rel = 0.0;
    double fresh_rel = 0.0;
    if (const auto it = baseline.dispersion.find(metric);
        it != baseline.dispersion.end())
      base_rel = it->second.rel;
    if (const auto it = fresh.dispersion.find(metric);
        it != fresh.dispersion.end())
      fresh_rel = it->second.rel;
    compare_one("-", metric, bit->second, fresh_bytes, base_rel, fresh_rel,
                options, report);
  }
  for (const auto& [metric, bytes] : baseline.memory) {
    (void)bytes;
    if (fresh.memory.find(metric) == fresh.memory.end())
      report.notes.push_back("memory." + metric + " only in baseline");
  }

  if (baseline.header != fresh.header) {
    report.notes.push_back(
        "series header changed; comparing columns present in both runs");
  }

  // Index baseline rows by key (first occurrence wins; duplicate keys are
  // possible for benches without key columns, where "#i" keeps them apart).
  std::vector<std::pair<std::string, const std::vector<JsonValue>*>> base_rows;
  base_rows.reserve(baseline.rows.size());
  for (std::size_t i = 0; i < baseline.rows.size(); ++i)
    base_rows.emplace_back(row_key(baseline.header, baseline.rows[i], i),
                           &baseline.rows[i]);

  std::vector<bool> base_seen(base_rows.size(), false);
  for (std::size_t i = 0; i < fresh.rows.size(); ++i) {
    const std::string key = row_key(fresh.header, fresh.rows[i], i);
    const std::vector<JsonValue>* base_row = nullptr;
    for (std::size_t b = 0; b < base_rows.size(); ++b) {
      if (!base_seen[b] && base_rows[b].first == key) {
        base_seen[b] = true;
        base_row = base_rows[b].second;
        break;
      }
    }
    if (base_row == nullptr) {
      report.notes.push_back("row " + key + " only in fresh run");
      continue;
    }
    for (std::size_t c = 0; c < fresh.header.size(); ++c) {
      const std::string& metric = fresh.header[c];
      const MetricDirection dir = classify_metric(metric);
      if (dir == MetricDirection::kKey || dir == MetricDirection::kDispersion)
        continue;
      const auto bc = std::find(baseline.header.begin(),
                                baseline.header.end(), metric);
      if (bc == baseline.header.end()) continue;
      const std::size_t bi =
          static_cast<std::size_t>(bc - baseline.header.begin());
      if (!fresh.rows[i][c].is_number() || !(*base_row)[bi].is_number())
        continue;
      compare_one(key, metric, (*base_row)[bi].as_number(),
                  fresh.rows[i][c].as_number(),
                  rel_dispersion(baseline, *base_row, metric),
                  rel_dispersion(fresh, fresh.rows[i], metric), options,
                  report);
    }
  }
  for (std::size_t b = 0; b < base_rows.size(); ++b)
    if (!base_seen[b])
      report.notes.push_back("row " + base_rows[b].first +
                             " only in baseline");
  return report;
}

std::string scale_sidecar_metrics(std::string_view json_text, double factor) {
  if (!(factor > 0.0))
    throw std::runtime_error("scale_sidecar_metrics: factor must be > 0");
  JsonValue doc = parse_json(json_text);
  if (!doc.is_object()) schema_fail("document not an object");
  const auto scale = [&](JsonValue& cell, MetricDirection dir) {
    if (!cell.is_number()) return;
    if (dir == MetricDirection::kHigherBetter)
      cell = JsonValue(cell.as_number() * factor);
    else if (dir == MetricDirection::kLowerBetter)
      cell = JsonValue(cell.as_number() / factor);
  };
  if (JsonValue* v = doc.find("rounds_per_sec"))
    scale(*v, MetricDirection::kHigherBetter);
  if (JsonValue* mem = doc.find("memory"); mem != nullptr && mem->is_object())
    for (auto& [metric, cell] : mem->as_object())
      scale(cell, classify_metric(metric));
  if (JsonValue* series = doc.find("series")) {
    std::vector<MetricDirection> dirs;
    if (const JsonValue* header = series->find("header");
        header != nullptr && header->is_array()) {
      for (const JsonValue& h : header->as_array())
        dirs.push_back(h.is_string() ? classify_metric(h.as_string())
                                     : MetricDirection::kKey);
    }
    if (JsonValue* rows = series->find("rows"); rows != nullptr &&
                                                rows->is_array()) {
      for (JsonValue& row : rows->as_array()) {
        if (!row.is_array()) continue;
        auto& cells = row.as_array();
        for (std::size_t c = 0; c < cells.size() && c < dirs.size(); ++c)
          scale(cells[c], dirs[c]);
      }
    }
  }
  return to_json(doc);
}

}  // namespace cellflow::obs
