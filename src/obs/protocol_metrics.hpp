// Protocol-level instrumentation shared by the two realizations.
//
// ProtocolCounts is the plain per-shard accumulator the round engines
// fill inside their phase loops: no atomics, no registry access, just
// integer adds on shard-private memory. At each phase barrier the engine
// merges the shard structs in ascending shard order (the same discipline
// the event buffers follow — DESIGN.md §6) and flushes the round total
// into the registry once, on the calling thread. That makes every metric
// count bit-identical across ParallelPolicy modes and thread counts, and
// identical between the shared-variable System and the message-passing
// MessageSystem on equivalent executions (pinned by
// tests/test_metrics_differential.cpp).
//
// ProtocolMetrics resolves the counter handles once at attach time, so
// the per-round flush is a dozen pointer increments. The `realization`
// label ("shared" | "message") lets both engines share one registry.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace cellflow::obs {

/// One round's (or one shard's) protocol event tallies.
struct ProtocolCounts {
  // Route (Figure 4): neighbor dist values examined, and cells whose
  // dist actually changed this round.
  std::uint64_t route_relaxations = 0;
  std::uint64_t route_dist_changes = 0;

  // Signal (Figure 5): grants issued, grants refused by an occupied
  // entry strip, tokens handed to a *different* predecessor, and the
  // NEPrev set size of every non-faulty cell (4 neighbors max).
  std::uint64_t signal_grants = 0;
  std::uint64_t signal_blocks = 0;
  std::uint64_t signal_token_rotations = 0;
  std::array<std::uint64_t, 5> ne_prev_sizes{};  // tally of |NEPrev| = 0..4

  // Move (Figure 6): cells that applied a movement, entities handed
  // across a boundary (consumptions included), entities consumed.
  std::uint64_t moves = 0;
  std::uint64_t transfers = 0;
  std::uint64_t consumptions = 0;

  // Sources: accepted injections and proposals dropped by the safety
  // validation (gap / Invariant-1 / fairness guard).
  std::uint64_t injections = 0;
  std::uint64_t blocked_injections = 0;

  void merge(const ProtocolCounts& other) noexcept;
  void reset() noexcept { *this = ProtocolCounts{}; }
};

/// Pre-resolved registry handles for the protocol families. Construct
/// once per attach; add() flushes a merged ProtocolCounts.
class ProtocolMetrics {
 public:
  /// Registers (or re-finds) the cellflow_* protocol families in
  /// `registry`, labeled {realization="<realization>"}. The registry must
  /// outlive this object.
  ProtocolMetrics(MetricsRegistry& registry, std::string_view realization);

  /// Flushes one merged per-round tally into the registry.
  void add(const ProtocolCounts& counts);

  void add_round() { rounds_->inc(); }
  /// Environment transitions (fail/recover are not part of update()).
  void add_failure() { failures_->inc(); }
  void add_recovery() { recoveries_->inc(); }

 private:
  Counter* rounds_;
  Counter* route_relaxations_;
  Counter* route_dist_changes_;
  Counter* signal_grants_;
  Counter* signal_blocks_;
  Counter* signal_token_rotations_;
  Histogram* ne_prev_size_;
  Counter* moves_;
  Counter* transfers_;
  Counter* consumptions_;
  Counter* injections_;
  Counter* blocked_injections_;
  Counter* failures_;
  Counter* recoveries_;
};

}  // namespace cellflow::obs
