// PhaseProfiler: wall-clock spans for the round engine's phases and
// shards.
//
// Strictly outside protocol state: the profiler reads
// std::chrono::steady_clock (the repo-wide no-wall-clock rule bans clocks
// from *protocol decisions*; reporting-only timing is exactly the carved-
// out exception, and nothing downstream of a span ever feeds back into a
// round). Timings naturally differ run to run and thread count to thread
// count — only the metric *counts* of obs::MetricsRegistry are covered by
// the determinism contract.
//
// Span model: one span per (phase, round) with shard = -1, plus one span
// per (phase, round, shard) recorded by the worker that ran the shard,
// plus worker-attributed spans (shard = -1, worker >= 0, names "work" |
// "barrier_wait" | "dispatch") that render as per-worker tracks in
// Perfetto so barrier stalls are visible. record() is mutex-guarded —
// engines call it a handful of times per phase, not per cell, so
// contention is negligible. Counter samples (record_counter) export as
// Chrome "C" events: continuous tracks for imbalance and parallel work
// fraction.
//
// Storage is a bounded ring (set_capacity): when full, recording drops
// the *oldest* span/sample and counts the drop, so soak-scale runs hold
// a window of recent activity instead of growing without bound.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace cellflow::obs {

class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    const char* name = "";     ///< "route" | "signal" | "move" | "merge" |
                               ///< "inject" | "round" (engines may add more)
    std::uint64_t round = 0;
    int shard = -1;            ///< -1: whole phase; >= 0: one shard's slice
    int worker = -1;           ///< -1: caller thread; >= 0: pool worker track
    std::uint64_t start_ns = 0;  ///< relative to the profiler's epoch
    std::uint64_t duration_ns = 0;
  };

  /// One sampled value of a continuous counter track (Chrome "C" event).
  struct CounterSample {
    const char* name = "";
    std::uint64_t ts_ns = 0;  ///< relative to the profiler's epoch
    double value = 0.0;
  };

  /// Default ring capacity: ~1M spans (≈48 MB when full) covers hours of
  /// per-round spans at bench scale before the ring starts dropping.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit PhaseProfiler(std::size_t capacity = kDefaultCapacity)
      : epoch_(Clock::now()), capacity_(capacity ? capacity : 1) {}
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Re-bounds both rings (spans and counter samples), keeping the
  /// newest entries that fit. Drop counters are preserved. Thread-safe,
  /// but meant for setup, not the hot path.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  /// Records one completed span. `name` must point at storage outliving
  /// the profiler (the engines pass string literals). Thread-safe.
  void record(const char* name, std::uint64_t round, int shard,
              Clock::time_point start, Clock::time_point end);

  /// Worker-attributed variant: shard = -1, worker >= 0. Renders as a
  /// per-worker thread track in the Chrome-trace export.
  void record_worker(const char* name, std::uint64_t round, int worker,
                     Clock::time_point start, Clock::time_point end);

  /// Records one counter sample (its own bounded ring). Thread-safe.
  void record_counter(const char* name, Clock::time_point ts, double value);

  /// Copy of the retained spans, oldest first.
  [[nodiscard]] std::vector<Span> spans() const;

  /// Copy of the retained counter samples, oldest first.
  [[nodiscard]] std::vector<CounterSample> counter_samples() const;

  /// Sum of the durations of every shard == -1, worker == -1 span named
  /// `name` (whole-phase spans; excludes per-shard and per-worker spans).
  [[nodiscard]] std::uint64_t total_ns(std::string_view name) const;

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t counter_sample_count() const;

  /// Spans / counter samples overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped_spans() const;
  [[nodiscard]] std::uint64_t dropped_counter_samples() const;

  /// Drops all retained spans and samples and zeroes the drop counters.
  void clear();

  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

 private:
  void push_span(const Span& s);

  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::size_t capacity_;
  // Ring storage: grows by push_back until `capacity_`, then overwrites
  // in place at `head_` (the oldest entry). Ordered read-out is
  // [head_, end) ++ [0, head_).
  std::vector<Span> spans_;
  std::size_t span_head_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::vector<CounterSample> counters_;
  std::size_t counter_head_ = 0;
  std::uint64_t dropped_counters_ = 0;
};

}  // namespace cellflow::obs
