// PhaseProfiler: wall-clock spans for the round engine's phases and
// shards.
//
// Strictly outside protocol state: the profiler reads
// std::chrono::steady_clock (the repo-wide no-wall-clock rule bans clocks
// from *protocol decisions*; reporting-only timing is exactly the carved-
// out exception, and nothing downstream of a span ever feeds back into a
// round). Timings naturally differ run to run and thread count to thread
// count — only the metric *counts* of obs::MetricsRegistry are covered by
// the determinism contract.
//
// Span model: one span per (phase, round) with shard = -1, plus one span
// per (phase, round, shard) recorded by the worker that ran the shard.
// record() is mutex-guarded — workers call it once per phase, not per
// cell, so contention is negligible. Export to Chrome trace_event JSON
// (obs/export.hpp) renders shards as separate tracks in Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace cellflow::obs {

class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    const char* name = "";     ///< "route" | "signal" | "move" | "merge" |
                               ///< "inject" | "round" (engines may add more)
    std::uint64_t round = 0;
    int shard = -1;            ///< -1: whole phase; >= 0: one shard's slice
    std::uint64_t start_ns = 0;  ///< relative to the profiler's epoch
    std::uint64_t duration_ns = 0;
  };

  PhaseProfiler() : epoch_(Clock::now()) {}
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Records one completed span. `name` must point at storage outliving
  /// the profiler (the engines pass string literals). Thread-safe.
  void record(const char* name, std::uint64_t round, int shard,
              Clock::time_point start, Clock::time_point end);

  /// Copy of all spans recorded so far, in record() order.
  [[nodiscard]] std::vector<Span> spans() const;

  /// Sum of the durations of every shard == -1 span named `name`.
  [[nodiscard]] std::uint64_t total_ns(std::string_view name) const;

  [[nodiscard]] std::size_t span_count() const;

  void clear();

 private:
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

}  // namespace cellflow::obs
