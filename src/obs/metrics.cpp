#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace cellflow::obs {

namespace {

/// Lock-free add of a double into an atomic bit-pattern cell.
void add_double_bits(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  std::uint64_t wanted;
  do {
    wanted = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + delta);
  } while (!bits.compare_exchange_weak(old, wanted, std::memory_order_relaxed));
}

}  // namespace

void Gauge::set(double v) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::runtime_error("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::runtime_error("Histogram: bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe_many(double v, std::uint64_t n) noexcept {
  if (n == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto slot = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[slot].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  add_double_bits(sum_bits_, v * static_cast<double>(n));
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = buckets_[k].load(std::memory_order_relaxed);
  return out;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1))
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<double> bounds;  // histograms only
  std::vector<Labels> labels;  // parallel to the active metric vector
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;

  [[nodiscard]] std::size_t find(const Labels& want) const {
    for (std::size_t k = 0; k < labels.size(); ++k)
      if (labels[k] == want) return k;
    return labels.size();
  }
};

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t k = 1; k < labels.size(); ++k)
    if (labels[k].key == labels[k - 1].key)
      throw std::runtime_error("MetricsRegistry: duplicate label key '" +
                               labels[k].key + "'");
  return labels;
}

}  // namespace

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::family(
    std::string_view name, std::string_view help, MetricType type,
    const std::vector<double>& bounds) {
  if (!valid_metric_name(name))
    throw std::runtime_error("MetricsRegistry: invalid metric name '" +
                             std::string(name) + "'");
  if (const auto it = index_.find(name); it != index_.end()) {
    Family& f = *families_[it->second];
    if (f.type != type || f.help != help || f.bounds != bounds)
      throw std::runtime_error(
          "MetricsRegistry: conflicting redefinition of family '" +
          std::string(name) + "'");
    return f;
  }
  auto f = std::make_unique<Family>();
  f->name = std::string(name);
  f->help = std::string(help);
  f->type = type;
  f->bounds = bounds;
  families_.push_back(std::move(f));
  index_.emplace(std::string(name), families_.size() - 1);
  return *families_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, MetricType::kCounter, {});
  Labels want = canonical(std::move(labels));
  const std::size_t k = f.find(want);
  if (k < f.counters.size()) return *f.counters[k];
  f.labels.push_back(std::move(want));
  f.counters.push_back(std::make_unique<Counter>());
  return *f.counters.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, MetricType::kGauge, {});
  Labels want = canonical(std::move(labels));
  const std::size_t k = f.find(want);
  if (k < f.gauges.size()) return *f.gauges[k];
  f.labels.push_back(std::move(want));
  f.gauges.push_back(std::make_unique<Gauge>());
  return *f.gauges.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> upper_bounds,
                                      Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, MetricType::kHistogram, upper_bounds);
  Labels want = canonical(std::move(labels));
  const std::size_t k = f.find(want);
  if (k < f.histograms.size()) return *f.histograms[k];
  f.labels.push_back(std::move(want));
  f.histograms.push_back(std::make_unique<Histogram>(std::move(upper_bounds)));
  return *f.histograms.back();
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& fp : families_) {
    const Family& f = *fp;
    FamilySnapshot snap;
    snap.name = f.name;
    snap.help = f.help;
    snap.type = f.type;
    for (std::size_t k = 0; k < f.labels.size(); ++k) {
      SeriesSnapshot s;
      s.labels = f.labels[k];
      switch (f.type) {
        case MetricType::kCounter:
          s.counter_value = f.counters[k]->value();
          break;
        case MetricType::kGauge:
          s.gauge_value = f.gauges[k]->value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *f.histograms[k];
          s.count = h.count();
          s.sum = h.sum();
          const std::vector<std::uint64_t> raw = h.bucket_counts();
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b < raw.size(); ++b) {
            cum += raw[b];
            const double le = b < h.bounds().size()
                                  ? h.bounds()[b]
                                  : std::numeric_limits<double>::infinity();
            s.buckets.emplace_back(le, cum);
          }
          break;
        }
      }
      snap.series.push_back(std::move(s));
    }
    std::sort(snap.series.begin(), snap.series.end(),
              [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
                return a.labels < b.labels;
              });
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::size_t MetricsRegistry::family_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

}  // namespace cellflow::obs
