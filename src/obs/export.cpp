#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace cellflow::obs {

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral values print as integers (counter-like readability); the
  // 2^53 guard keeps the cast exact.
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf,
                                 static_cast<long long>(v));
    return std::string(buf, r.ptr);
  }
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Renders {k1="v1",k2="v2"}; empty labels render as nothing.
std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key + "=\"" + prom_escape(l.value) + '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + prom_escape(*extra_value) + '"';
  }
  out += '}';
  return out;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const FamilySnapshot& f : registry.snapshot()) {
    out += "# HELP " + f.name + ' ' + f.help + '\n';
    out += "# TYPE " + f.name + ' ' + type_name(f.type) + '\n';
    for (const SeriesSnapshot& s : f.series) {
      switch (f.type) {
        case MetricType::kCounter:
          out += f.name + prom_labels(s.labels) + ' ' +
                 std::to_string(s.counter_value) + '\n';
          break;
        case MetricType::kGauge:
          out += f.name + prom_labels(s.labels) + ' ' +
                 format_double(s.gauge_value) + '\n';
          break;
        case MetricType::kHistogram: {
          for (const auto& [le, cum] : s.buckets) {
            const std::string le_s = format_double(le);
            out += f.name + "_bucket" + prom_labels(s.labels, "le", &le_s) +
                   ' ' + std::to_string(cum) + '\n';
          }
          out += f.name + "_sum" + prom_labels(s.labels) + ' ' +
                 format_double(s.sum) + '\n';
          out += f.name + "_count" + prom_labels(s.labels) + ' ' +
                 std::to_string(s.count) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

namespace {

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(l.key) + "\":\"" + json_escape(l.value) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string jsonl_snapshot(const MetricsRegistry& registry,
                           std::uint64_t round) {
  std::string out = "{\"round\":" + std::to_string(round) + ",\"metrics\":[";
  bool first_series = true;
  for (const FamilySnapshot& f : registry.snapshot()) {
    for (const SeriesSnapshot& s : f.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"name\":\"" + json_escape(f.name) + "\",\"type\":\"" +
             type_name(f.type) + "\",\"labels\":" + json_labels(s.labels);
      switch (f.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + std::to_string(s.counter_value);
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + format_double(s.gauge_value);
          break;
        case MetricType::kHistogram: {
          out += ",\"count\":" + std::to_string(s.count) +
                 ",\"sum\":" + format_double(s.sum) + ",\"buckets\":[";
          bool first_bucket = true;
          for (const auto& [le, cum] : s.buckets) {
            if (!first_bucket) out += ',';
            first_bucket = false;
            // le as a string: JSON numbers cannot express +Inf.
            out += "{\"le\":\"" + format_double(le) +
                   "\",\"count\":" + std::to_string(cum) + '}';
          }
          out += ']';
          break;
        }
      }
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

std::string to_chrome_trace(const PhaseProfiler& profiler) {
  // Track layout: tid 0 = whole-phase spans, tid 1.. = per-shard spans,
  // tid kWorkerTidBase + w = pool worker w (its work/barrier_wait/
  // dispatch spans from ThreadPool timing — a Perfetto lane per worker,
  // so a barrier stall shows as a "barrier_wait" slice on the stalled
  // worker). Counter samples (record_counter) export as "C" events and
  // render as continuous counter tracks (imbalance, parallel work
  // fraction).
  constexpr int kWorkerTidBase = 100;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };
  int max_worker = -1;
  for (const PhaseProfiler::Span& s : profiler.spans()) {
    const int tid =
        s.worker >= 0 ? kWorkerTidBase + s.worker : s.shard + 1;
    if (s.worker > max_worker) max_worker = s.worker;
    // trace_event timestamps are microseconds; keep nanosecond precision
    // via fractional values.
    std::string ev = "{\"name\":\"" + json_escape(s.name) +
                     "\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":" +
                     format_double(static_cast<double>(s.start_ns) / 1000.0) +
                     ",\"dur\":" +
                     format_double(static_cast<double>(s.duration_ns) /
                                   1000.0) +
                     ",\"pid\":1,\"tid\":" + std::to_string(tid) +
                     ",\"args\":{\"round\":" + std::to_string(s.round);
    if (s.worker >= 0)
      ev += ",\"worker\":" + std::to_string(s.worker);
    else
      ev += ",\"shard\":" + std::to_string(s.shard);
    ev += "}}";
    append(ev);
  }
  for (const PhaseProfiler::CounterSample& c : profiler.counter_samples()) {
    append("{\"name\":\"" + json_escape(c.name) +
           "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":" +
           format_double(static_cast<double>(c.ts_ns) / 1000.0) +
           ",\"pid\":1,\"args\":{\"value\":" + format_double(c.value) + "}}");
  }
  // Name the worker lanes so Perfetto labels them "worker N" instead of
  // a bare tid.
  for (int w = 0; w <= max_worker; ++w) {
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(kWorkerTidBase + w) +
           ",\"args\":{\"name\":\"worker " + std::to_string(w) + "\"}}");
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

// --- Prometheus parser ----------------------------------------------------

namespace {

[[noreturn]] void prom_fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("prometheus parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

}  // namespace

std::vector<PromSample> parse_prometheus(std::string_view text) {
  std::vector<PromSample> samples;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    if (line.front() == '#') continue;  // HELP/TYPE/comments

    PromSample s;
    std::size_t k = 0;
    while (k < line.size() && line[k] != '{' && line[k] != ' ') ++k;
    s.name = std::string(line.substr(0, k));
    if (!valid_metric_name(s.name)) prom_fail(line_no, "bad metric name");

    if (k < line.size() && line[k] == '{') {
      ++k;
      while (k < line.size() && line[k] != '}') {
        std::size_t ke = k;
        while (ke < line.size() && line[ke] != '=') ++ke;
        if (ke == line.size()) prom_fail(line_no, "label missing '='");
        Label l;
        l.key = std::string(line.substr(k, ke - k));
        k = ke + 1;
        if (k >= line.size() || line[k] != '"')
          prom_fail(line_no, "label value not quoted");
        ++k;
        while (k < line.size() && line[k] != '"') {
          if (line[k] == '\\') {
            ++k;
            if (k >= line.size()) prom_fail(line_no, "dangling escape");
            if (line[k] == 'n') l.value += '\n';
            else l.value += line[k];
          } else {
            l.value += line[k];
          }
          ++k;
        }
        if (k >= line.size()) prom_fail(line_no, "unterminated label value");
        ++k;  // closing quote
        if (k < line.size() && line[k] == ',') ++k;
        s.labels.push_back(std::move(l));
      }
      if (k >= line.size()) prom_fail(line_no, "unterminated label set");
      ++k;  // '}'
    }
    if (k >= line.size() || line[k] != ' ')
      prom_fail(line_no, "missing value separator");
    ++k;
    const std::string value_s(line.substr(k));
    if (value_s.empty()) prom_fail(line_no, "missing value");
    if (value_s == "+Inf" || value_s == "Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else if (value_s == "-Inf") {
      s.value = -std::numeric_limits<double>::infinity();
    } else if (value_s == "NaN") {
      s.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      char* end = nullptr;
      s.value = std::strtod(value_s.c_str(), &end);
      if (end != value_s.c_str() + value_s.size())
        prom_fail(line_no, "malformed value '" + value_s + "'");
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

// --- JSON validator -------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  void run() {
    skip_ws();
    value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("bad literal (expected " + std::string(word) + ")");
    pos_ += word.size();
  }

  void string() {
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u':
            for (int k = 0; k < 4; ++k) {
              const char h = peek();
              ++pos_;
              const bool hex = (h >= '0' && h <= '9') ||
                               (h >= 'a' && h <= 'f') ||
                               (h >= 'A' && h <= 'F');
              if (!hex) fail("bad \\u escape");
            }
            break;
          default:
            fail("bad escape character");
        }
      }
    }
  }

  void number() {
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    } else {
      fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("malformed fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("malformed exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
  }

  void value() {
    switch (peek()) {
      case '{': object(); return;
      case '[': array(); return;
      case '"': string(); return;
      case 't': literal("true"); return;
      case 'f': literal("false"); return;
      case 'n': literal("null"); return;
      default: number(); return;
    }
  }

  void object() {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      string();
      skip_ws();
      expect(':');
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void array() {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void validate_json(std::string_view text) { JsonChecker(text).run(); }

// --- CSV block re-encoding (BENCH_*.json sidecars) ------------------------

namespace {

/// Strict JSON number grammar (RFC 8259 §6):
///   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
/// Checked character-by-character — deliberately NOT strtod, which is
/// locale-sensitive and full-matches non-JSON spellings ("5.", ".5",
/// "+1", "0x1p3", "inf").
bool is_json_number(std::string_view s) {
  std::size_t k = 0;
  const auto digit = [&](std::size_t i) {
    return i < s.size() && s[i] >= '0' && s[i] <= '9';
  };
  if (k < s.size() && s[k] == '-') ++k;
  if (!digit(k)) return false;
  if (s[k] == '0') {
    ++k;
  } else {
    while (digit(k)) ++k;
  }
  if (k < s.size() && s[k] == '.') {
    ++k;
    if (!digit(k)) return false;
    while (digit(k)) ++k;
  }
  if (k < s.size() && (s[k] == 'e' || s[k] == 'E')) {
    ++k;
    if (k < s.size() && (s[k] == '+' || s[k] == '-')) ++k;
    if (!digit(k)) return false;
    while (digit(k)) ++k;
  }
  return k == s.size();
}

}  // namespace

std::string csv_field_as_json(std::string_view field) {
  if (is_json_number(field)) return std::string(field);
  return '"' + json_escape(field) + '"';
}

std::string csv_block_as_json(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool in_csv = false;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!in_csv) {
      in_csv = line == "CSV:";
      continue;
    }
    if (line.empty()) break;
    lines.push_back(line);
  }
  std::string json = "{\"header\":[";
  std::string rows = "],\"rows\":[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string row;
    for (const std::string& f : parse_csv_line(lines[i])) {
      if (!row.empty()) row += ',';
      row += csv_field_as_json(f);
    }
    if (i == 0) {
      json += row;
    } else {
      rows += (i > 1 ? ",[" : "[") + row + ']';
    }
  }
  return json + rows + "]}";
}

}  // namespace cellflow::obs
