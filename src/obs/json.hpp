// Minimal JSON document model (parse + serialize) for the tooling layer.
//
// The observability exporters only ever *emit* JSON (obs/export.hpp), and
// `validate_json` only checks well-formedness. The bench-regression gate
// (obs/sidecar.hpp, tools/cellflow_bench_diff) needs more: it reads the
// BENCH_*.json sidecars back, compares metric columns between runs, and
// synthesizes doctored sidecars for the injected-regression fixture. That
// requires a real DOM, so this module provides one — a strict RFC 8259
// recursive-descent parser (same grammar as export.cpp's JsonChecker, with
// a recursion-depth limit) over a small variant-based value type, plus a
// serializer that reuses format_double/json_escape so round-tripped
// documents keep the repo-wide number formatting.
//
// Deliberately small: no comments, no trailing commas, no NaN/Inf literals
// (they are not JSON), object keys kept in *insertion order* (duplicate
// keys rejected) so a parse→serialize round trip is byte-stable apart from
// whitespace.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace cellflow::obs {

/// One JSON value. Objects preserve insertion order (a vector of pairs,
/// not a map) so serialization is byte-stable and diffs stay readable.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}                      // NOLINT
  JsonValue(bool b) : v_(b) {}                                    // NOLINT
  JsonValue(double d) : v_(d) {}                                  // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}                  // NOLINT
  JsonValue(const char* s) : v_(std::string(s)) {}                // NOLINT
  JsonValue(Array a) : v_(std::move(a)) {}                        // NOLINT
  JsonValue(Object o) : v_(std::move(o)) {}                       // NOLINT

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Typed accessors; throw std::runtime_error on a type mismatch (the
  /// sidecar layer turns those into schema errors with context).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member lookup by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] JsonValue* find(std::string_view key);

  /// Appends or replaces an object member (insertion order preserved for
  /// new keys). Throws if this value is not an object.
  void set(std::string_view key, JsonValue value);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Strict RFC 8259 parse of a complete document (trailing garbage
/// rejected, duplicate object keys rejected, nesting capped at depth 256).
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Serializes with the exporters' number format (format_double) and
/// string escaping (json_escape). `indent` > 0 pretty-prints with that
/// many spaces per level; 0 emits the compact single-line form.
[[nodiscard]] std::string to_json(const JsonValue& value, int indent = 0);

}  // namespace cellflow::obs
