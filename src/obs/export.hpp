// Exporters for the observability layer, plus the parsers/validators the
// test suite and the `cellflow_obs_check` smoke tool use to prove the
// exported bytes are well-formed.
//
// Three formats:
//   * Prometheus text exposition (to_prometheus) — a full registry
//     snapshot: # HELP / # TYPE headers, one sample line per series,
//     histograms expanded to _bucket{le=...}/_sum/_count.
//   * JSONL event stream (jsonl_snapshot) — one self-contained JSON
//     object per line: {"round":R,"metrics":[...]}; emitted periodically
//     by MetricsObserver (--metrics-every) and once at end of run.
//   * Chrome trace_event JSON (to_chrome_trace) — the PhaseProfiler's
//     spans as complete ("ph":"X") events; load the file in Perfetto or
//     chrome://tracing. Shards render as separate tid tracks; pool
//     workers get their own named lanes (work / barrier_wait / dispatch
//     spans), and counter samples render as "C" counter tracks.
//
// All exports are byte-deterministic functions of their input snapshot:
// families sorted by name, series by label set, doubles printed in
// shortest round-trip form (std::to_chars). Timings inside a Chrome
// trace are of course run-specific — determinism here means "same
// snapshot, same bytes", which is what the golden tests pin.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cellflow::obs {

/// Full registry snapshot in the Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// One JSONL event (single line, '\n'-terminated) carrying the round
/// number and a full metrics snapshot.
[[nodiscard]] std::string jsonl_snapshot(const MetricsRegistry& registry,
                                         std::uint64_t round);

/// The profiler's spans as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}). Phase spans (shard == -1) render on tid 0,
/// shard spans on tid shard+1, worker-attributed spans on their own
/// named lanes (tid 100+worker), counter samples as "C" events.
[[nodiscard]] std::string to_chrome_trace(const PhaseProfiler& profiler);

/// Shortest round-trip decimal form of `v` ("+Inf"/"-Inf"/"NaN" for the
/// non-finite values, integers without a trailing ".0") — the number
/// format shared by all three exporters.
[[nodiscard]] std::string format_double(double v);

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One CSV field as a JSON value: emitted bare iff it matches the strict
/// JSON number grammar (so "5.", ".5", "+1", "007", "nan", "inf" and hex
/// all stay quoted strings — strtod would accept them but a JSON parser
/// must not), otherwise as an escaped JSON string. Grammar-matched, not
/// strtod-matched, so the result is locale-independent: under a
/// comma-decimal locale strtod full-matches no fractional field, which
/// used to silently demote every numeric series to strings.
[[nodiscard]] std::string csv_field_as_json(std::string_view field);

/// Re-parses the `CSV:` block out of captured console text into
/// {"header":[...],"rows":[[...],...]} with csv_field_as_json applied
/// per field. The block starts after a line equal to "CSV:" and ends at
/// the first empty line; text without one yields empty header and rows.
/// Used by bench::BenchRecorder for the BENCH_<name>.json sidecars.
[[nodiscard]] std::string csv_block_as_json(const std::string& text);

// --- parsers / validators -------------------------------------------------

/// One sample line of the Prometheus text format.
struct PromSample {
  std::string name;
  Labels labels;
  double value = 0.0;

  friend bool operator==(const PromSample&, const PromSample&) = default;
};

/// Parses the Prometheus text exposition format (the subset to_prometheus
/// emits: # comments, name{labels} value). Throws std::runtime_error with
/// a line number on malformed input.
[[nodiscard]] std::vector<PromSample> parse_prometheus(std::string_view text);

/// Strict JSON well-formedness check (objects, arrays, strings, numbers,
/// true/false/null; trailing garbage rejected). Throws std::runtime_error
/// with an offset on malformed input. Validation only — no DOM.
void validate_json(std::string_view text);

}  // namespace cellflow::obs
