#include "obs/alloc_stats.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

namespace cellflow::obs {
namespace {

// Plain namespace-scope atomics: zero-initialized before any dynamic
// initialization, so interposer calls that happen during static init of
// other translation units are already counted correctly.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_linked{false};

}  // namespace

void note_alloc(std::size_t bytes) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void note_free() noexcept { g_frees.fetch_add(1, std::memory_order_relaxed); }

AllocTotals alloc_totals() noexcept {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

void mark_interposer_linked() noexcept {
  g_linked.store(true, std::memory_order_relaxed);
}

bool alloc_interposer_linked() noexcept {
  return g_linked.load(std::memory_order_relaxed);
}

ProcessMemory process_memory() noexcept {
  ProcessMemory mem;
  // C stdio, not fstream: callable from contexts where allocating is
  // unwelcome (the interposer's own binaries measure around this call).
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    // "VmRSS:   123456 kB" — procfs reports kB unconditionally.
    unsigned long long kb = 0;
    if (std::strncmp(line, "VmRSS:", 6) == 0 &&
        std::sscanf(line + 6, "%llu", &kb) == 1) {
      mem.vm_rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0 &&
               std::sscanf(line + 6, "%llu", &kb) == 1) {
      mem.vm_hwm_bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
    if (mem.vm_rss_bytes != 0 && mem.vm_hwm_bytes != 0) break;
  }
  std::fclose(f);
  return mem;
}

StoreStatsPublisher::StoreStatsPublisher(MetricsRegistry& registry,
                                         Labels labels)
    : resident_bytes_(&registry.gauge(
          "cellflow_store_resident_bytes",
          "Heap bytes materialized by the chunked cell store", labels)),
      resident_peak_(&registry.gauge(
          "cellflow_resident_bytes_peak",
          "Process peak resident set (VmHWM); falls back to the peak "
          "store figure observed when procfs is unavailable",
          labels)),
      live_(&registry.gauge("cellflow_store_chunks",
                            "Chunks per lifecycle state",
                            [&labels] {
                              Labels l = labels;
                              l.push_back({"state", "live"});
                              return l;
                            }())),
      parked_(&registry.gauge("cellflow_store_chunks",
                              "Chunks per lifecycle state",
                              [&labels] {
                                Labels l = labels;
                                l.push_back({"state", "parked"});
                                return l;
                              }())),
      virgin_(&registry.gauge("cellflow_store_chunks",
                              "Chunks per lifecycle state",
                              [&labels] {
                                Labels l = labels;
                                l.push_back({"state", "virgin"});
                                return l;
                              }())),
      materialized_(&registry.counter("cellflow_chunk_materialized_total",
                                      "virgin->live chunk transitions",
                                      labels)),
      parked_total_(&registry.counter("cellflow_chunk_parked_total",
                                      "live->parked chunk transitions",
                                      labels)),
      unparked_total_(&registry.counter("cellflow_chunk_unparked_total",
                                        "parked->live chunk transitions",
                                        std::move(labels))) {}

void StoreStatsPublisher::publish(const StoreStatsSample& sample) noexcept {
  resident_bytes_->set(static_cast<double>(sample.resident_bytes));
  live_->set(static_cast<double>(sample.live_chunks));
  parked_->set(static_cast<double>(sample.parked_chunks));
  virgin_->set(static_cast<double>(sample.virgin_chunks));
  // The lifecycle totals are monotone on the store; re-publishing feeds
  // the counters their delta so the exported series stays monotone too.
  materialized_->inc(sample.materialized_total - last_.materialized_total);
  parked_total_->inc(sample.parked_total - last_.parked_total);
  unparked_total_->inc(sample.unparked_total - last_.unparked_total);
  last_ = sample;
  peak_seen_ = std::max(peak_seen_, sample.resident_bytes);
  const std::uint64_t hwm = process_memory().vm_hwm_bytes;
  resident_peak_->set(static_cast<double>(hwm != 0 ? hwm : peak_seen_));
}

}  // namespace cellflow::obs
