#include "obs/alloc_stats.hpp"

#include <atomic>

namespace cellflow::obs {
namespace {

// Plain namespace-scope atomics: zero-initialized before any dynamic
// initialization, so interposer calls that happen during static init of
// other translation units are already counted correctly.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_linked{false};

}  // namespace

void note_alloc(std::size_t bytes) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void note_free() noexcept { g_frees.fetch_add(1, std::memory_order_relaxed); }

AllocTotals alloc_totals() noexcept {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

void mark_interposer_linked() noexcept {
  g_linked.store(true, std::memory_order_relaxed);
}

bool alloc_interposer_linked() noexcept {
  return g_linked.load(std::memory_order_relaxed);
}

}  // namespace cellflow::obs
