// Global operator-new/delete replacement that feeds obs/alloc_stats.
//
// NOT part of the cellflow library. This translation unit is compiled
// into its own object library (cellflow_alloc_interposer in
// src/CMakeLists.txt) and linked ONLY into the binaries that measure
// allocation — tests/test_alloc_churn and bench/micro_alloc_churn.
// Linking it anywhere else would tax every allocation in that binary
// with two atomic increments; linking it nowhere leaves alloc_stats'
// counters at zero and alloc_interposer_linked() false.
//
// [new.delete.single]: replacing the (size_t) and (size_t, align_val_t)
// throwing forms is sufficient — the default nothrow and array forms
// forward to them — but we replace the whole family anyway so the count
// does not depend on libstdc++'s forwarding choices.
#include <cstdlib>
#include <new>

#include "obs/alloc_stats.hpp"

namespace {

// Flips the "instrumented binary" flag during static initialization.
[[maybe_unused]] const bool g_marked = [] {
  cellflow::obs::mark_interposer_linked();
  return true;
}();

void* counted_alloc(std::size_t size) noexcept {
  cellflow::obs::note_alloc(size);
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  cellflow::obs::note_alloc(size);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded == 0 ? align : padded);
}

void counted_free(void* p) noexcept {
  if (p != nullptr) cellflow::obs::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}
