// Failure environments.
//
// The paper's analysis (§III) treats fail(⟨i,j⟩) as an environment action
// with two regimes: an arbitrary-but-finite failure sequence (for the
// stabilization results), and §IV's stochastic regime where every cell
// fails with probability pf and every failed cell recovers with
// probability pr, independently per round (Figure 9). A FailureModel is
// asked once per round, *before* the System's update(), to drive the
// fail/recover transitions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/system.hpp"
#include "grid/path.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cellflow {

class FailureModel {
 public:
  virtual ~FailureModel() = default;

  /// Applies this round's fail/recover transitions to `sys`.
  virtual void apply(System& sys) = 0;

  /// True once the model will never issue another fail transition — the
  /// paper's "new failures cease" point, after which the stabilization
  /// guarantees (Lemma 6, Theorem 10) kick in. Stochastic models return
  /// false forever.
  [[nodiscard]] virtual bool quiescent() const noexcept { return true; }

  /// Appends the model's mutable state as opaque u64 words (snapshot
  /// support, DESIGN.md §11). Stateless models append nothing.
  virtual void encode_state(std::vector<std::uint64_t>&) const {}

  /// Restores state captured by encode_state(). Returns false when the
  /// word count does not match this model.
  [[nodiscard]] virtual bool decode_state(
      std::span<const std::uint64_t> words) {
    return words.empty();
  }
};

/// The failure-free environment.
class NoFailures final : public FailureModel {
 public:
  void apply(System&) override {}
};

/// A scripted schedule of fail/recover actions at specific rounds, for
/// deterministic stabilization experiments ("fail these 3 cells at round
/// 50, recover one at round 200").
class ScriptedFailures final : public FailureModel {
 public:
  struct Action {
    std::uint64_t round;
    CellId cell;
    bool recover = false;  // false = fail
  };

  /// Actions may be given in any order; they are applied at the matching
  /// System round.
  explicit ScriptedFailures(std::vector<Action> actions);

  void apply(System& sys) override;
  [[nodiscard]] bool quiescent() const noexcept override;

  /// Round after which no more *fail* actions remain (the xf of §III-C);
  /// 0 when the script contains no fails.
  [[nodiscard]] std::uint64_t last_fail_round() const noexcept {
    return last_fail_round_;
  }

  void encode_state(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override;

 private:
  std::vector<Action> actions_;  // sorted by round
  std::size_t cursor_ = 0;
  std::uint64_t last_fail_round_ = 0;
};

/// §IV's stochastic model: each round every non-faulty cell fails with
/// probability pf and every faulty cell recovers with probability pr,
/// i.i.d. across cells and rounds. `protect_target` exempts the target
/// (assumption (a) of §III-B); Figure 9's experiment does not protect it
/// (recovery explicitly resets dist_tid, so the paper's target does fail).
class RandomFailRecover final : public FailureModel {
 public:
  RandomFailRecover(double pf, double pr, std::uint64_t seed,
                    bool protect_target = false);

  void apply(System& sys) override;
  [[nodiscard]] bool quiescent() const noexcept override { return false; }

  [[nodiscard]] std::uint64_t total_failures() const noexcept {
    return total_failures_;
  }
  [[nodiscard]] std::uint64_t total_recoveries() const noexcept {
    return total_recoveries_;
  }

  void encode_state(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode_state(
      std::span<const std::uint64_t> words) override;

 private:
  double pf_;
  double pr_;
  Xoshiro256 rng_;
  bool protect_target_;
  std::uint64_t total_failures_ = 0;
  std::uint64_t total_recoveries_ = 0;
};

/// Permanently fails every cell NOT on `path` (at round 0, once). This
/// carves the path into the grid so Route has exactly one choice at every
/// hop — how the Figure-8 experiments force a prescribed number of turns.
void carve_path(System& sys, const Path& path);

/// Permanently fails every cell not in `keep`.
void carve_mask(System& sys, const CellMask& keep);

}  // namespace cellflow
