#include "failure/failure_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {

ScriptedFailures::ScriptedFailures(std::vector<Action> actions)
    : actions_(std::move(actions)) {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& a, const Action& b) {
                     return a.round < b.round;
                   });
  for (const Action& a : actions_)
    if (!a.recover) last_fail_round_ = std::max(last_fail_round_, a.round);
}

void ScriptedFailures::apply(System& sys) {
  const std::uint64_t now = sys.round();
  while (cursor_ < actions_.size() && actions_[cursor_].round <= now) {
    const Action& a = actions_[cursor_];
    if (a.recover) {
      sys.recover(a.cell);
    } else {
      sys.fail(a.cell);
    }
    ++cursor_;
  }
}

bool ScriptedFailures::quiescent() const noexcept {
  for (std::size_t k = cursor_; k < actions_.size(); ++k)
    if (!actions_[k].recover) return false;
  return true;
}

void ScriptedFailures::encode_state(std::vector<std::uint64_t>& out) const {
  out.push_back(cursor_);
}

bool ScriptedFailures::decode_state(std::span<const std::uint64_t> words) {
  if (words.size() != 1 || words[0] > actions_.size()) return false;
  cursor_ = static_cast<std::size_t>(words[0]);
  return true;
}

RandomFailRecover::RandomFailRecover(double pf, double pr, std::uint64_t seed,
                                     bool protect_target)
    : pf_(pf), pr_(pr), rng_(seed), protect_target_(protect_target) {
  CF_EXPECTS(pf >= 0.0 && pf <= 1.0);
  CF_EXPECTS(pr >= 0.0 && pr <= 1.0);
}

void RandomFailRecover::apply(System& sys) {
  // One Bernoulli draw per cell per round, in id order, so executions are
  // reproducible from the seed regardless of grid contents.
  for (const CellId id : sys.grid().all_cells()) {
    const bool failed = sys.cell(id).failed;
    if (failed) {
      if (rng_.bernoulli(pr_)) {
        sys.recover(id);
        ++total_recoveries_;
      }
    } else {
      if (protect_target_ && id == sys.target()) {
        (void)rng_.bernoulli(pf_);  // keep the stream aligned
        continue;
      }
      if (rng_.bernoulli(pf_)) {
        sys.fail(id);
        ++total_failures_;
      }
    }
  }
}

void RandomFailRecover::encode_state(std::vector<std::uint64_t>& out) const {
  const auto words = rng_.state();
  out.insert(out.end(), words.begin(), words.end());
  out.push_back(total_failures_);
  out.push_back(total_recoveries_);
}

bool RandomFailRecover::decode_state(std::span<const std::uint64_t> words) {
  if (words.size() != 6) return false;
  rng_.set_state({words[0], words[1], words[2], words[3]});
  total_failures_ = words[4];
  total_recoveries_ = words[5];
  return true;
}

void carve_path(System& sys, const Path& path) {
  for (const CellId id : sys.grid().all_cells())
    if (!path.contains(id)) sys.fail(id);
}

void carve_mask(System& sys, const CellMask& keep) {
  CF_EXPECTS(keep.side() == sys.grid().side());
  for (const CellId id : sys.grid().all_cells())
    if (!keep.test(id)) sys.fail(id);
}

}  // namespace cellflow
