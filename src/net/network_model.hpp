// NetworkModel: the transport abstraction behind the message-passing
// realization, mirroring FailureModel's shape (src/failure). The round
// driver owns one instance and pushes every exchange through it:
//
//   net.begin_round(r);          // once per protocol round
//   net.send(m); ...             // any number of times per exchange
//   auto inboxes = net.deliver_all(grid);   // the exchange barrier
//
// Delivery order is CANONICAL and documented: at the barrier, messages
// are stable-sorted by (receiver, sender) — CellId order — which, with
// per-link FIFO send order preserved by the stable sort, makes each inbox
// ascending in sender id and each (sender → receiver) link in payload
// order. Every realization sees the same base order, so a faulty
// delivery schedule is a seeded transformation of a deterministic
// sequence, not incidental queue order.
//
// Subclasses shape *which* queued messages the barrier delivers (drop,
// delay, duplicate, partition — see faulty_network.hpp) by overriding
// `transmit`; the reliable SyncNetwork below delivers everything. The
// base class owns the queue, the canonical sort, per-payload-type send
// counters, and per-type fault counters (zero for a reliable network).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace cellflow::snapshot {
struct Access;
}  // namespace cellflow::snapshot

namespace cellflow {

class Grid;

/// Transport fault kinds, indexable for per-type statistics.
enum class NetFault : std::size_t {
  kDropped = 0,
  kDelayed = 1,
  kDuplicated = 2,
  kPartitioned = 3,
};
inline constexpr std::size_t kNetFaultCount = 4;

[[nodiscard]] constexpr const char* to_string(NetFault f) {
  switch (f) {
    case NetFault::kDropped: return "dropped";
    case NetFault::kDelayed: return "delayed";
    case NetFault::kDuplicated: return "duplicated";
    case NetFault::kPartitioned: return "partitioned";
  }
  return "?";
}

class NetworkModel {
 public:
  NetworkModel() = default;
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;
  virtual ~NetworkModel() = default;

  /// Round boundary notification (before the round's first exchange).
  virtual void begin_round(std::uint64_t round);

  /// Queues a message for the current exchange.
  void send(Message m);

  /// Exchange barrier: runs the fault schedule over the queue, clears it,
  /// and returns the surviving messages in canonical order as one inbox
  /// per process, indexed by `grid.index_of(receiver)`.
  [[nodiscard]] std::vector<std::vector<Message>> deliver_all(
      const Grid& grid);

  /// Buffer-reusing form of the barrier: fills `inboxes` (resized to
  /// grid.cell_count(); each inbox cleared, capacity retained) instead of
  /// returning fresh vectors, so a caller that passes the same buffers
  /// every exchange stops allocating once they are warm. Semantically
  /// identical to the returning form — the MessageSystem round loop uses
  /// this one.
  void deliver_all(const Grid& grid,
                   std::vector<std::vector<Message>>& inboxes);

  /// True once the schedule can no longer perturb an exchange: no fault
  /// will fire and nothing is buffered for late delivery. Mirrors
  /// FailureModel::quiescent so stabilization-after-faults-cease is
  /// testable with the same notion of "the adversary has stopped".
  [[nodiscard]] virtual bool quiescent() const noexcept { return true; }

  // --- Statistics -----------------------------------------------------

  /// Messages accepted by send() since construction (all exchanges).
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  /// Messages accepted by send(), by payload type.
  [[nodiscard]] std::uint64_t sent_count(PayloadType t) const noexcept {
    return sent_counts_[static_cast<std::size_t>(t)];
  }
  /// Messages delivered at the most recent barrier.
  [[nodiscard]] std::uint64_t last_exchange_messages() const noexcept {
    return last_exchange_;
  }
  /// Barriers (deliver_all calls) since construction.
  [[nodiscard]] std::uint64_t barrier_count() const noexcept {
    return barriers_;
  }
  /// Faults applied so far, by kind and payload type. A reliable network
  /// reports zero everywhere.
  [[nodiscard]] std::uint64_t fault_count(NetFault f,
                                          PayloadType t) const noexcept {
    return fault_counts_[static_cast<std::size_t>(f)]
                        [static_cast<std::size_t>(t)];
  }
  /// Faults of one kind summed over payload types.
  [[nodiscard]] std::uint64_t fault_count(NetFault f) const noexcept;

 protected:
  /// Fault-schedule hook: consume `sent` (this exchange's queue, in send
  /// order) and append every message to deliver at this barrier to `out`
  /// (passed in empty; order irrelevant — the caller canonicalizes). The
  /// base barrier index and round are available via barrier_count() /
  /// current_round(). The reliable base swaps the buffers, so the queue
  /// and delivery vectors ping-pong without allocating.
  virtual void transmit(std::vector<Message>&& sent,
                        std::vector<Message>& out);

  [[nodiscard]] std::uint64_t current_round() const noexcept {
    return round_;
  }
  void note_fault(NetFault f, PayloadType t) noexcept {
    ++fault_counts_[static_cast<std::size_t>(f)][static_cast<std::size_t>(t)];
  }

 private:
  // Snapshot/restore (src/snapshot) serializes the transport counters.
  friend struct snapshot::Access;

  std::vector<Message> in_flight_;
  std::vector<Message> deliver_;      ///< barrier scratch, reused per exchange
  std::vector<std::size_t> order_;    ///< canonical-sort permutation scratch
  std::uint64_t round_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t last_exchange_ = 0;
  std::uint64_t barriers_ = 0;
  std::array<std::uint64_t, kPayloadTypeCount> sent_counts_{};
  std::array<std::array<std::uint64_t, kPayloadTypeCount>, kNetFaultCount>
      fault_counts_{};
};

/// The reliable instance: every queued message is delivered, unaltered,
/// at the next barrier (paper §II-B's synchronous broadcast reading).
class SyncNetwork final : public NetworkModel {};

}  // namespace cellflow
