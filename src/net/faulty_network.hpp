// FaultyNetwork: a NetworkModel that subjects every exchange to a
// seeded, deterministic fault schedule — the adversary of the
// stabilization theorems (Lemma 6, Theorem 10) made executable.
//
// Faults, applied per message in canonical send order, one Xoshiro256
// stream for the whole schedule:
//
//   partition    an active partition separates sender and receiver →
//                the message is cut (no RNG draw; partitions are
//                scripted, not sampled)
//   drop         i.i.d. with probability drop_prob
//   duplicate    i.i.d. with probability dup_prob: a second copy is
//                delivered at the same barrier
//   delay        i.i.d. with probability delay_prob: the message
//                resurfaces 1..max_delay_rounds ROUNDS later, at the
//                same exchange position of the later round (delays are
//                whole multiples of kExchangesPerRound barriers, so a
//                delayed DistAnnounce arrives at a dist barrier — a
//                genuinely stale value, not a payload at the wrong
//                phase)
//
// With all probabilities zero and no partitions the schedule consumes no
// randomness and delivers exactly SyncNetwork's schedule — bit-identical
// executions (pinned by tests/test_net_faults.cpp's differential).
//
// Quiescence mirrors FailureModel: the stochastic faults cease after
// `last_fault_round` (inclusive), and quiescent() reports true once the
// current round is past it, every partition has healed, and the delay
// buffer has drained — from that barrier on the network is
// indistinguishable from SyncNetwork, which is what the restabilization
// tests and bench/ablation_message_loss key on.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "grid/mask.hpp"
#include "net/network_model.hpp"
#include "util/rng.hpp"

namespace cellflow {

/// A scripted partition: while active (start_round ≤ round < end_round),
/// every message between a cell in `side` and a cell outside it is cut.
/// Set `side` to a single link's endpoint region for a link partition or
/// to a half-grid for a region partition; it heals at end_round.
struct NetPartition {
  std::uint64_t start_round = 0;
  std::uint64_t end_round = 0;
  CellMask side;

  [[nodiscard]] bool active(std::uint64_t round) const noexcept {
    return round >= start_round && round < end_round;
  }
  [[nodiscard]] bool healed(std::uint64_t round) const noexcept {
    return round >= end_round;
  }
  /// True iff the partition, active at `round`, separates a from b.
  [[nodiscard]] bool cuts(std::uint64_t round, CellId a, CellId b) const {
    return active(round) && side.test(a) != side.test(b);
  }
};

struct NetFaultSpec {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  /// Delay magnitude: uniform in 1..max_delay_rounds whole rounds.
  std::uint64_t max_delay_rounds = 1;
  /// Last round (inclusive) in which the stochastic faults may fire;
  /// the default never ceases (a stochastic-forever adversary).
  std::uint64_t last_fault_round = std::numeric_limits<std::uint64_t>::max();
  std::vector<NetPartition> partitions;

  [[nodiscard]] bool stochastic() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
};

class FaultyNetwork final : public NetworkModel {
 public:
  FaultyNetwork(NetFaultSpec spec, std::uint64_t seed)
      : spec_(std::move(spec)), rng_(seed) {}

  void begin_round(std::uint64_t round) override;
  [[nodiscard]] bool quiescent() const noexcept override;

  [[nodiscard]] const NetFaultSpec& spec() const noexcept { return spec_; }
  /// Messages currently buffered for late delivery.
  [[nodiscard]] std::size_t delayed_in_flight() const noexcept {
    return delayed_.size();
  }

 protected:
  void transmit(std::vector<Message>&& sent,
                std::vector<Message>& out) override;

 private:
  // Snapshot/restore (src/snapshot) serializes the fault stream and the
  // delayed-message queue.
  friend struct snapshot::Access;

  struct Delayed {
    std::uint64_t release_barrier;
    Message message;
  };

  NetFaultSpec spec_;
  Xoshiro256 rng_;
  std::vector<Delayed> delayed_;
};

}  // namespace cellflow
