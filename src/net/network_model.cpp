#include "net/network_model.hpp"

#include <algorithm>
#include <utility>

#include "grid/grid.hpp"
#include "util/check.hpp"

namespace cellflow {

void NetworkModel::begin_round(std::uint64_t round) { round_ = round; }

void NetworkModel::send(Message m) {
  ++sent_counts_[static_cast<std::size_t>(payload_type_of(m.payload))];
  ++total_messages_;
  in_flight_.push_back(std::move(m));
}

std::vector<std::vector<Message>> NetworkModel::deliver_all(const Grid& grid) {
  std::vector<std::vector<Message>> inboxes;
  deliver_all(grid, inboxes);
  return inboxes;
}

void NetworkModel::deliver_all(const Grid& grid,
                               std::vector<std::vector<Message>>& inboxes) {
  deliver_.clear();
  transmit(std::move(in_flight_), deliver_);
  in_flight_.clear();
  ++barriers_;
  last_exchange_ = deliver_.size();

  // Canonical delivery order: (receiver, sender) in CellId order with
  // per-link send order preserved, so each inbox reads ascending in
  // sender id and every (sender → receiver) link FIFO. Sorting an index
  // array with the queue position as the explicit tie break gives the
  // stable order without std::stable_sort's per-call temporary buffer
  // (the barrier runs five times per round — DESIGN.md §10 keeps it
  // allocation-free once order_'s capacity is warm).
  order_.resize(deliver_.size());
  for (std::size_t k = 0; k < order_.size(); ++k) order_[k] = k;
  std::sort(order_.begin(), order_.end(),
            [this](std::size_t a, std::size_t b) {
              const Message& ma = deliver_[a];
              const Message& mb = deliver_[b];
              if (ma.receiver != mb.receiver) return ma.receiver < mb.receiver;
              if (ma.sender != mb.sender) return ma.sender < mb.sender;
              return a < b;
            });

  inboxes.resize(grid.cell_count());
  for (std::vector<Message>& inbox : inboxes) inbox.clear();
  for (const std::size_t k : order_) {
    Message& m = deliver_[k];
    CF_EXPECTS_MSG(grid.contains(m.receiver), "message to unknown process");
    inboxes[grid.index_of(m.receiver)].push_back(std::move(m));
  }
}

void NetworkModel::transmit(std::vector<Message>&& sent,
                            std::vector<Message>& out) {
  // `out` arrives empty (see the header contract): swapping hands the
  // queue to the barrier and recycles the previous delivery buffer as
  // the next round's queue — no allocation either way.
  out.swap(sent);
}

std::uint64_t NetworkModel::fault_count(NetFault f) const noexcept {
  std::uint64_t n = 0;
  for (std::size_t t = 0; t < kPayloadTypeCount; ++t)
    n += fault_counts_[static_cast<std::size_t>(f)][t];
  return n;
}

}  // namespace cellflow
