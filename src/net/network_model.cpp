#include "net/network_model.hpp"

#include <algorithm>
#include <utility>

#include "grid/grid.hpp"
#include "util/check.hpp"

namespace cellflow {

void NetworkModel::begin_round(std::uint64_t round) { round_ = round; }

void NetworkModel::send(Message m) {
  ++sent_counts_[static_cast<std::size_t>(payload_type_of(m.payload))];
  ++total_messages_;
  in_flight_.push_back(std::move(m));
}

std::vector<std::vector<Message>> NetworkModel::deliver_all(const Grid& grid) {
  std::vector<Message> deliver;
  deliver.reserve(in_flight_.size());
  transmit(std::move(in_flight_), deliver);
  in_flight_.clear();
  ++barriers_;
  last_exchange_ = deliver.size();

  // Canonical delivery order: (receiver, sender) in CellId order; the
  // stable sort preserves per-link send order as the payload-index tie
  // break, so each inbox reads ascending in sender id with every
  // (sender → receiver) link FIFO.
  std::stable_sort(deliver.begin(), deliver.end(),
                   [](const Message& a, const Message& b) {
                     if (a.receiver != b.receiver)
                       return a.receiver < b.receiver;
                     return a.sender < b.sender;
                   });

  std::vector<std::vector<Message>> inboxes(grid.cell_count());
  for (Message& m : deliver) {
    CF_EXPECTS_MSG(grid.contains(m.receiver), "message to unknown process");
    inboxes[grid.index_of(m.receiver)].push_back(std::move(m));
  }
  return inboxes;
}

void NetworkModel::transmit(std::vector<Message>&& sent,
                            std::vector<Message>& out) {
  out = std::move(sent);
}

std::uint64_t NetworkModel::fault_count(NetFault f) const noexcept {
  std::uint64_t n = 0;
  for (std::size_t t = 0; t < kPayloadTypeCount; ++t)
    n += fault_counts_[static_cast<std::size_t>(f)][t];
  return n;
}

}  // namespace cellflow
