#include "net/faulty_network.hpp"

#include <algorithm>

namespace cellflow {

void FaultyNetwork::begin_round(std::uint64_t round) {
  NetworkModel::begin_round(round);
}

bool FaultyNetwork::quiescent() const noexcept {
  if (spec_.stochastic() && current_round() <= spec_.last_fault_round)
    return false;
  for (const NetPartition& p : spec_.partitions)
    if (!p.healed(current_round())) return false;
  return delayed_.empty();
}

void FaultyNetwork::transmit(std::vector<Message>&& sent,
                             std::vector<Message>& out) {
  const std::uint64_t barrier = barrier_count();
  const std::uint64_t round = current_round();

  // Release buffered messages whose delay elapsed — before this
  // exchange's fresh sends, preserving per-link FIFO for the canonical
  // sort's tie break (the delayed message was sent in an earlier round).
  for (Delayed& d : delayed_)
    if (d.release_barrier == barrier) out.push_back(std::move(d.message));
  delayed_.erase(std::remove_if(delayed_.begin(), delayed_.end(),
                                [barrier](const Delayed& d) {
                                  return d.release_barrier == barrier;
                                }),
                 delayed_.end());

  const bool stochastic =
      spec_.stochastic() && round <= spec_.last_fault_round;

  for (Message& m : sent) {
    const PayloadType type = payload_type_of(m.payload);

    // Scripted partitions cut deterministically, consuming no randomness.
    const bool cut = std::any_of(
        spec_.partitions.begin(), spec_.partitions.end(),
        [&](const NetPartition& p) { return p.cuts(round, m.sender, m.receiver); });
    if (cut) {
      note_fault(NetFault::kPartitioned, type);
      continue;
    }

    if (stochastic) {
      if (spec_.drop_prob > 0.0 && rng_.bernoulli(spec_.drop_prob)) {
        note_fault(NetFault::kDropped, type);
        continue;
      }
      if (spec_.dup_prob > 0.0 && rng_.bernoulli(spec_.dup_prob)) {
        note_fault(NetFault::kDuplicated, type);
        out.push_back(m);  // extra copy at this barrier; original follows
      }
      if (spec_.delay_prob > 0.0 && rng_.bernoulli(spec_.delay_prob)) {
        note_fault(NetFault::kDelayed, type);
        const std::uint64_t rounds_late =
            1 + rng_.below(std::max<std::uint64_t>(spec_.max_delay_rounds, 1));
        delayed_.push_back(Delayed{
            barrier + rounds_late * kExchangesPerRound, std::move(m)});
        continue;
      }
    }
    out.push_back(std::move(m));
  }
}

}  // namespace cellflow
