// Message vocabulary of the distributed realization (paper §II-B). One
// protocol round decomposes into five synchronous exchanges:
//
//   exchange 1:  DistAnnounce{dist}             → Route inputs
//   exchange 2:  IntentAnnounce{next, nonempty} → Signal inputs (NEPrev)
//   exchange 3:  GrantAnnounce{signal, seq, rd} → Move guard
//   exchange 4:  TransferBatch{seq, entities}   → Members hand-off
//   exchange 5:  TransferAck{seq}               → hand-off confirmation
//
// Exchanges 4–5 implement a per-link stop-and-wait session so the data
// plane is loss-proof by construction (DESIGN.md §8): the sender retains
// the entities it flushed at the boundary and re-offers the batch every
// round until the receiver confirms; `seq` (stamped from the receiver's
// grant) deduplicates re-offers and duplicated deliveries. Control-plane
// messages are droppable with the paper's footnote-1 semantics: a missed
// DistAnnounce reads as dist = ∞, a missed IntentAnnounce as "does not
// want in", a missed GrantAnnounce as signal = ⊥. A GrantAnnounce
// additionally carries the round it was issued in and *expires* with
// that round — §II-B's exchange structure exists precisely because Move
// must read fresh signal values, so a delayed grant confers nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "core/entity.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// Synchronous exchanges (network barriers) per protocol round.
inline constexpr std::uint64_t kExchangesPerRound = 5;

/// Exchange 1 payload: routing estimate.
struct DistAnnounce {
  Dist dist;
};

/// Exchange 2 payload: forwarding intent and occupancy.
struct IntentAnnounce {
  OptCellId next;
  bool has_entities = false;
};

/// Exchange 3 payload: permission grant. `seq` numbers the session the
/// receiver may answer with a TransferBatch; `round` is the issue round —
/// the permission expires when the round ends (a delayed grant must not
/// authorize a move against a strip that was only clear in the past).
struct GrantAnnounce {
  OptCellId signal;
  std::uint64_t seq = 0;
  std::uint64_t round = 0;
};

/// Exchange 4 payload: the entities that crossed the boundary under grant
/// `seq`, already re-placed flush with the destination's entry edge
/// (Figure 6 lines 13–20). Retained by the sender until acknowledged.
struct TransferBatch {
  std::uint64_t seq = 0;
  std::vector<Entity> entities;
};

/// Exchange 5 payload: the batch stamped `seq` was accepted (idempotent).
struct TransferAck {
  std::uint64_t seq = 0;
};

using Payload = std::variant<DistAnnounce, IntentAnnounce, GrantAnnounce,
                             TransferBatch, TransferAck>;

struct Message {
  CellId sender;
  CellId receiver;
  Payload payload;
};

/// Payload kinds, indexable for per-type statistics.
enum class PayloadType : std::size_t {
  kDist = 0,
  kIntent = 1,
  kGrant = 2,
  kTransfer = 3,
  kAck = 4,
};
inline constexpr std::size_t kPayloadTypeCount = 5;

[[nodiscard]] constexpr PayloadType payload_type_of(const Payload& p) {
  return static_cast<PayloadType>(p.index());
}

[[nodiscard]] constexpr const char* to_string(PayloadType t) {
  switch (t) {
    case PayloadType::kDist: return "dist";
    case PayloadType::kIntent: return "intent";
    case PayloadType::kGrant: return "grant";
    case PayloadType::kTransfer: return "transfer";
    case PayloadType::kAck: return "ack";
  }
  return "?";
}

}  // namespace cellflow
