// N×N grid topology (paper §II-B): cells identified by ⟨i,j⟩ ∈ [N−1]²,
// cell ⟨i,j⟩ occupying the unit square with bottom-left corner (i,j);
// ⟨m,n⟩ is a neighbor of ⟨i,j⟩ iff |i−m| + |j−n| = 1 (4-neighborhood).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/rect.hpp"
#include "util/check.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// One of the four lattice directions; the order fixes the deterministic
/// neighbor-iteration order used throughout (and therefore the token
/// round-robin order of the default choose policy).
enum class Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::kEast, Direction::kWest, Direction::kNorth, Direction::kSouth};

/// Unit step of a direction.
[[nodiscard]] constexpr std::array<int, 2> step_of(Direction d) noexcept {
  switch (d) {
    case Direction::kEast: return {1, 0};
    case Direction::kWest: return {-1, 0};
    case Direction::kNorth: return {0, 1};
    case Direction::kSouth: return {0, -1};
  }
  return {0, 0};
}

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
  }
  return Direction::kEast;
}

[[nodiscard]] const char* to_cstring(Direction d) noexcept;

/// The square grid. Stateless beyond its side length; provides id/index
/// mapping, adjacency, and geometry of cells.
class Grid {
 public:
  /// Precondition: side >= 1 (paper uses N ≥ 2; a 1×1 grid is legal but
  /// degenerate — the target is the whole world).
  explicit Grid(int side) : side_(side) {
    CF_EXPECTS_MSG(side >= 1, "grid side must be positive");
  }

  [[nodiscard]] int side() const noexcept { return side_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }

  [[nodiscard]] bool contains(CellId id) const noexcept {
    return id.i >= 0 && id.i < side_ && id.j >= 0 && id.j < side_;
  }

  /// Row-major dense index of a cell. Precondition: contains(id).
  [[nodiscard]] std::size_t index_of(CellId id) const {
    CF_EXPECTS(contains(id));
    return static_cast<std::size_t>(id.j) * static_cast<std::size_t>(side_) +
           static_cast<std::size_t>(id.i);
  }

  /// Inverse of index_of. Precondition: index < cell_count().
  [[nodiscard]] CellId id_of(std::size_t index) const {
    CF_EXPECTS(index < cell_count());
    return CellId{static_cast<std::int32_t>(index % static_cast<std::size_t>(side_)),
                  static_cast<std::int32_t>(index / static_cast<std::size_t>(side_))};
  }

  /// The neighbor of `id` in direction `d`, or nullopt at the boundary.
  [[nodiscard]] OptCellId neighbor(CellId id, Direction d) const {
    CF_EXPECTS(contains(id));
    const auto [di, dj] = step_of(d);
    const CellId n{id.i + di, id.j + dj};
    if (!contains(n)) return std::nullopt;
    return n;
  }

  /// Nbrs_{i,j}: all in-grid neighbors, in kAllDirections order.
  [[nodiscard]] std::vector<CellId> neighbors(CellId id) const;

  /// True iff |i−m| + |j−n| = 1.
  [[nodiscard]] bool are_neighbors(CellId a, CellId b) const noexcept {
    const int di = a.i - b.i;
    const int dj = a.j - b.j;
    return (di == 0 || dj == 0) && (di * di + dj * dj == 1);
  }

  /// Direction from `from` to adjacent cell `to`.
  /// Precondition: are_neighbors(from, to).
  [[nodiscard]] Direction direction_between(CellId from, CellId to) const;

  /// Manhattan distance between two cell ids (lattice metric, ignores
  /// failures — see mask.hpp for failure-aware path distance ρ).
  [[nodiscard]] int manhattan(CellId a, CellId b) const noexcept {
    const int di = a.i > b.i ? a.i - b.i : b.i - a.i;
    const int dj = a.j > b.j ? a.j - b.j : b.j - a.j;
    return di + dj;
  }

  /// The unit square occupied by a cell.
  [[nodiscard]] Rect cell_rect(CellId id) const {
    CF_EXPECTS(contains(id));
    return Rect::unit_cell(id.i, id.j);
  }

  /// All ids in row-major order (j outer, i inner).
  [[nodiscard]] std::vector<CellId> all_cells() const;

 private:
  int side_;
};

}  // namespace cellflow
