// Paths over the grid and path builders.
//
// The evaluation (§IV) studies throughput against two path properties:
// length (number of cells) and *complexity*, measured in number of turns
// (Figure 8 uses length-8 paths with varying turn counts). The builders
// here construct simple paths with an exact number of turns; benches then
// carve the path into the grid by permanently failing all off-path cells,
// which is the only way the distance-vector Route protocol can be forced
// to follow a prescribed shape.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// A simple path: a sequence of pairwise-distinct, consecutively-adjacent
/// cells. The first cell is conventionally the source, the last the target.
class Path {
 public:
  /// Validates adjacency and distinctness; throws ContractViolation
  /// otherwise. Precondition: at least one cell, all within `grid`.
  Path(const Grid& grid, std::vector<CellId> cells);

  [[nodiscard]] const std::vector<CellId>& cells() const noexcept {
    return cells_;
  }
  /// Number of cells (the paper's "path length": the Fig. 7 path
  /// ⟨1,0⟩…⟨1,7⟩ is called length 8).
  [[nodiscard]] std::size_t length() const noexcept { return cells_.size(); }

  [[nodiscard]] CellId source() const noexcept { return cells_.front(); }
  [[nodiscard]] CellId target() const noexcept { return cells_.back(); }

  /// Number of turns: interior cells where the incoming and outgoing
  /// directions differ. A straight path has 0; a length-L path has at
  /// most L−2.
  [[nodiscard]] std::size_t turns() const noexcept;

  /// True iff `id` lies on the path.
  [[nodiscard]] bool contains(CellId id) const noexcept;

  /// Successor of `id` along the path, or nullopt for the target /
  /// non-members.
  [[nodiscard]] OptCellId successor(CellId id) const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<CellId> cells_;
};

/// Straight path of `cells` cells from `start` in direction `dir`.
/// Precondition: the whole path fits in the grid.
[[nodiscard]] Path make_straight_path(const Grid& grid, CellId start,
                                      Direction dir, std::size_t cells);

/// Simple path of exactly `cells` cells and exactly `turns` turns,
/// alternating between `first` and `second` (which must be perpendicular).
/// Segments are as long as possible early (a "staircase" with a long
/// first run). Preconditions: cells >= 2, turns <= cells − 2, and the
/// result must fit in the grid (throws otherwise).
[[nodiscard]] Path make_turning_path(const Grid& grid, CellId start,
                                     Direction first, Direction second,
                                     std::size_t cells, std::size_t turns);

/// Boustrophedon ("snake") path visiting `rows` contiguous rows of width
/// `width` starting at `start` heading east. NOTE: consecutive rows are
/// laterally adjacent, so when this shape is carved into a grid, Route
/// still takes shortest paths *across* rows — use make_serpentine_path
/// when the path order itself must be enforced.
[[nodiscard]] Path make_snake_path(const Grid& grid, CellId start, int width,
                                   int rows);

/// Serpentine path whose lanes are spaced two rows apart and joined by
/// single connector cells at alternating ends: carved into a grid, every
/// hop of the path is the unique way forward, so Route must follow the
/// lane order exactly (a real conveyor line). Occupies rows
/// start.j, start.j+2, …, start.j+2(lanes−1) plus the connectors between
/// them. Preconditions: width ≥ 2, lanes ≥ 1, fits in the grid.
[[nodiscard]] Path make_serpentine_path(const Grid& grid, CellId start,
                                        int width, int lanes);

}  // namespace cellflow
