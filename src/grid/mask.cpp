#include "grid/mask.hpp"

#include <deque>

namespace cellflow {

CellMask CellMask::all(const Grid& grid) {
  CellMask m(grid);
  m.bits_.assign(m.bits_.size(), true);
  return m;
}

CellMask CellMask::of(const Grid& grid, const std::vector<CellId>& cells) {
  CellMask m(grid);
  for (const CellId c : cells) m.set(c);
  return m;
}

std::size_t CellMask::count() const noexcept {
  std::size_t n = 0;
  for (const bool b : bits_)
    if (b) ++n;
  return n;
}

CellMask CellMask::operator~() const {
  CellMask m = *this;
  for (std::size_t k = 0; k < m.bits_.size(); ++k) m.bits_[k] = !m.bits_[k];
  return m;
}

CellMask CellMask::operator&(const CellMask& other) const {
  CF_EXPECTS(side_ == other.side_);
  CellMask m = *this;
  for (std::size_t k = 0; k < m.bits_.size(); ++k)
    m.bits_[k] = m.bits_[k] && other.bits_[k];
  return m;
}

std::vector<CellId> CellMask::set_cells() const {
  std::vector<CellId> out;
  for (std::size_t k = 0; k < bits_.size(); ++k) {
    if (bits_[k])
      out.push_back(
          CellId{static_cast<std::int32_t>(k % static_cast<std::size_t>(side_)),
                 static_cast<std::int32_t>(k / static_cast<std::size_t>(side_))});
  }
  return out;
}

std::vector<Dist> path_distances(const Grid& grid, const CellMask& alive,
                                 CellId target) {
  CF_EXPECTS(grid.contains(target));
  CF_EXPECTS(grid.side() == alive.side());
  std::vector<Dist> dist(grid.cell_count(), Dist::infinity());
  if (!alive.test(target)) return dist;

  std::deque<CellId> frontier;
  dist[grid.index_of(target)] = Dist::zero();
  frontier.push_back(target);
  while (!frontier.empty()) {
    const CellId cur = frontier.front();
    frontier.pop_front();
    const Dist next_d = dist[grid.index_of(cur)].plus_one();
    for (const CellId nb : grid.neighbors(cur)) {
      if (!alive.test(nb)) continue;
      if (dist[grid.index_of(nb)].is_infinite()) {
        dist[grid.index_of(nb)] = next_d;
        frontier.push_back(nb);
      }
    }
  }
  return dist;
}

CellMask target_connected(const Grid& grid, const CellMask& alive,
                          CellId target) {
  const auto dist = path_distances(grid, alive, target);
  CellMask tc(grid);
  for (std::size_t k = 0; k < grid.cell_count(); ++k)
    if (dist[k].is_finite()) tc.set(grid.id_of(k));
  return tc;
}

}  // namespace cellflow
