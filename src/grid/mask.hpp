// Cell masks and failure-aware connectivity.
//
// This module is the *reference oracle* side of the analysis: it computes
// the paper's path distance ρ(x, ⟨i,j⟩) — the hop distance to the target
// through non-faulty cells — and the target-connected set TC(x) (§III-B),
// by plain BFS over a snapshot of which cells are alive. The distributed
// Route function must converge to exactly these values once failures cease
// (Lemma 6); tests compare the two.
#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// A boolean per cell of a grid (e.g. "alive", "on path").
class CellMask {
 public:
  /// All-false mask over `grid`.
  explicit CellMask(const Grid& grid)
      : side_(grid.side()), bits_(grid.cell_count(), false) {}

  /// Mask with every cell set.
  static CellMask all(const Grid& grid);
  /// Mask with exactly the given cells set.
  static CellMask of(const Grid& grid, const std::vector<CellId>& cells);

  [[nodiscard]] int side() const noexcept { return side_; }
  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }

  [[nodiscard]] bool test(CellId id) const { return bits_[index(id)]; }
  void set(CellId id, bool value = true) { bits_[index(id)] = value; }

  /// Number of set cells.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Complement, intersection.
  [[nodiscard]] CellMask operator~() const;
  [[nodiscard]] CellMask operator&(const CellMask& other) const;

  /// Ids of all set cells in row-major order.
  [[nodiscard]] std::vector<CellId> set_cells() const;

  friend bool operator==(const CellMask&, const CellMask&) = default;

 private:
  [[nodiscard]] std::size_t index(CellId id) const {
    CF_EXPECTS(id.i >= 0 && id.i < side_ && id.j >= 0 && id.j < side_);
    return static_cast<std::size_t>(id.j) * static_cast<std::size_t>(side_) +
           static_cast<std::size_t>(id.i);
  }

  int side_;
  std::vector<bool> bits_;
};

/// ρ(x, ·): BFS hop distance from every cell to `target` through cells
/// where `alive` is set. Cells with `alive` false get ∞ (the paper defines
/// ρ = ∞ for failed cells); unreachable alive cells also get ∞. The
/// target itself gets 0 if alive, else ∞.
[[nodiscard]] std::vector<Dist> path_distances(const Grid& grid,
                                               const CellMask& alive,
                                               CellId target);

/// TC(x): the set of target-connected cells (finite ρ).
[[nodiscard]] CellMask target_connected(const Grid& grid,
                                        const CellMask& alive, CellId target);

}  // namespace cellflow
