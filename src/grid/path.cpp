#include "grid/path.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace cellflow {

Path::Path(const Grid& grid, std::vector<CellId> cells)
    : cells_(std::move(cells)) {
  CF_EXPECTS_MSG(!cells_.empty(), "path must have at least one cell");
  for (const CellId c : cells_)
    CF_EXPECTS_MSG(grid.contains(c), "path cell outside grid");
  for (std::size_t k = 0; k + 1 < cells_.size(); ++k)
    CF_EXPECTS_MSG(grid.are_neighbors(cells_[k], cells_[k + 1]),
                   "path cells not consecutive neighbors");
  auto sorted = cells_;
  std::sort(sorted.begin(), sorted.end());
  CF_EXPECTS_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "path revisits a cell");
}

std::size_t Path::turns() const noexcept {
  std::size_t t = 0;
  for (std::size_t k = 1; k + 1 < cells_.size(); ++k) {
    const int di_in = cells_[k].i - cells_[k - 1].i;
    const int dj_in = cells_[k].j - cells_[k - 1].j;
    const int di_out = cells_[k + 1].i - cells_[k].i;
    const int dj_out = cells_[k + 1].j - cells_[k].j;
    if (di_in != di_out || dj_in != dj_out) ++t;
  }
  return t;
}

bool Path::contains(CellId id) const noexcept {
  return std::find(cells_.begin(), cells_.end(), id) != cells_.end();
}

OptCellId Path::successor(CellId id) const noexcept {
  const auto it = std::find(cells_.begin(), cells_.end(), id);
  if (it == cells_.end() || it + 1 == cells_.end()) return std::nullopt;
  return *(it + 1);
}

std::string Path::to_string() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    if (k != 0) os << " -> ";
    os << cellflow::to_string(cells_[k]);
  }
  return os.str();
}

Path make_straight_path(const Grid& grid, CellId start, Direction dir,
                        std::size_t cells) {
  CF_EXPECTS(cells >= 1);
  std::vector<CellId> ids;
  ids.reserve(cells);
  const auto [di, dj] = step_of(dir);
  for (std::size_t k = 0; k < cells; ++k)
    ids.push_back(CellId{start.i + static_cast<std::int32_t>(k) * di,
                         start.j + static_cast<std::int32_t>(k) * dj});
  return Path(grid, std::move(ids));
}

Path make_turning_path(const Grid& grid, CellId start, Direction first,
                       Direction second, std::size_t cells,
                       std::size_t turns) {
  CF_EXPECTS(cells >= 2);
  CF_EXPECTS_MSG(turns <= cells - 2, "too many turns for this length");
  const auto [fi, fj] = step_of(first);
  const auto [si, sj] = step_of(second);
  CF_EXPECTS_MSG(fi * si + fj * sj == 0, "directions must be perpendicular");

  const std::size_t segments = turns + 1;
  const std::size_t edges = cells - 1;
  // Every segment gets one edge; the surplus is dealt round-robin from the
  // first segment so early runs are longest.
  std::vector<std::size_t> seg_len(segments, 1);
  std::size_t surplus = edges - segments;
  for (std::size_t s = 0; surplus > 0; s = (s + 1) % segments, --surplus)
    ++seg_len[s];

  std::vector<CellId> ids;
  ids.reserve(cells);
  ids.push_back(start);
  CellId cur = start;
  for (std::size_t s = 0; s < segments; ++s) {
    const bool use_first = (s % 2 == 0);
    const int di = use_first ? fi : si;
    const int dj = use_first ? fj : sj;
    for (std::size_t e = 0; e < seg_len[s]; ++e) {
      cur = CellId{cur.i + di, cur.j + dj};
      ids.push_back(cur);
    }
  }
  Path path(grid, std::move(ids));
  CF_ENSURES(path.length() == cells);
  CF_ENSURES(path.turns() == turns);
  return path;
}

Path make_serpentine_path(const Grid& grid, CellId start, int width,
                          int lanes) {
  CF_EXPECTS(width >= 2);
  CF_EXPECTS(lanes >= 1);
  std::vector<CellId> ids;
  for (int lane = 0; lane < lanes; ++lane) {
    const int j = start.j + 2 * lane;
    const bool eastbound = (lane % 2 == 0);
    for (int c = 0; c < width; ++c) {
      const int i = eastbound ? start.i + c : start.i + width - 1 - c;
      ids.push_back(CellId{i, j});
    }
    if (lane + 1 < lanes) {
      // Connector cell above this lane's exit end.
      const int exit_i = eastbound ? start.i + width - 1 : start.i;
      ids.push_back(CellId{exit_i, j + 1});
    }
  }
  return Path(grid, std::move(ids));
}

Path make_snake_path(const Grid& grid, CellId start, int width, int rows) {
  CF_EXPECTS(width >= 1);
  CF_EXPECTS(rows >= 1);
  std::vector<CellId> ids;
  ids.reserve(static_cast<std::size_t>(width) * static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < width; ++c) {
      const int i = (r % 2 == 0) ? start.i + c : start.i + width - 1 - c;
      ids.push_back(CellId{i, start.j + r});
    }
  }
  return Path(grid, std::move(ids));
}

}  // namespace cellflow
