#include "grid/grid.hpp"

namespace cellflow {

const char* to_cstring(Direction d) noexcept {
  switch (d) {
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
  }
  return "?";
}

std::vector<CellId> Grid::neighbors(CellId id) const {
  CF_EXPECTS(contains(id));
  std::vector<CellId> out;
  out.reserve(4);
  for (const Direction d : kAllDirections) {
    if (const auto n = neighbor(id, d)) out.push_back(*n);
  }
  return out;
}

Direction Grid::direction_between(CellId from, CellId to) const {
  CF_EXPECTS_MSG(are_neighbors(from, to), "cells are not adjacent");
  if (to.i == from.i + 1) return Direction::kEast;
  if (to.i == from.i - 1) return Direction::kWest;
  if (to.j == from.j + 1) return Direction::kNorth;
  return Direction::kSouth;
}

std::vector<CellId> Grid::all_cells() const {
  std::vector<CellId> out;
  out.reserve(cell_count());
  for (std::size_t k = 0; k < cell_count(); ++k) out.push_back(id_of(k));
  return out;
}

}  // namespace cellflow
