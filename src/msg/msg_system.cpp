#include "msg/msg_system.hpp"

#include <algorithm>
#include <cmath>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/signal.hpp"
#include "util/check.hpp"

namespace cellflow {

MessageSystem::MessageSystem(MsgSystemConfig config)
    : config_(std::move(config)),
      grid_(config_.side),
      processes_(grid_.cell_count()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  // Canonical injection order, mirroring System: sources visit in
  // cell-id order regardless of how the configuration listed them.
  std::sort(config_.sources.begin(), config_.sources.end());
  config_.sources.erase(
      std::unique(config_.sources.begin(), config_.sources.end()),
      config_.sources.end());
  processes_[grid_.index_of(config_.target)].state.dist = Dist::zero();
}

std::size_t MessageSystem::entity_count() const noexcept {
  std::size_t n = 0;
  for (const MessageProcess& p : processes_) n += p.state.members.size();
  return n;
}

void MessageSystem::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    msgs_dist_ = msgs_intent_ = msgs_grant_ = msgs_transfer_ = nullptr;
  } else {
    metrics_ = std::make_unique<obs::ProtocolMetrics>(*registry, "message");
    const auto msgs = [&](std::string_view exchange) {
      return &registry->counter(
          "cellflow_messages_total", "Messages sent, by exchange.",
          {{"realization", "message"}, {"exchange", std::string(exchange)}});
    };
    msgs_dist_ = msgs("dist");
    msgs_intent_ = msgs("intent");
    msgs_grant_ = msgs("grant");
    msgs_transfer_ = msgs("transfer");
  }
  round_counts_.reset();
}

void MessageSystem::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& s = processes_[grid_.index_of(id)].state;
  if (!s.failed && metrics_) metrics_->add_failure();
  s.failed = true;
  s.dist = Dist::infinity();
  s.next = std::nullopt;
  s.signal = std::nullopt;
  s.token = std::nullopt;
  s.ne_prev.clear();
}

void MessageSystem::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& s = processes_[grid_.index_of(id)].state;
  if (!s.failed) return;
  if (metrics_) metrics_->add_recovery();
  s.failed = false;
  s.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  s.next = std::nullopt;
  s.token = std::nullopt;
  s.signal = std::nullopt;
  s.ne_prev.clear();
}

void MessageSystem::update() {
  const std::uint64_t before = network_.total_messages();
  exchange_dists();
  exchange_intents();
  exchange_grants_and_move();
  inject();
  last_round_messages_ = network_.total_messages() - before;
  if (metrics_) {
    metrics_->add(round_counts_);
    metrics_->add_round();
    round_counts_.reset();
  }
  ++round_;
}

void MessageSystem::exchange_dists() {
  // Every live process broadcasts its previous-round dist to its
  // neighbors; a crashed process is silent.
  const std::uint64_t sent_before = network_.total_messages();
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const CellId nb : grid_.neighbors(id))
      network_.send(Message{id, nb, DistAnnounce{p.state.dist}});
  }
  if (msgs_dist_ != nullptr)
    msgs_dist_->inc(network_.total_messages() - sent_before);
  auto inboxes = network_.deliver_all(grid_);

  // Local Route step. A neighbor that stayed silent reads as dist = ∞
  // (paper footnote 1) — which is exactly what NOT listing it achieves,
  // except route_step needs every neighbor present; so synthesize ∞
  // entries for silent neighbors.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    p.heard_dists.clear();
    for (const Message& m : inboxes[k]) {
      if (const auto* ann = std::get_if<DistAnnounce>(&m.payload))
        p.heard_dists.push_back(NeighborDistView{m.sender, ann->dist});
    }
    if (id == config_.target) {
      if (metrics_ && p.state.dist != Dist::zero())
        ++round_counts_.route_dist_changes;
      p.state.dist = Dist::zero();
      p.state.next = std::nullopt;
      continue;
    }
    std::vector<NeighborDist> nds;
    for (const CellId nb : grid_.neighbors(id)) {
      const auto it = std::find_if(
          p.heard_dists.begin(), p.heard_dists.end(),
          [nb](const NeighborDistView& v) { return v.id == nb; });
      nds.push_back(NeighborDist{
          nb, it == p.heard_dists.end() ? Dist::infinity() : it->dist});
    }
    const RouteResult r = route_step(nds);
    if (metrics_) {
      round_counts_.route_relaxations += nds.size();
      if (p.state.dist != r.dist) ++round_counts_.route_dist_changes;
    }
    p.state.dist = r.dist;
    p.state.next = r.next;
  }
}

void MessageSystem::exchange_intents() {
  const std::uint64_t sent_before = network_.total_messages();
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const CellId nb : grid_.neighbors(id)) {
      network_.send(Message{
          id, nb, IntentAnnounce{p.state.next, p.state.has_entities()}});
    }
  }
  if (msgs_intent_ != nullptr)
    msgs_intent_->inc(network_.total_messages() - sent_before);
  auto inboxes = network_.deliver_all(grid_);

  // Local Signal step: NEPrev = senders whose intent names me and who
  // carry entities.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    p.heard_wanting.clear();
    for (const Message& m : inboxes[k]) {
      if (const auto* intent = std::get_if<IntentAnnounce>(&m.payload)) {
        if (intent->next == OptCellId{id} && intent->has_entities)
          p.heard_wanting.push_back(m.sender);
      }
    }
    std::sort(p.heard_wanting.begin(), p.heard_wanting.end());

    SignalInputs in;
    in.self = id;
    in.members = p.state.members;
    in.ne_prev = p.heard_wanting;
    in.token = p.state.token;
    const bool had_candidate = in.token.has_value() || !in.ne_prev.empty();
    const std::size_t ne_prev_size = in.ne_prev.size();
    const OptCellId old_token = p.state.token;
    SignalResult r = signal_step(std::move(in), config_.params, choose_);
    if (metrics_) {
      ++round_counts_.ne_prev_sizes[std::min<std::size_t>(
          ne_prev_size, round_counts_.ne_prev_sizes.size() - 1)];
      if (r.signal.has_value()) ++round_counts_.signal_grants;
      if (had_candidate && !r.signal.has_value())
        ++round_counts_.signal_blocks;
      if (old_token.has_value() && r.token != old_token)
        ++round_counts_.signal_token_rotations;
    }
    p.state.signal = r.signal;
    p.state.token = r.token;
    p.state.ne_prev = std::move(r.ne_prev);
  }
}

void MessageSystem::exchange_grants_and_move() {
  const std::uint64_t grants_before = network_.total_messages();
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const CellId nb : grid_.neighbors(id))
      network_.send(Message{id, nb, GrantAnnounce{p.state.signal}});
  }
  if (msgs_grant_ != nullptr)
    msgs_grant_->inc(network_.total_messages() - grants_before);
  auto grant_inboxes = network_.deliver_all(grid_);
  const std::uint64_t transfers_before = network_.total_messages();

  // Move decisions from received grants; transfers become messages.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    p.heard_grant_from_next = false;
    if (p.state.next.has_value()) {
      for (const Message& m : grant_inboxes[k]) {
        if (m.sender != *p.state.next) continue;
        if (const auto* g = std::get_if<GrantAnnounce>(&m.payload)) {
          if (g->signal == OptCellId{id}) p.heard_grant_from_next = true;
        }
      }
    }
    if (!p.heard_grant_from_next) continue;

    if (metrics_) ++round_counts_.moves;
    MoveResult mr = move_step(id, *p.state.next, std::move(p.state.members),
                              config_.params);
    p.state.members = std::move(mr.staying);
    if (metrics_) round_counts_.transfers += mr.crossed.size();
    for (Entity& e : mr.crossed)
      network_.send(Message{id, *p.state.next, EntityTransfer{e}});
  }
  if (msgs_transfer_ != nullptr)
    msgs_transfer_->inc(network_.total_messages() - transfers_before);

  auto transfer_inboxes = network_.deliver_all(grid_);
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    const CellId id = grid_.id_of(k);
    for (Message& m : transfer_inboxes[k]) {
      if (auto* t = std::get_if<EntityTransfer>(&m.payload)) {
        if (id == config_.target) {
          ++total_arrivals_;  // consumed; the entity leaves the system
          if (metrics_) ++round_counts_.consumptions;
        } else {
          // A crashed process cannot receive — but a transfer to a
          // crashed process is impossible: its silence means no grant
          // was ever heard from it.
          CF_CHECK_MSG(!p.state.failed, "transfer into a crashed process");
          p.state.members.push_back(t->entity);
        }
      }
    }
  }
}

bool MessageSystem::injection_is_safe(CellId id, Vec2 center) const {
  const Params& prm = config_.params;
  const double half = prm.entity_length() / 2.0;
  const double d = prm.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);
  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;
  const CellState& c = processes_[grid_.index_of(id)].state;
  for (const Entity& q : c.members) {
    if (std::abs(center.x - q.center.x) < d &&
        std::abs(center.y - q.center.y) < d)
      return false;
  }
  if (c.token.has_value()) {
    std::vector<Entity> with_new(c.members.begin(), c.members.end());
    with_new.push_back(Entity{EntityId{~0ULL}, center});
    const bool was_clear = entry_strip_clear(id, *c.token, c.members, prm);
    const bool still_clear = entry_strip_clear(id, *c.token, with_new, prm);
    if (was_clear && !still_clear) return false;
  }
  return true;
}

void MessageSystem::inject() {
  const double half = config_.params.entity_length() / 2.0;
  for (const CellId s : config_.sources) {
    CellState& c = processes_[grid_.index_of(s)].state;
    if (c.failed) continue;
    const auto i = static_cast<double>(s.i);
    const auto j = static_cast<double>(s.j);
    Vec2 center{i + 0.5, j + 0.5};
    if (c.next.has_value()) {
      switch (opposite(grid_.direction_between(s, *c.next))) {
        case Direction::kEast: center = {i + 1.0 - half, j + 0.5}; break;
        case Direction::kWest: center = {i + half, j + 0.5}; break;
        case Direction::kNorth: center = {i + 0.5, j + 1.0 - half}; break;
        case Direction::kSouth: center = {i + 0.5, j + half}; break;
      }
    }
    if (!injection_is_safe(s, center)) {
      if (metrics_) ++round_counts_.blocked_injections;
      continue;
    }
    c.members.push_back(Entity{EntityId{next_entity_id_++}, center});
    if (metrics_) ++round_counts_.injections;
  }
}

}  // namespace cellflow
