#include "msg/msg_system.hpp"

#include <algorithm>
#include <cmath>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/signal.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace cellflow {

std::size_t MessageProcess::slot_of(CellId nb) const {
  for (std::size_t s = 0; s < nbrs.size(); ++s)
    if (nbrs[s] == nb) return s;
  CF_CHECK_MSG(false, "slot_of: not a neighbor");
  return 0;
}

MessageSystem::MessageSystem(MsgSystemConfig config,
                             std::unique_ptr<NetworkModel> network)
    : config_(std::move(config)),
      grid_(config_.side),
      processes_(grid_.cell_count()),
      network_(network ? std::move(network)
                       : std::make_unique<SyncNetwork>()) {
  CF_EXPECTS_MSG(grid_.contains(config_.target), "target outside grid");
  for (const CellId s : config_.sources) {
    CF_EXPECTS_MSG(grid_.contains(s), "source outside grid");
    CF_EXPECTS_MSG(s != config_.target, "a cell cannot be source and target");
  }
  // Canonical injection order, mirroring System: sources visit in
  // cell-id order regardless of how the configuration listed them.
  std::sort(config_.sources.begin(), config_.sources.end());
  config_.sources.erase(
      std::unique(config_.sources.begin(), config_.sources.end()),
      config_.sources.end());
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    p.nbrs = grid_.neighbors(grid_.id_of(k));
    p.outbound.resize(p.nbrs.size());
    p.inbound.resize(p.nbrs.size());
  }
  processes_[grid_.index_of(config_.target)].state.dist = Dist::zero();
}

std::size_t MessageSystem::entity_count() const noexcept {
  std::size_t n = 0;
  for (const MessageProcess& p : processes_) n += p.state.members.size();
  return n;
}

std::vector<Entity> MessageSystem::in_flight_entities() const {
  std::vector<Entity> out;
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    const CellId id = grid_.id_of(k);
    for (std::size_t s = 0; s < p.nbrs.size(); ++s) {
      const OutboundLink& ob = p.outbound[s];
      if (!ob.pending()) continue;
      const MessageProcess& r = processes_[grid_.index_of(p.nbrs[s])];
      if (r.inbound[r.slot_of(id)].completed_seq >= ob.batch_seq)
        continue;  // accepted; the retained copy is just an unacked ledger
      out.insert(out.end(), ob.batch.begin(), ob.batch.end());
    }
  }
  return out;
}

void MessageSystem::set_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    metrics_.reset();
    msgs_by_type_.fill(nullptr);
  } else {
    metrics_ = std::make_unique<obs::ProtocolMetrics>(*registry, "message");
    for (std::size_t t = 0; t < kPayloadTypeCount; ++t) {
      const auto type = static_cast<PayloadType>(t);
      msgs_by_type_[t] = &registry->counter(
          "cellflow_messages_total", "Messages sent, by exchange.",
          {{"realization", "message"}, {"exchange", to_string(type)}});
      // Count from attachment onward, like every other family.
      msgs_flushed_[t] = network_->sent_count(type);
      for (std::size_t f = 0; f < kNetFaultCount; ++f)
        faults_flushed_[f][t] =
            network_->fault_count(static_cast<NetFault>(f), type);
    }
  }
  round_counts_.reset();
}

void MessageSystem::flush_network_metrics() {
  if (registry_ == nullptr) return;
  for (std::size_t t = 0; t < kPayloadTypeCount; ++t) {
    const auto type = static_cast<PayloadType>(t);
    const std::uint64_t sent = network_->sent_count(type);
    if (sent > msgs_flushed_[t] && msgs_by_type_[t] != nullptr)
      msgs_by_type_[t]->inc(sent - msgs_flushed_[t]);
    msgs_flushed_[t] = sent;
    for (std::size_t f = 0; f < kNetFaultCount; ++f) {
      const auto fault = static_cast<NetFault>(f);
      const std::uint64_t n = network_->fault_count(fault, type);
      if (n > faults_flushed_[f][t]) {
        // Created lazily so fault-free runs keep their exact exports.
        registry_
            ->counter("cellflow_net_faults_total",
                      "Network faults applied, by kind and exchange.",
                      {{"fault", to_string(fault)},
                       {"exchange", to_string(type)}})
            .inc(n - faults_flushed_[f][t]);
        faults_flushed_[f][t] = n;
      }
    }
  }
}

void MessageSystem::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& s = processes_[grid_.index_of(id)].state;
  if (!s.failed && metrics_) metrics_->add_failure();
  s.failed = true;
  s.dist = Dist::infinity();
  s.next = std::nullopt;
  s.signal = std::nullopt;
  s.token = std::nullopt;
  s.ne_prev.clear();
  // Transport-session state (outbound/inbound links) deliberately kept:
  // it is stable storage, the exactly-once ledger of the data plane.
}

void MessageSystem::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  CellState& s = processes_[grid_.index_of(id)].state;
  if (!s.failed) return;
  if (metrics_) metrics_->add_recovery();
  s.failed = false;
  s.dist = (id == config_.target) ? Dist::zero() : Dist::infinity();
  s.next = std::nullopt;
  s.token = std::nullopt;
  s.signal = std::nullopt;
  s.ne_prev.clear();
}

void MessageSystem::update() {
  const std::uint64_t before = network_->total_messages();
  // Profiler/telemetry wrap, reporting only — exactly as in
  // System::update(); the exchanges are the serial realization's
  // "phases", so all of their wall time is telemetry work.
  using ProfClock = obs::PhaseProfiler::Clock;
  const bool track = profiler_ != nullptr || telemetry_ != nullptr;
  const auto t_round = track ? ProfClock::now() : ProfClock::time_point{};
  std::uint64_t work_ns = 0;
  const auto timed = [&](const char* name, auto&& exchange) {
    if (!track) {
      exchange();
      return;
    }
    const auto t0 = ProfClock::now();
    exchange();
    const auto t1 = ProfClock::now();
    if (profiler_ != nullptr) profiler_->record(name, round_, -1, t0, t1);
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    work_ns += d > 0 ? static_cast<std::uint64_t>(d) : 0;
  };
  network_->begin_round(round_);
  timed("dist", [this] { exchange_dists(); });
  timed("intent", [this] { exchange_intents(); });
  timed("grant", [this] { exchange_grants(); });
  timed("transfer", [this] { exchange_transfers(); });
  timed("ack", [this] { exchange_acks(); });
  timed("inject", [this] { inject(); });
  if (track) {
    const auto t_end = ProfClock::now();
    if (profiler_ != nullptr)
      profiler_->record("round", round_, -1, t_round, t_end);
    if (telemetry_ != nullptr) {
      obs::RoundBreakdown b;
      const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t_end - t_round)
                         .count();
      b.round_ns = d > 0 ? static_cast<std::uint64_t>(d) : 0;
      b.work_ns = work_ns;
      b.workers = 1;
      telemetry_->record_round(b);
    }
  }
  last_round_messages_ = network_->total_messages() - before;
  if (metrics_) {
    metrics_->add(round_counts_);
    metrics_->add_round();
    round_counts_.reset();
  }
  flush_network_metrics();
  ++round_;
}

void MessageSystem::exchange_dists() {
  // Every live process broadcasts its previous-round dist to its
  // neighbors; a crashed process is silent.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const CellId nb : p.nbrs)
      network_->send(Message{id, nb, DistAnnounce{p.state.dist}});
  }
  network_->deliver_all(grid_, inboxes_);

  // Local Route step. A neighbor that stayed silent reads as dist = ∞
  // (paper footnote 1) — which is exactly what NOT listing it achieves,
  // except route_step needs every neighbor present; so synthesize ∞
  // entries for silent neighbors. Under a faulty network an inbox may
  // hold several announcements from one sender (a delayed copy released
  // before the fresh one, canonical order); the first per sender wins —
  // a stale estimate for one round, which Route self-stabilizes away.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    p.heard_dists.clear();
    for (const Message& m : inboxes_[k]) {
      if (const auto* ann = std::get_if<DistAnnounce>(&m.payload))
        p.heard_dists.push_back(NeighborDistView{m.sender, ann->dist});
    }
    if (id == config_.target) {
      if (metrics_ && p.state.dist != Dist::zero())
        ++round_counts_.route_dist_changes;
      p.state.dist = Dist::zero();
      p.state.next = std::nullopt;
      continue;
    }
    NeighborDist nds[4];  // lattice degree ≤ 4; no heap
    std::size_t n = 0;
    for (const CellId nb : p.nbrs) {
      const auto it = std::find_if(
          p.heard_dists.begin(), p.heard_dists.end(),
          [nb](const NeighborDistView& v) { return v.id == nb; });
      nds[n++] = NeighborDist{
          nb, it == p.heard_dists.end() ? Dist::infinity() : it->dist};
    }
    const RouteResult r = route_step(std::span<const NeighborDist>(nds, n));
    if (metrics_) {
      round_counts_.route_relaxations += n;
      if (p.state.dist != r.dist) ++round_counts_.route_dist_changes;
    }
    p.state.dist = r.dist;
    p.state.next = r.next;
  }
}

void MessageSystem::exchange_intents() {
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const CellId nb : p.nbrs) {
      network_->send(Message{
          id, nb, IntentAnnounce{p.state.next, p.state.has_entities()}});
    }
  }
  network_->deliver_all(grid_, inboxes_);

  // Local Signal step: NEPrev = senders whose intent names me and who
  // carry entities (deduplicated — the network may deliver copies).
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    p.heard_wanting.clear();
    for (const Message& m : inboxes_[k]) {
      if (const auto* intent = std::get_if<IntentAnnounce>(&m.payload)) {
        if (intent->next == OptCellId{id} && intent->has_entities)
          p.heard_wanting.push_back(m.sender);
      }
    }
    std::sort(p.heard_wanting.begin(), p.heard_wanting.end());
    p.heard_wanting.erase(
        std::unique(p.heard_wanting.begin(), p.heard_wanting.end()),
        p.heard_wanting.end());

    SignalInputs in;
    in.self = id;
    in.members = p.state.members;
    in.ne_prev = p.heard_wanting;
    in.token = p.state.token;
    const bool had_candidate = in.token.has_value() || !in.ne_prev.empty();
    const std::size_t ne_prev_size = in.ne_prev.size();
    const OptCellId old_token = p.state.token;
    SignalResult r = signal_step(std::move(in), config_.params, choose_);
    if (metrics_) {
      ++round_counts_.ne_prev_sizes[std::min<std::size_t>(
          ne_prev_size, round_counts_.ne_prev_sizes.size() - 1)];
      if (r.signal.has_value()) ++round_counts_.signal_grants;
      if (had_candidate && !r.signal.has_value())
        ++round_counts_.signal_blocks;
      if (old_token.has_value() && r.token != old_token)
        ++round_counts_.signal_token_rotations;
    }
    p.state.signal = r.signal;
    p.state.token = r.token;
    p.state.ne_prev = std::move(r.ne_prev);
    // A grant opens a transfer session on that link: stamp a fresh seq.
    // (Lemma 3's H holds here by construction: signal_step granted only
    // with the entry strip clear of this process's current members.)
    if (p.state.signal.has_value())
      ++p.inbound[p.slot_of(*p.state.signal)].granted_seq;
  }
}

void MessageSystem::exchange_grants() {
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    const MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    const std::uint64_t seq =
        p.state.signal.has_value()
            ? p.inbound[p.slot_of(*p.state.signal)].granted_seq
            : 0;
    for (const CellId nb : p.nbrs)
      network_->send(Message{id, nb, GrantAnnounce{p.state.signal, seq,
                                                   round_}});
  }
  network_->deliver_all(grid_, inboxes_);

  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    p.heard_grants.clear();
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const Message& m : inboxes_[k]) {
      const auto* g = std::get_if<GrantAnnounce>(&m.payload);
      if (g == nullptr) continue;
      if (g->round != round_) {
        // A delayed grant is expired: permission is only meaningful in
        // the round whose Signal step checked the strip (footnote 1's ⊥
        // reading — Move must see FRESH signal values, §II-B).
        ++expired_grants_;
        continue;
      }
      if (g->signal != OptCellId{id}) continue;
      OutboundLink& ob = p.outbound[p.slot_of(m.sender)];
      if (g->seq <= ob.heard_seq) continue;  // duplicated copy
      ob.heard_seq = g->seq;
      p.heard_grants.push_back(p.slot_of(m.sender));
    }
  }
}

void MessageSystem::exchange_transfers() {
  // Move decisions from this round's grants, then (re-)offer every
  // retained batch. Stop-and-wait per link: while a batch is pending the
  // process answers a fresh grant by declining (silently — the grantor's
  // strip stays reserved but nothing moves), so at most one batch per
  // link is ever outstanding.
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    const CellId id = grid_.id_of(k);
    for (const std::size_t slot : p.heard_grants) {
      OutboundLink& ob = p.outbound[slot];
      if (ob.pending()) continue;
      const CellId dest = p.nbrs[slot];
      if (p.state.next != OptCellId{dest}) continue;
      if (metrics_) ++round_counts_.moves;
      // In-place Move: crossers land directly in the link's retained
      // batch (empty while the link is idle — pending() was false and
      // acks clear it), stayers partition in place.
      ob.batch.clear();
      move_step_inplace(id, dest, p.state.members, ob.batch, config_.params);
      if (metrics_) round_counts_.transfers += ob.batch.size();
      if (!ob.batch.empty()) ob.batch_seq = ob.heard_seq;
    }
    for (std::size_t s = 0; s < p.nbrs.size(); ++s) {
      const OutboundLink& ob = p.outbound[s];
      if (ob.pending())
        network_->send(
            Message{id, p.nbrs[s], TransferBatch{ob.batch_seq, ob.batch}});
    }
  }

  network_->deliver_all(grid_, inboxes_);
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;  // messages to a crashed process are lost
    const CellId id = grid_.id_of(k);
    for (Message& m : inboxes_[k]) {
      auto* b = std::get_if<TransferBatch>(&m.payload);
      if (b == nullptr) continue;
      InboundLink& ib = p.inbound[p.slot_of(m.sender)];
      if (b->seq <= ib.completed_seq) {
        // Duplicate of an accepted batch (a lost ack, a duplicated
        // message): do not re-materialize; re-confirm idempotently.
        p.pending_acks.emplace_back(m.sender, b->seq);
        continue;
      }
      CF_CHECK_MSG(b->seq <= ib.granted_seq,
                   "transfer batch with a seq this process never granted");
      if (id == config_.target) {
        total_arrivals_ += b->entities.size();
        if (metrics_) round_counts_.consumptions += b->entities.size();
      } else {
        if (!landing_is_safe(p, b->entities)) {
          // Deferred acceptance: the strip promised at grant time is no
          // longer free (the grant may have been issued rounds ago under
          // message loss). Withhold the ack; the sender retains the
          // batch and re-offers next round.
          ++deferred_acceptances_;
          continue;
        }
        for (Entity& e : b->entities) p.state.members.push_back(e);
      }
      ib.completed_seq = b->seq;
      p.pending_acks.emplace_back(m.sender, b->seq);
    }
  }
}

void MessageSystem::exchange_acks() {
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) {
      p.pending_acks.clear();
      continue;
    }
    const CellId id = grid_.id_of(k);
    for (const auto& [to, seq] : p.pending_acks)
      network_->send(Message{id, to, TransferAck{seq}});
    p.pending_acks.clear();
  }

  network_->deliver_all(grid_, inboxes_);
  for (std::size_t k = 0; k < processes_.size(); ++k) {
    MessageProcess& p = processes_[k];
    if (p.state.failed) continue;
    for (const Message& m : inboxes_[k]) {
      const auto* a = std::get_if<TransferAck>(&m.payload);
      if (a == nullptr) continue;
      OutboundLink& ob = p.outbound[p.slot_of(m.sender)];
      if (ob.pending() && a->seq == ob.batch_seq) {
        ob.batch_seq = 0;
        ob.batch.clear();
      }
    }
  }
}

bool MessageSystem::landing_is_safe(const MessageProcess& p,
                                    std::span<const Entity> batch) const {
  // Deferred-acceptance guard: re-validate, against the receiver's
  // CURRENT members, the spacing the grantor's strip check promised when
  // the session opened. Same predicate (and tolerance convention) as the
  // Safe oracle: a pair is in conflict iff within d on BOTH axes. Batch
  // entities are mutually safe by Theorem 5 (they left a safe
  // configuration through one edge, perpendicular coordinates
  // preserved), so only batch-vs-members pairs need checking.
  constexpr double kEps = 1e-9;  // kPredicateEps convention
  const double d = config_.params.center_spacing() - kEps;
  for (const Entity& e : batch) {
    for (const Entity& q : p.state.members) {
      if (std::abs(e.center.x - q.center.x) < d &&
          std::abs(e.center.y - q.center.y) < d)
        return false;
    }
  }
  return true;
}

bool MessageSystem::injection_is_safe(CellId id, Vec2 center) const {
  const Params& prm = config_.params;
  const double half = prm.entity_length() / 2.0;
  const double d = prm.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);
  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;
  const CellState& c = processes_[grid_.index_of(id)].state;
  for (const Entity& q : c.members) {
    if (std::abs(center.x - q.center.x) < d &&
        std::abs(center.y - q.center.y) < d)
      return false;
  }
  if (c.token.has_value()) {
    // clear(members ∪ {new}) ≡ clear(members) ∧ clear({new}) — probe the
    // new entity alone instead of materializing the union (same
    // decomposition as System::injection_is_safe).
    const bool was_clear = entry_strip_clear(id, *c.token, c.members, prm);
    if (was_clear) {
      const Entity probe{EntityId{~0ULL}, center};
      const bool probe_clear = entry_strip_clear(
          id, *c.token, std::span<const Entity>(&probe, 1), prm);
      if (!probe_clear) return false;
    }
  }
  return true;
}

void MessageSystem::inject() {
  const double half = config_.params.entity_length() / 2.0;
  for (const CellId s : config_.sources) {
    CellState& c = processes_[grid_.index_of(s)].state;
    if (c.failed) continue;
    const auto i = static_cast<double>(s.i);
    const auto j = static_cast<double>(s.j);
    Vec2 center{i + 0.5, j + 0.5};
    if (c.next.has_value()) {
      switch (opposite(grid_.direction_between(s, *c.next))) {
        case Direction::kEast: center = {i + 1.0 - half, j + 0.5}; break;
        case Direction::kWest: center = {i + half, j + 0.5}; break;
        case Direction::kNorth: center = {i + 0.5, j + 1.0 - half}; break;
        case Direction::kSouth: center = {i + 0.5, j + half}; break;
      }
    }
    if (!injection_is_safe(s, center)) {
      if (metrics_) ++round_counts_.blocked_injections;
      continue;
    }
    c.members.push_back(Entity{EntityId{next_entity_id_++}, center});
    if (metrics_) ++round_counts_.injections;
  }
}

}  // namespace cellflow
