// Independent oracles over MessageSystem states, mirroring the §III-A
// predicates that src/core/predicates.hpp evaluates on the shared-
// variable System — plus the conservation law the unreliable-network
// data plane must uphold (DESIGN.md §8):
//
//   Safe_{i,j}:     pairwise center spacing ≥ d along some axis
//   Invariant 1:    members lie within their cell
//   Invariant 2:    no entity id appears twice (across cells AND the
//                   in-flight retained batches)
//   Footprints:     physical l×l squares non-overlapping, rs-separated
//   Conservation:   injected = in cells + in flight + consumed, exactly
//
// Like the System oracles, H(x) is not re-checked at end of round; it
// holds at the post-Signal point by construction (signal_step grants
// only with the strip clear — the same code path the shared realization
// uses, whose H pin is tests/test_lemmas.cpp).
//
// These are evaluated every round of the fault-schedule property tests
// (tests/test_net_faults.cpp): under ANY drop/delay/duplication/
// partition schedule, every one of them must hold.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/predicates.hpp"  // Violation, kPredicateEps
#include "msg/msg_system.hpp"

namespace cellflow::msg_audit {

[[nodiscard]] std::optional<Violation> check_safe(
    const MessageSystem& msg, double eps = kPredicateEps);

[[nodiscard]] std::optional<Violation> check_members_in_bounds(
    const MessageSystem& msg, double eps = kPredicateEps);

/// Invariant 2 with global visibility: an entity id must appear exactly
/// once across all Members sets plus the not-yet-accepted in-flight
/// batches — a duplicated or double-accepted transfer trips this.
[[nodiscard]] std::optional<Violation> check_members_disjoint(
    const MessageSystem& msg);

/// As above, but over a caller-provided in-flight snapshot (one
/// `msg.in_flight_entities()` call shared across oracles — check_all
/// uses this so the audit sweep assembles the O(grid) snapshot once).
[[nodiscard]] std::optional<Violation> check_members_disjoint(
    const MessageSystem& msg, std::span<const Entity> in_flight);

[[nodiscard]] std::optional<Violation> check_footprints_separated(
    const MessageSystem& msg, double eps = kPredicateEps);

/// The data plane's ledger: every injected entity is in some cell, in
/// flight (retained by a sender, unaccepted), or consumed at the target.
/// Loss shows up as injected > accounted; duplication as the reverse.
[[nodiscard]] std::optional<Violation> check_conservation(
    const MessageSystem& msg);

/// As above with the in-flight count precomputed (see the span overload
/// of check_members_disjoint).
[[nodiscard]] std::optional<Violation> check_conservation(
    const MessageSystem& msg, std::uint64_t in_flight);

/// Runs every oracle above; returns all violations (empty = all good).
[[nodiscard]] std::vector<Violation> check_all(const MessageSystem& msg,
                                               double eps = kPredicateEps);

}  // namespace cellflow::msg_audit
