#include "msg/msg_audit.hpp"

#include <cmath>
#include <string>
#include <unordered_set>

#include "geometry/rect.hpp"

namespace cellflow::msg_audit {
namespace {

std::string describe_pair(const Entity& a, const Entity& b) {
  return to_string(a.id) + " at " + to_string(a.center) + " vs " +
         to_string(b.id) + " at " + to_string(b.center);
}

}  // namespace

std::optional<Violation> check_safe(const MessageSystem& msg, double eps) {
  const double d = msg.params().center_spacing() - eps;
  for (const CellId id : msg.grid().all_cells()) {
    const auto& members = msg.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        if (std::abs(members[a].center.x - members[b].center.x) < d &&
            std::abs(members[a].center.y - members[b].center.y) < d) {
          return Violation{"Safe", id,
                           describe_pair(members[a], members[b])};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_members_in_bounds(const MessageSystem& msg,
                                                double eps) {
  const double half = msg.params().entity_length() / 2.0;
  for (const CellId id : msg.grid().all_cells()) {
    const auto i = static_cast<double>(id.i);
    const auto j = static_cast<double>(id.j);
    for (const Entity& p : msg.cell(id).members) {
      if (p.center.x < i + half - eps || p.center.x > i + 1.0 - half + eps ||
          p.center.y < j + half - eps || p.center.y > j + 1.0 - half + eps) {
        return Violation{"Invariant1", id,
                         to_string(p.id) + " at " + to_string(p.center) +
                             " outside its cell"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_members_disjoint(const MessageSystem& msg) {
  const std::vector<Entity> in_flight = msg.in_flight_entities();
  return check_members_disjoint(msg, in_flight);
}

std::optional<Violation> check_members_disjoint(
    const MessageSystem& msg, std::span<const Entity> in_flight) {
  std::unordered_set<EntityId> seen;
  for (const CellId id : msg.grid().all_cells()) {
    for (const Entity& p : msg.cell(id).members) {
      if (!seen.insert(p.id).second) {
        return Violation{"Invariant2", id,
                         to_string(p.id) + " appears twice"};
      }
    }
  }
  for (const Entity& p : in_flight) {
    if (!seen.insert(p.id).second) {
      return Violation{"Invariant2", CellId{-1, -1},
                       to_string(p.id) +
                           " is both placed and in flight (duplicated)"};
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_footprints_separated(const MessageSystem& msg,
                                                    double eps) {
  const double l = msg.params().entity_length();
  const double rs = msg.params().safety_gap();
  for (const CellId id : msg.grid().all_cells()) {
    const auto& members = msg.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const Rect ra = members[a].footprint(l);
        const Rect rb = members[b].footprint(l);
        if (ra.overlaps(rb)) {
          return Violation{"FootprintOverlap", id,
                           describe_pair(members[a], members[b])};
        }
        if (ra.linf_gap(rb) < rs - eps) {
          return Violation{"FootprintGap", id,
                           describe_pair(members[a], members[b])};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_conservation(const MessageSystem& msg) {
  return check_conservation(msg, msg.in_flight_entities().size());
}

std::optional<Violation> check_conservation(const MessageSystem& msg,
                                            std::uint64_t in_flight) {
  const std::uint64_t placed = msg.entity_count();
  const std::uint64_t consumed = msg.total_arrivals();
  const std::uint64_t injected = msg.total_injected();
  if (placed + in_flight + consumed != injected) {
    return Violation{
        "Conservation", CellId{-1, -1},
        "injected " + std::to_string(injected) + " != placed " +
            std::to_string(placed) + " + in-flight " +
            std::to_string(in_flight) + " + consumed " +
            std::to_string(consumed)};
  }
  return std::nullopt;
}

std::vector<Violation> check_all(const MessageSystem& msg, double eps) {
  // Single-pass sweep: the O(grid) in-flight snapshot is assembled once
  // and shared by the two oracles that read it. check_all runs on every
  // round of the fault-schedule property tests, so this halves the
  // audit's allocation traffic (pinned by BM_MsgAuditSweep).
  const std::vector<Entity> in_flight = msg.in_flight_entities();
  std::vector<Violation> out;
  if (auto v = check_safe(msg, eps)) out.push_back(*std::move(v));
  if (auto v = check_members_in_bounds(msg, eps))
    out.push_back(*std::move(v));
  if (auto v = check_members_disjoint(msg, in_flight))
    out.push_back(*std::move(v));
  if (auto v = check_footprints_separated(msg, eps))
    out.push_back(*std::move(v));
  if (auto v = check_conservation(msg, in_flight.size()))
    out.push_back(*std::move(v));
  return out;
}

}  // namespace cellflow::msg_audit
