// Synchronous message-passing substrate for the distributed realization
// of the protocol (paper §II-B):
//
//   "What this means for an actual message-passing implementation is the
//    following. At the beginning of each round, Cell_{i,j} broadcasts
//    messages containing the values of these variables and receives
//    similar values from its neighbors."
//
// One protocol round decomposes into three synchronous exchanges, one per
// subroutine, because Signal reads the *fresh* next values and Move reads
// the *fresh* signal values:
//
//   exchange 1:  DistAnnounce{dist}          → Route inputs
//   exchange 2:  IntentAnnounce{next, nonempty} → Signal inputs (NEPrev)
//   exchange 3:  GrantAnnounce{signal}       → Move guard
//                EntityTransfer{entity}      → Members hand-off
//
// Crash semantics fall out naturally: a crashed process sends nothing,
// and a neighbor that misses a DistAnnounce treats the sender's dist as
// ∞ — exactly footnote 1 of the paper ("dist = ∞ can be interpreted as
// its neighbors not receiving a timely response").
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "core/entity.hpp"
#include "util/check.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// Exchange 1 payload: routing estimate.
struct DistAnnounce {
  Dist dist;
};

/// Exchange 2 payload: forwarding intent and occupancy.
struct IntentAnnounce {
  OptCellId next;
  bool has_entities = false;
};

/// Exchange 3 payload: permission grant.
struct GrantAnnounce {
  OptCellId signal;
};

/// Exchange 3 payload: an entity crossing into the addressee.
struct EntityTransfer {
  Entity entity;
};

using Payload =
    std::variant<DistAnnounce, IntentAnnounce, GrantAnnounce, EntityTransfer>;

struct Message {
  CellId sender;
  CellId receiver;
  Payload payload;
};

/// A synchronous round-based network: messages sent during an exchange
/// are delivered together at the exchange barrier; nothing persists
/// across exchanges. Single address space, but the only way cells
/// interact through it is by value — there is no shared state.
class SyncNetwork {
 public:
  /// Queues a message for the current exchange.
  void send(Message m);

  /// Exchange barrier: delivers and clears the queue. Returns one inbox
  /// per process, indexed by `grid.index_of(receiver)`. The round driver
  /// calls this once per exchange and hands each process its inbox.
  [[nodiscard]] std::vector<std::vector<Message>> deliver_all(
      const class Grid& grid);

  /// Messages sent since construction (all exchanges).
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  /// Messages sent during the most recently delivered exchange.
  [[nodiscard]] std::uint64_t last_exchange_messages() const noexcept {
    return last_exchange_;
  }

 private:
  std::vector<Message> in_flight_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t last_exchange_ = 0;
};

}  // namespace cellflow
