#include "msg/network.hpp"

#include "grid/grid.hpp"

namespace cellflow {

void SyncNetwork::send(Message m) {
  in_flight_.push_back(std::move(m));
  ++total_messages_;
}

std::vector<std::vector<Message>> SyncNetwork::deliver_all(const Grid& grid) {
  std::vector<std::vector<Message>> inboxes(grid.cell_count());
  last_exchange_ = in_flight_.size();
  for (Message& m : in_flight_) {
    CF_EXPECTS_MSG(grid.contains(m.receiver), "message to unknown process");
    inboxes[grid.index_of(m.receiver)].push_back(std::move(m));
  }
  in_flight_.clear();
  return inboxes;
}

}  // namespace cellflow
