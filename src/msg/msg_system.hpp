// The message-passing realization of System (paper §II-B's "actual
// message-passing implementation"). Each cell is a MessageProcess owning
// ONLY its local Figure-3 state; all interaction goes through SyncNetwork
// messages (see network.hpp for the three-exchange round structure).
//
// Equivalence: on identical configurations (same grid, parameters,
// sources, round-robin choose) and identical fail/recover schedules,
// MessageSystem produces the *exact same execution* as the shared-
// variable System — entity for entity, position for position, round for
// round. tests/test_msg_system.cpp locks this in; it is the evidence
// that the shared-variable automaton of §II faithfully models the
// distributed implementation.
//
// Crash model: a failed process is silent (sends nothing, processes
// nothing). Neighbors that miss its DistAnnounce read dist = ∞
// (footnote 1); missing GrantAnnounce reads as signal = ⊥ — no permission
// can be derived from silence.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cell_state.hpp"
#include "core/choose.hpp"
#include "core/params.hpp"
#include "grid/grid.hpp"
#include "msg/network.hpp"
#include "obs/protocol_metrics.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// Minimal view of a neighbor's announced dist.
struct NeighborDistView {
  CellId id;
  Dist dist;
};

/// One distributed process: the protocol state of a single cell plus the
/// per-round views it assembled from received messages. It never touches
/// another process's state.
struct MessageProcess {
  CellState state;  // Figure-3 variables, local only

  // Views assembled from the current round's inboxes:
  std::vector<NeighborDistView> heard_dists;
  std::vector<CellId> heard_wanting;  // NEPrev candidates
  bool heard_grant_from_next = false;  // did next grant me this round?
};

struct MsgSystemConfig {
  int side = 8;
  Params params{0.25, 0.05, 0.1};
  CellId target{1, 7};
  std::vector<CellId> sources{CellId{1, 0}};
};

class MessageSystem {
 public:
  explicit MessageSystem(MsgSystemConfig config);

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] CellId target() const noexcept { return config_.target; }

  [[nodiscard]] const CellState& cell(CellId id) const {
    return processes_[grid_.index_of(id)].state;
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }
  [[nodiscard]] std::size_t entity_count() const noexcept;

  /// Messages sent since construction / during the last round.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return network_.total_messages();
  }
  [[nodiscard]] std::uint64_t last_round_messages() const noexcept {
    return last_round_messages_;
  }

  /// Crash: the process goes silent. (Its local variables are also set
  /// per the paper's fail action so a later inspection matches System.)
  void fail(CellId id);
  /// §IV recovery: the process restarts from initial protocol state,
  /// keeping its physical entities.
  void recover(CellId id);

  /// One protocol round = three message exchanges (see network.hpp).
  void update();

  /// Attach (or detach, with nullptr) a metrics registry. Protocol
  /// families are labeled {realization="message"}; the message volume is
  /// additionally broken out per exchange in cellflow_messages_total.
  /// On equivalent executions every protocol count matches the
  /// shared-variable System's {realization="shared"} series exactly.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  void exchange_dists();
  void exchange_intents();
  void exchange_grants_and_move();
  void inject();
  [[nodiscard]] bool injection_is_safe(CellId id, Vec2 center) const;

  MsgSystemConfig config_;
  Grid grid_;
  std::vector<MessageProcess> processes_;
  SyncNetwork network_;
  RoundRobinChoose choose_;  // stateless, per-call; same as System default

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  std::uint64_t last_round_messages_ = 0;

  // Observability (optional; every path is a no-op when detached).
  std::unique_ptr<obs::ProtocolMetrics> metrics_;
  obs::ProtocolCounts round_counts_;
  obs::Counter* msgs_dist_ = nullptr;
  obs::Counter* msgs_intent_ = nullptr;
  obs::Counter* msgs_grant_ = nullptr;
  obs::Counter* msgs_transfer_ = nullptr;
};

}  // namespace cellflow
