// The message-passing realization of System (paper §II-B's "actual
// message-passing implementation"). Each cell is a MessageProcess owning
// ONLY its local Figure-3 state; all interaction goes through a
// NetworkModel (src/net) — reliable SyncNetwork by default, or a
// FaultyNetwork applying a seeded loss/delay/duplication/partition
// schedule.
//
// Equivalence: on identical configurations (same grid, parameters,
// sources, round-robin choose) and identical fail/recover schedules, a
// MessageSystem over a reliable network produces the *exact same
// execution* as the shared-variable System — entity for entity, position
// for position, round for round. tests/test_msg_system.cpp locks this
// in; tests/test_net_faults.cpp extends the pin to a zero-fault
// FaultyNetwork.
//
// Fault tolerance (DESIGN.md §8): control-plane messages are droppable
// with footnote-1 semantics (missed dist ≡ ∞, missed intent ≡ not
// wanting, missed grant ≡ ⊥; a *delayed* grant is discarded as expired —
// permission is only ever valid in the round whose Signal step issued
// it). The data plane is loss-proof by construction: entities that cross
// a boundary are retained by the sender in a per-link stop-and-wait
// batch, re-offered every round, deduplicated by the grant's session
// seq, and only materialized at the receiver when the landing is
// provably safe against the receiver's current members (deferred
// acceptance — an unsafe landing is simply not acknowledged, and the
// sender re-offers). Entities are never destroyed or duplicated under
// any fault schedule; src/msg/msg_audit.hpp holds the oracles.
//
// Crash model: a failed process is silent (sends nothing, processes
// nothing; messages addressed to it are lost — the data plane's
// retention covers in-flight batches). Its Figure-3 protocol variables
// reset per the paper's fail action, but the transport-session state
// (seq counters, retained batches) is STABLE storage surviving fail and
// recover: it is the ledger that makes the hand-off exactly-once, and a
// process that forgot it could double-accept a re-offered batch.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/cell_state.hpp"
#include "core/choose.hpp"
#include "core/params.hpp"
#include "grid/grid.hpp"
#include "net/network_model.hpp"
#include "obs/protocol_metrics.hpp"
#include "util/ids.hpp"

namespace cellflow::obs {
class EngineTelemetry;
class PhaseProfiler;
}  // namespace cellflow::obs

namespace cellflow::snapshot {
struct Access;
}  // namespace cellflow::snapshot

namespace cellflow {

/// Minimal view of a neighbor's announced dist.
struct NeighborDistView {
  CellId id;
  Dist dist;
};

/// Sender half of a per-link transfer session (stop-and-wait): at most
/// one unacknowledged batch per outgoing link, retained until confirmed.
struct OutboundLink {
  /// Highest grant seq heard on this link (dedups duplicated grants).
  std::uint64_t heard_seq = 0;
  /// The retained batch awaiting an ack, stamped with the grant seq it
  /// answered. Empty + seq 0 when idle.
  std::uint64_t batch_seq = 0;
  std::vector<Entity> batch;

  [[nodiscard]] bool pending() const noexcept { return batch_seq != 0; }
};

/// Receiver half of a per-link transfer session: grants stamp strictly
/// increasing seqs; a batch is accepted at most once per seq.
struct InboundLink {
  /// Seq stamped into the most recent grant issued on this link.
  std::uint64_t granted_seq = 0;
  /// Highest batch seq accepted (everything ≤ this is a duplicate).
  std::uint64_t completed_seq = 0;
};

/// One distributed process: the protocol state of a single cell plus the
/// per-round views it assembled from received messages. It never touches
/// another process's state.
struct MessageProcess {
  CellState state;  // Figure-3 variables, local only

  // Fixed wiring (grid.neighbors order), set once at construction.
  std::vector<CellId> nbrs;

  // Transport-session state, indexed like `nbrs` (stable across crash).
  std::vector<OutboundLink> outbound;
  std::vector<InboundLink> inbound;

  // Views assembled from the current round's inboxes:
  std::vector<NeighborDistView> heard_dists;
  NeighborSet heard_wanting;               // NEPrev candidates (inline)
  std::vector<std::size_t> heard_grants;   // link slots granted this round
  std::vector<std::pair<CellId, std::uint64_t>> pending_acks;

  [[nodiscard]] std::size_t slot_of(CellId nb) const;
};

struct MsgSystemConfig {
  int side = 8;
  Params params{0.25, 0.05, 0.1};
  CellId target{1, 7};
  std::vector<CellId> sources{CellId{1, 0}};
};

class MessageSystem {
 public:
  /// `network` defaults to a reliable SyncNetwork when null.
  explicit MessageSystem(MsgSystemConfig config,
                         std::unique_ptr<NetworkModel> network = nullptr);

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] CellId target() const noexcept { return config_.target; }

  [[nodiscard]] const CellState& cell(CellId id) const {
    return processes_[grid_.index_of(id)].state;
  }
  [[nodiscard]] const MessageProcess& process(CellId id) const {
    return processes_[grid_.index_of(id)];
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }
  [[nodiscard]] std::size_t entity_count() const noexcept;

  /// Entities currently retained in unacknowledged sender batches whose
  /// receiver has NOT yet accepted them — the data plane's in-flight set.
  /// (A batch the receiver accepted but whose ack was lost is excluded:
  /// those entities are already members; the retained copy is a ledger
  /// entry awaiting the idempotent re-ack.) Audit-only global view.
  [[nodiscard]] std::vector<Entity> in_flight_entities() const;

  [[nodiscard]] const NetworkModel& network() const noexcept {
    return *network_;
  }
  /// Messages sent since construction / during the last round.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return network_->total_messages();
  }
  [[nodiscard]] std::uint64_t last_round_messages() const noexcept {
    return last_round_messages_;
  }
  /// Delayed grants discarded as expired (footnote-1 ⊥ reading).
  [[nodiscard]] std::uint64_t expired_grants() const noexcept {
    return expired_grants_;
  }
  /// Batch deliveries deferred because the landing was not safe at
  /// acceptance time (the sender re-offers next round).
  [[nodiscard]] std::uint64_t deferred_acceptances() const noexcept {
    return deferred_acceptances_;
  }

  /// Crash: the process goes silent. (Its local variables are also set
  /// per the paper's fail action so a later inspection matches System;
  /// transport-session state is stable storage and survives.)
  void fail(CellId id);
  /// §IV recovery: the process restarts from initial protocol state,
  /// keeping its physical entities and transport-session ledger.
  void recover(CellId id);

  /// One protocol round = five message exchanges (see net/message.hpp).
  void update();

  /// Attach (or detach, with nullptr) a metrics registry. Protocol
  /// families are labeled {realization="message"}; the message volume is
  /// additionally broken out per exchange in cellflow_messages_total,
  /// and network faults (when the NetworkModel reports any) appear as
  /// cellflow_net_faults_total{fault, exchange}.
  /// On equivalent executions every protocol count matches the
  /// shared-variable System's {realization="shared"} series exactly.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attach a phase profiler (non-owning; nullptr detaches). Spans per
  /// exchange — "dist" | "intent" | "grant" | "transfer" | "ack" |
  /// "inject" — plus one "round" span, all shard = -1 (this realization
  /// is serial). Reporting only.
  void set_profiler(obs::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Attach engine telemetry (non-owning; nullptr detaches). The serial
  /// realization reports work = Σ exchange walls, no barrier/dispatch/
  /// merge components, imbalance pinned 1.0, width 1 — the honest
  /// decomposition of a single-threaded engine. Observation counts obey
  /// the same one-per-round structure as System's.
  void set_telemetry(obs::EngineTelemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  // Snapshot/restore (src/snapshot) reads and rebuilds the full private
  // state; it is the one sanctioned backdoor (DESIGN.md §11).
  friend struct snapshot::Access;

  void exchange_dists();
  void exchange_intents();
  void exchange_grants();
  void exchange_transfers();
  void exchange_acks();
  void inject();
  [[nodiscard]] bool injection_is_safe(CellId id, Vec2 center) const;
  [[nodiscard]] bool landing_is_safe(const MessageProcess& p,
                                     std::span<const Entity> batch) const;
  void flush_network_metrics();

  MsgSystemConfig config_;
  Grid grid_;
  std::vector<MessageProcess> processes_;
  std::unique_ptr<NetworkModel> network_;
  RoundRobinChoose choose_;  // stateless, per-call; same as System default

  /// Per-round inbox buffers, reused across the five exchanges (cleared,
  /// never freed — the steady state performs no per-round allocation).
  std::vector<std::vector<Message>> inboxes_;

  std::uint64_t round_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t next_entity_id_ = 0;
  std::uint64_t last_round_messages_ = 0;
  std::uint64_t expired_grants_ = 0;
  std::uint64_t deferred_acceptances_ = 0;

  // Observability (optional; every path is a no-op when detached).
  std::unique_ptr<obs::ProtocolMetrics> metrics_;
  obs::ProtocolCounts round_counts_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::EngineTelemetry* telemetry_ = nullptr;
  std::array<obs::Counter*, kPayloadTypeCount> msgs_by_type_{};
  std::array<std::uint64_t, kPayloadTypeCount> msgs_flushed_{};
  std::array<std::array<std::uint64_t, kPayloadTypeCount>, kNetFaultCount>
      faults_flushed_{};
};

}  // namespace cellflow
