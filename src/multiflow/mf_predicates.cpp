#include "multiflow/mf_predicates.hpp"

#include <cmath>
#include <unordered_set>

namespace cellflow {

std::optional<MfViolation> check_mf_safe(const MfSystem& sys, double eps) {
  const double d = sys.params().center_spacing();
  for (const CellId id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const Vec2 pa = members[a].entity.center;
        const Vec2 pb = members[b].entity.center;
        if (std::abs(pa.x - pb.x) < d - eps &&
            std::abs(pa.y - pb.y) < d - eps) {
          return MfViolation{"Safe", id,
                             to_string(members[a].entity.id) + " vs " +
                                 to_string(members[b].entity.id)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<MfViolation> check_mf_bounds(const MfSystem& sys, double eps) {
  const double half = sys.params().entity_length() / 2.0;
  for (const CellId id : sys.grid().all_cells()) {
    const auto i = static_cast<double>(id.i);
    const auto j = static_cast<double>(id.j);
    for (const MfEntity& m : sys.cell(id).members) {
      const Vec2 p = m.entity.center;
      const bool ok = p.x - half >= i - eps && p.x + half <= i + 1.0 + eps &&
                      p.y - half >= j - eps && p.y + half <= j + 1.0 + eps;
      if (!ok) {
        return MfViolation{"Invariant1", id, to_string(m.entity.id)};
      }
    }
  }
  return std::nullopt;
}

std::optional<MfViolation> check_mf_disjoint(const MfSystem& sys) {
  std::unordered_set<EntityId> seen;
  for (const CellId id : sys.grid().all_cells()) {
    for (const MfEntity& m : sys.cell(id).members) {
      if (!seen.insert(m.entity.id).second) {
        return MfViolation{"Invariant2", id, to_string(m.entity.id)};
      }
    }
  }
  return std::nullopt;
}

std::optional<MfViolation> check_mf_purity(const MfSystem& sys) {
  for (const CellId id : sys.grid().all_cells()) {
    const auto& members = sys.cell(id).members;
    for (const MfEntity& m : members) {
      if (m.flow != members.front().flow) {
        return MfViolation{"FlowPurity", id,
                           "mixed flows " +
                               std::to_string(members.front().flow) + "/" +
                               std::to_string(m.flow)};
      }
    }
  }
  return std::nullopt;
}

std::vector<MfViolation> check_mf_all(const MfSystem& sys, double eps) {
  std::vector<MfViolation> out;
  if (auto v = check_mf_safe(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_mf_bounds(sys, eps)) out.push_back(*std::move(v));
  if (auto v = check_mf_disjoint(sys)) out.push_back(*std::move(v));
  if (auto v = check_mf_purity(sys)) out.push_back(*std::move(v));
  return out;
}

std::string to_string(const MfViolation& v) {
  return v.predicate + " violated at " + to_string(v.cell) + ": " + v.detail;
}

}  // namespace cellflow
