// Multi-flow extension (paper §V, future work): "to develop algorithms
// for flow control of multiple types of entities with arbitrary flow
// patterns (not necessarily source-destination flows) specified for each
// type."
//
// We implement the natural multi-commodity generalization of the ICDCS'10
// protocol for source-destination flows per type:
//
//   * Every entity carries a FlowId; every flow has its own target and
//     sources. Targets consume only their own flow and act as ordinary
//     cells for other flows (traffic of flow g routes *through* tid_f).
//   * Route runs once per flow: dist_f / next_f are per-flow variables,
//     each anchored at that flow's target — the same synchronous
//     Bellman–Ford, so Lemma 6 / Corollary 7 apply per flow verbatim.
//   * The coupling constraint ("all entities on a cell move identically")
//     forces a choice for cells holding mixed flows, which would have to
//     move two directions at once. We keep cells FLOW-PURE: a cell admits
//     a transfer only when it is empty or its members already belong to
//     the incoming flow. Purity is an invariant (checked by the oracles
//     in mf_predicates.hpp): it holds at Signal time and is preserved by
//     Move because grants precede movement within the round.
//   * Signal is unchanged (the entry-strip geometry is flow-agnostic);
//     NEPrev additionally filters out flow-mismatched predecessors, and
//     the token rotates over them exactly as in Figure 5 — so competing
//     flows time-share a cell fairly, the multi-flow analogue of
//     Lemma 9's fairness.
//   * Move is unchanged: a cell moves its members toward
//     next_{flow(members)} iff that neighbor's signal names it.
//
// Safety (Theorem 5) carries over wholesale — the proof never looks at
// entity identity, only geometry. Progress holds for flow patterns whose
// carved/failed topology leaves each flow a non-blocking path (two flows
// facing head-on in a one-lane corridor can deadlock — that is precisely
// why the paper left the generalization open; tests cover both the
// working and the documented-deadlock regimes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/cell_state.hpp"
#include "core/choose.hpp"
#include "core/entity.hpp"
#include "core/params.hpp"
#include "grid/grid.hpp"
#include "grid/mask.hpp"
#include "util/dist_value.hpp"
#include "util/ids.hpp"

namespace cellflow {

/// Index of a flow (entity type). Dense, starting at 0.
using FlowId = std::uint32_t;

/// One commodity: its consuming target and producing sources.
struct FlowSpec {
  CellId target;
  std::vector<CellId> sources;
};

/// An entity tagged with its flow.
struct MfEntity {
  Entity entity;
  FlowId flow = 0;

  friend bool operator==(const MfEntity&, const MfEntity&) noexcept = default;
};

/// Per-cell state: the Figure-3 variables with dist/next vectorized over
/// flows. Members are flow-pure (all the same flow) in every reachable
/// state.
struct MfCellState {
  std::vector<MfEntity> members;
  std::vector<Dist> dist;    ///< dist[f], anchored at flow f's target
  std::vector<OptCellId> next;  ///< next[f]
  OptCellId token;
  OptCellId signal;
  NeighborSet ne_prev;
  bool failed = false;

  [[nodiscard]] bool has_entities() const noexcept { return !members.empty(); }
  /// Flow of the members. Precondition: nonempty.
  [[nodiscard]] FlowId members_flow() const { return members.front().flow; }
};

struct MfTransferEvent {
  EntityId entity;
  FlowId flow;
  CellId from;
  CellId to;
  bool consumed = false;
};

struct MfRoundEvents {
  std::uint64_t round = 0;
  std::vector<MfTransferEvent> transfers;
  std::vector<std::uint64_t> arrivals_per_flow;
  std::vector<std::pair<CellId, EntityId>> injected;
};

struct MfSystemConfig {
  int side = 8;
  Params params{0.25, 0.05, 0.1};
  std::vector<FlowSpec> flows;
  /// Per-round injection probability at each source (1 = every round).
  double source_rate = 1.0;
};

/// The multi-flow System automaton. Mirrors core/system.hpp's System with
/// per-flow routing and flow-pure admission; see the file comment for the
/// design rationale.
class MfSystem {
 public:
  /// Builds the initial state. Every flow's target anchors its own dist
  /// at 0. Throws when flows are empty, overlap targets, or a source
  /// coincides with its own flow's target.
  MfSystem(MfSystemConfig config, std::unique_ptr<ChoosePolicy> choose,
           std::uint64_t source_seed);

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const Params& params() const noexcept {
    return config_.params;
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return config_.flows.size();
  }
  [[nodiscard]] const FlowSpec& flow(FlowId f) const {
    return config_.flows.at(f);
  }

  [[nodiscard]] const MfCellState& cell(CellId id) const {
    return cells_[grid_.index_of(id)];
  }
  [[nodiscard]] std::span<const MfCellState> cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t arrivals(FlowId f) const {
    return total_arrivals_.at(f);
  }
  [[nodiscard]] std::uint64_t total_arrivals() const noexcept;
  [[nodiscard]] std::size_t entity_count() const noexcept;
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return next_entity_id_;
  }

  /// ρ for flow f under the current failure pattern (BFS oracle).
  [[nodiscard]] std::vector<Dist> reference_distances(FlowId f) const;

  void fail(CellId id);
  void recover(CellId id);

  /// One synchronous round: per-flow Route, Signal, Move, injection.
  const MfRoundEvents& update();
  [[nodiscard]] const MfRoundEvents& last_events() const noexcept {
    return events_;
  }

  /// Direct placement for tests. Validates bounds, the gap requirement,
  /// and flow purity.
  EntityId seed_entity(CellId id, FlowId flow, Vec2 center);

 private:
  void run_route_phase();
  void run_signal_phase();
  void run_move_phase();
  void run_inject_phase();
  [[nodiscard]] bool is_target_of(CellId id, FlowId f) const {
    return config_.flows[f].target == id;
  }
  [[nodiscard]] bool admission_ok(const MfCellState& c, FlowId f) const {
    return c.members.empty() || c.members_flow() == f;
  }
  [[nodiscard]] bool placement_safe(const MfCellState& c, CellId id,
                                    Vec2 center) const;

  MfSystemConfig config_;
  Grid grid_;
  std::vector<MfCellState> cells_;
  std::unique_ptr<ChoosePolicy> choose_;
  Xoshiro256 source_rng_;

  std::uint64_t round_ = 0;
  std::vector<std::uint64_t> total_arrivals_;
  std::uint64_t next_entity_id_ = 0;
  MfRoundEvents events_;
  std::vector<Dist> dist_snapshot_;  // flows × cells, reused per round

  /// Source cells with the flows that inject there, in cell order; a
  /// rotating per-cell priority makes shared-source injection fair.
  std::vector<std::pair<CellId, std::vector<FlowId>>> source_cells_;
  std::vector<std::size_t> inject_priority_;  // per cell index
};

}  // namespace cellflow
