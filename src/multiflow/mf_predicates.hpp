// Safety oracles for the multi-flow extension: the §III-A predicates
// lifted to MfSystem, plus the extension's own flow-purity invariant.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "multiflow/mf_system.hpp"

namespace cellflow {

struct MfViolation {
  std::string predicate;
  CellId cell;
  std::string detail;
};

/// Theorem 5 lifted: pairwise center spacing ≥ d along some axis, within
/// every cell (flow tags are irrelevant to geometry).
[[nodiscard]] std::optional<MfViolation> check_mf_safe(const MfSystem& sys,
                                                       double eps = 1e-9);

/// Invariant 1 lifted: members inside their cell.
[[nodiscard]] std::optional<MfViolation> check_mf_bounds(const MfSystem& sys,
                                                         double eps = 1e-9);

/// Invariant 2 lifted: no entity id in two cells.
[[nodiscard]] std::optional<MfViolation> check_mf_disjoint(
    const MfSystem& sys);

/// The extension's invariant: every cell's members share one flow.
[[nodiscard]] std::optional<MfViolation> check_mf_purity(const MfSystem& sys);

/// All of the above; empty = clean.
[[nodiscard]] std::vector<MfViolation> check_mf_all(const MfSystem& sys,
                                                    double eps = 1e-9);

[[nodiscard]] std::string to_string(const MfViolation& v);

}  // namespace cellflow
