#include "multiflow/mf_system.hpp"

#include <algorithm>
#include <cmath>

#include "core/move.hpp"
#include "core/route.hpp"
#include "core/signal.hpp"
#include "grid/path.hpp"
#include "util/check.hpp"

namespace cellflow {

namespace {

/// Strips flow tags for the geometry helpers of core/ (signal gap checks
/// and movement), which operate on plain entities.
std::vector<Entity> bare_entities(const std::vector<MfEntity>& members) {
  std::vector<Entity> out;
  out.reserve(members.size());
  for (const MfEntity& m : members) out.push_back(m.entity);
  return out;
}

}  // namespace

MfSystem::MfSystem(MfSystemConfig config, std::unique_ptr<ChoosePolicy> choose,
                   std::uint64_t source_seed)
    : config_(std::move(config)),
      grid_(config_.side),
      cells_(grid_.cell_count()),
      choose_(choose ? std::move(choose)
                     : std::make_unique<RoundRobinChoose>()),
      source_rng_(source_seed) {
  CF_EXPECTS_MSG(!config_.flows.empty(), "at least one flow required");
  CF_EXPECTS(config_.source_rate >= 0.0 && config_.source_rate <= 1.0);
  const std::size_t flows = config_.flows.size();
  for (std::size_t a = 0; a < flows; ++a) {
    const FlowSpec& fa = config_.flows[a];
    CF_EXPECTS_MSG(grid_.contains(fa.target), "flow target outside grid");
    for (const CellId s : fa.sources) {
      CF_EXPECTS_MSG(grid_.contains(s), "flow source outside grid");
      CF_EXPECTS_MSG(s != fa.target,
                     "a flow's source cannot be its own target");
    }
    for (std::size_t b = a + 1; b < flows; ++b) {
      CF_EXPECTS_MSG(fa.target != config_.flows[b].target,
                     "two flows sharing a target would be one flow");
    }
  }
  for (MfCellState& c : cells_) {
    c.dist.assign(flows, Dist::infinity());
    c.next.assign(flows, std::nullopt);
  }
  for (FlowId f = 0; f < flows; ++f)
    cells_[grid_.index_of(config_.flows[f].target)].dist[f] = Dist::zero();
  total_arrivals_.assign(flows, 0);
  dist_snapshot_.resize(flows * cells_.size());
  // Group sources by cell for the fair-injection rotation.
  for (FlowId f = 0; f < flows; ++f) {
    for (const CellId s : config_.flows[f].sources) {
      auto it = std::find_if(source_cells_.begin(), source_cells_.end(),
                             [s](const auto& e) { return e.first == s; });
      if (it == source_cells_.end()) {
        source_cells_.emplace_back(s, std::vector<FlowId>{f});
      } else {
        it->second.push_back(f);
      }
    }
  }
  inject_priority_.assign(cells_.size(), 0);
}

std::uint64_t MfSystem::total_arrivals() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t a : total_arrivals_) n += a;
  return n;
}

std::size_t MfSystem::entity_count() const noexcept {
  std::size_t n = 0;
  for (const MfCellState& c : cells_) n += c.members.size();
  return n;
}

std::vector<Dist> MfSystem::reference_distances(FlowId f) const {
  CellMask alive(grid_);
  for (std::size_t k = 0; k < cells_.size(); ++k)
    if (!cells_[k].failed) alive.set(grid_.id_of(k));
  return path_distances(grid_, alive, config_.flows.at(f).target);
}

void MfSystem::fail(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  MfCellState& c = cells_[grid_.index_of(id)];
  c.failed = true;
  for (std::size_t f = 0; f < config_.flows.size(); ++f) {
    c.dist[f] = Dist::infinity();
    c.next[f] = std::nullopt;
  }
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
}

void MfSystem::recover(CellId id) {
  CF_EXPECTS(grid_.contains(id));
  MfCellState& c = cells_[grid_.index_of(id)];
  if (!c.failed) return;
  c.failed = false;
  for (FlowId f = 0; f < config_.flows.size(); ++f) {
    c.dist[f] =
        is_target_of(id, f) ? Dist::zero() : Dist::infinity();
    c.next[f] = std::nullopt;
  }
  c.signal = std::nullopt;
  c.token = std::nullopt;
  c.ne_prev.clear();
}

const MfRoundEvents& MfSystem::update() {
  events_ = MfRoundEvents{};
  events_.round = round_;
  events_.arrivals_per_flow.assign(config_.flows.size(), 0);
  run_route_phase();
  run_signal_phase();
  run_move_phase();
  run_inject_phase();
  ++round_;
  return events_;
}

void MfSystem::run_route_phase() {
  const std::size_t flows = config_.flows.size();
  for (std::size_t k = 0; k < cells_.size(); ++k)
    for (FlowId f = 0; f < flows; ++f)
      dist_snapshot_[f * cells_.size() + k] = cells_[k].dist[f];

  for (std::size_t k = 0; k < cells_.size(); ++k) {
    MfCellState& c = cells_[k];
    if (c.failed) continue;
    const CellId id = grid_.id_of(k);
    for (FlowId f = 0; f < flows; ++f) {
      if (is_target_of(id, f)) {
        c.dist[f] = Dist::zero();
        c.next[f] = std::nullopt;
        continue;
      }
      NeighborDist nds[4];
      std::size_t n = 0;
      for (const Direction d : kAllDirections) {
        if (const auto nb = grid_.neighbor(id, d)) {
          nds[n++] = NeighborDist{
              *nb, dist_snapshot_[f * cells_.size() + grid_.index_of(*nb)]};
        }
      }
      const RouteResult r = route_step(std::span<const NeighborDist>(nds, n));
      c.dist[f] = r.dist;
      c.next[f] = r.next;
    }
  }
}

void MfSystem::run_signal_phase() {
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    MfCellState& c = cells_[k];
    if (c.failed) continue;
    const CellId id = grid_.id_of(k);

    SignalInputs in;
    in.self = id;
    const std::vector<Entity> bare = bare_entities(c.members);
    in.members = bare;
    in.token = c.token;
    // Flow-purity guard on tokens: Figure 5 grants the token holder even
    // when it has dropped out of NEPrev, which is harmless in the base
    // protocol (a holder that left NEPrev no longer moves here). In the
    // multi-flow setting a holder can leave NEPrev *while still pointing
    // here* — it is no longer admissible because our members belong to a
    // different flow. Granting would break purity; dropping the token
    // would starve the waiting flow behind a busy cross-stream. So we
    // treat inadmissibility exactly like an occupied entry strip:
    // BLOCK (signal := ⊥) and hold the token — when our members drain,
    // the waiting flow is served next. This is the multi-flow analogue
    // of Figure 5 line 14 and what makes crossing flows live.
    if (in.token.has_value() && grid_.contains(*in.token)) {
      const MfCellState& tc = cells_[grid_.index_of(*in.token)];
      if (!tc.failed && tc.has_entities()) {
        const FlowId tf = tc.members_flow();
        if (tc.next[tf] == OptCellId{id} && !admission_ok(c, tf) &&
            !is_target_of(id, tf)) {
          c.signal = std::nullopt;
          c.ne_prev = std::move(in.ne_prev);
          continue;  // token unchanged — retry the same flow
        }
      }
    }
    for (const Direction d : kAllDirections) {
      const auto nb = grid_.neighbor(id, d);
      if (!nb) continue;
      const MfCellState& nc = cells_[grid_.index_of(*nb)];
      if (nc.failed || !nc.has_entities()) continue;
      const FlowId nf = nc.members_flow();
      // Flow-pure admission: only predecessors whose flow we can accept.
      // A flow's own target is always admissible to it — arrivals are
      // consumed, never stored, so they cannot mix with our members.
      if (nc.next[nf] == OptCellId{id} &&
          (admission_ok(c, nf) || is_target_of(id, nf)))
        in.ne_prev.push_back(*nb);
    }
    std::sort(in.ne_prev.begin(), in.ne_prev.end());

    SignalResult r = signal_step(std::move(in), config_.params, *choose_);
    c.signal = r.signal;
    c.token = r.token;
    c.ne_prev = std::move(r.ne_prev);
  }
}

void MfSystem::run_move_phase() {
  struct Pending {
    MfEntity entity;
    CellId from;
    CellId to;
  };
  std::vector<Pending> pending;

  for (std::size_t k = 0; k < cells_.size(); ++k) {
    MfCellState& c = cells_[k];
    if (c.failed || !c.has_entities()) continue;
    const CellId id = grid_.id_of(k);
    const FlowId f = c.members_flow();
    const OptCellId dest = c.next[f];
    if (!dest.has_value()) continue;
    if (cells_[grid_.index_of(*dest)].signal != OptCellId{id}) continue;

    MoveResult mr =
        move_step(id, *dest, bare_entities(c.members), config_.params);
    c.members.clear();
    for (Entity& e : mr.staying) c.members.push_back(MfEntity{e, f});
    for (Entity& e : mr.crossed)
      pending.push_back(Pending{MfEntity{e, f}, id, *dest});
  }

  for (Pending& t : pending) {
    MfTransferEvent ev{t.entity.entity.id, t.entity.flow, t.from, t.to,
                       false};
    if (is_target_of(t.to, t.entity.flow)) {
      ev.consumed = true;
      ++total_arrivals_[t.entity.flow];
      ++events_.arrivals_per_flow[t.entity.flow];
    } else {
      MfCellState& dst = cells_[grid_.index_of(t.to)];
      // Purity is guaranteed by the grant rule; re-assert as an internal
      // invariant rather than trusting it silently.
      CF_CHECK_MSG(admission_ok(dst, t.entity.flow),
                   "flow purity violated by a transfer");
      dst.members.push_back(t.entity);
    }
    events_.transfers.push_back(ev);
  }
}

bool MfSystem::placement_safe(const MfCellState& c, CellId id,
                              Vec2 center) const {
  const Params& p = config_.params;
  const double half = p.entity_length() / 2.0;
  const double d = p.center_spacing();
  const auto i = static_cast<double>(id.i);
  const auto j = static_cast<double>(id.j);
  if (center.x - half < i || center.x + half > i + 1.0 ||
      center.y - half < j || center.y + half > j + 1.0)
    return false;
  for (const MfEntity& q : c.members) {
    if (std::abs(center.x - q.entity.center.x) < d &&
        std::abs(center.y - q.entity.center.y) < d)
      return false;
  }
  if (c.token.has_value()) {
    std::vector<Entity> with_new = bare_entities(c.members);
    with_new.push_back(Entity{EntityId{~0ULL}, center});
    const bool was_clear =
        entry_strip_clear(id, *c.token, bare_entities(c.members), p);
    const bool still_clear = entry_strip_clear(id, *c.token, with_new, p);
    if (was_clear && !still_clear) return false;
  }
  return true;
}

void MfSystem::run_inject_phase() {
  const double half = config_.params.entity_length() / 2.0;
  // At most one injection per source cell per round (the paper's "at
  // most one entity in each round"). At a cell shared between flows the
  // flow whose injection succeeded last goes to the back of the queue —
  // a fixed order would let one flow reclaim the cell every time it
  // empties and starve the rest (the injection analogue of assumption
  // (b) in §III-B).
  for (auto& [s, candidates] : source_cells_) {
    MfCellState& c = cells_[grid_.index_of(s)];
    if (c.failed) continue;
    // Assumption (b) of §III-B: a source must not perpetually block a
    // nonempty neighbor. A neighbor of a *different* flow routing through
    // this source can only be admitted once the cell is empty, so while
    // one is waiting the source pauses injection and lets the cell
    // drain; cross-traffic passes, then injection resumes.
    bool cross_flow_waiting = false;
    for (const Direction dir : kAllDirections) {
      const auto nb = grid_.neighbor(s, dir);
      if (!nb) continue;
      const MfCellState& nc = cells_[grid_.index_of(*nb)];
      if (nc.failed || !nc.has_entities()) continue;
      const FlowId nf = nc.members_flow();
      if (nc.next[nf] == OptCellId{s} && !admission_ok(c, nf) &&
          !is_target_of(s, nf)) {
        cross_flow_waiting = true;
        break;
      }
    }
    if (cross_flow_waiting) continue;
    if (config_.source_rate < 1.0 &&
        !source_rng_.bernoulli(config_.source_rate))
      continue;
    std::size_t& prio = inject_priority_[grid_.index_of(s)];
    // Serve exactly the prioritized flow; if it cannot inject because
    // another flow occupies the cell, WAIT (do not let the incumbent
    // refill) — otherwise the incumbent keeps the cell perpetually
    // nonempty and starves the others. Blocking here mirrors the Signal
    // function's blocking and is what discharges assumption (b) of
    // §III-B for shared sources. Single-flow sources never block.
    const FlowId f = candidates[prio % candidates.size()];
    if (!admission_ok(c, f)) continue;

    // Entry-edge placement opposite this flow's next direction.
    const auto i = static_cast<double>(s.i);
    const auto j = static_cast<double>(s.j);
    Vec2 center{i + 0.5, j + 0.5};
    if (c.next[f].has_value()) {
      switch (opposite(grid_.direction_between(s, *c.next[f]))) {
        case Direction::kEast: center = {i + 1.0 - half, j + 0.5}; break;
        case Direction::kWest: center = {i + half, j + 0.5}; break;
        case Direction::kNorth: center = {i + 0.5, j + 1.0 - half}; break;
        case Direction::kSouth: center = {i + 0.5, j + half}; break;
      }
    }
    if (!placement_safe(c, s, center)) continue;
    const EntityId eid{next_entity_id_++};
    c.members.push_back(MfEntity{Entity{eid, center}, f});
    events_.injected.emplace_back(s, eid);
    prio = (prio + 1) % candidates.size();
  }
}

EntityId MfSystem::seed_entity(CellId id, FlowId flow, Vec2 center) {
  CF_EXPECTS(grid_.contains(id));
  CF_EXPECTS(flow < config_.flows.size());
  MfCellState& c = cells_[grid_.index_of(id)];
  CF_EXPECTS_MSG(admission_ok(c, flow), "flow purity: cell holds another flow");
  CF_EXPECTS_MSG(placement_safe(c, id, center),
                 "seed_entity: unsafe placement");
  const EntityId eid{next_entity_id_++};
  c.members.push_back(MfEntity{Entity{eid, center}, flow});
  return eid;
}

}  // namespace cellflow
