#include "sim/render.hpp"

#include <algorithm>
#include <sstream>

namespace cellflow {

namespace {

char marker_for(const System& sys, CellId id) {
  if (sys.cell(id).failed) return 'X';
  if (id == sys.target()) return 'T';
  const auto srcs = sys.sources();
  if (std::find(srcs.begin(), srcs.end(), id) != srcs.end()) return 'S';
  return ' ';
}

char arrow_for(const System& sys, CellId id) {
  const OptCellId next = sys.cell(id).next;
  if (!next.has_value()) return ' ';
  if (next->i > id.i) return '>';
  if (next->i < id.i) return '<';
  if (next->j > id.j) return '^';
  return 'v';
}

}  // namespace

std::string render_ascii(const System& sys, const RenderOptions& opts) {
  const int n = sys.grid().side();
  std::ostringstream os;
  for (int j = n - 1; j >= 0; --j) {
    os << j << (j < 10 ? "  " : " ");
    for (int i = 0; i < n; ++i) {
      const CellId id{i, j};
      const CellState& c = sys.cell(id);
      os << '[' << marker_for(sys, id);
      if (opts.show_dist) {
        if (c.dist.is_infinite()) {
          os << " ~";
        } else if (c.dist.hops() < 100) {
          os << (c.dist.hops() < 10 ? " " : "") << c.dist.hops();
        } else {
          os << "##";
        }
      } else {
        const std::size_t count = c.members.size();
        if (count == 0) {
          os << " .";
        } else if (count < 10) {
          os << ' ' << count;
        } else {
          os << "#+";
        }
      }
      os << (opts.show_next_arrows ? arrow_for(sys, id) : ' ') << ']';
    }
    os << '\n';
  }
  os << "   ";
  for (int i = 0; i < n; ++i) os << "  " << i << (i < 10 ? "  " : " ");
  os << '\n';
  return os.str();
}

std::string render_summary(const System& sys) {
  std::size_t failed = 0;
  for (const CellState& c : sys.cells())
    if (c.failed) ++failed;
  std::ostringstream os;
  os << "round " << sys.round() << ": " << sys.entity_count()
     << " entities in flight, " << sys.total_arrivals() << " arrived, "
     << failed << '/' << sys.grid().cell_count() << " cells failed";
  return os.str();
}

}  // namespace cellflow
