// Execution traces: a compact round-by-round journal of everything
// observable that happened (failures, recoveries, injections, transfers,
// consumptions, grants). Uses:
//   * determinism/replay tests — two runs from the same seeds must produce
//     byte-identical traces;
//   * debugging — the ascii_playback example prints a trace alongside the
//     grid renders;
//   * regression pinning — golden traces for tiny scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/observers.hpp"

namespace cellflow {

/// One journal entry.
struct TraceRecord {
  enum class Kind {
    kFail,      // cell became failed this round
    kRecover,   // cell recovered this round
    kInject,    // entity created at a source
    kTransfer,  // entity handed to a neighbor cell
    kConsume,   // entity consumed by the target
  };

  std::uint64_t round = 0;
  Kind kind = Kind::kTransfer;
  CellId cell;           // fail/recover/inject: the cell; transfers: from
  CellId other;          // transfers: destination (unused otherwise)
  EntityId entity;       // inject/transfer/consume

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Observer that accumulates TraceRecords. Failures/recoveries are
/// detected by diffing the failed flags round-over-round (they are
/// environment actions, not System events).
class TraceRecorder final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// One line per record: "round kind args...".
  [[nodiscard]] std::string serialize() const;

 private:
  std::vector<TraceRecord> records_;
  std::vector<bool> prev_failed_;  // lazily sized on first round
};

[[nodiscard]] std::string to_string(const TraceRecord& r);

/// Inverse of TraceRecorder::serialize(): parses one record per line and
/// round-trips exactly (parse_trace(serialize()) == records()). Throws
/// std::runtime_error with a line number on malformed input — traces are
/// regression artifacts, so a syntax drift must fail loudly, not skip.
[[nodiscard]] std::vector<TraceRecord> parse_trace(std::string_view text);

}  // namespace cellflow
