// The experiment harness shared by every benchmark binary: builds a
// System + FailureModel from a declarative WorkloadSpec, runs it for K
// rounds, and reports throughput (optionally aggregated over seeds).
//
// Each of the paper's figures is one sweep over WorkloadSpecs — see
// bench/fig7_throughput_vs_rs.cpp etc.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "sim/observers.hpp"
#include "util/stats.hpp"

namespace cellflow {

/// Declarative description of one simulation run.
struct WorkloadSpec {
  SystemConfig config;

  /// Cells to fail permanently at round 0 (everything NOT on the path),
  /// forcing Route along a prescribed shape — used by Figure 8. Empty:
  /// the full grid is alive. Must form a simple path.
  std::vector<CellId> carve_path;

  /// Like carve_path but an arbitrary kept set (may branch — used for
  /// merge topologies). Mutually exclusive with carve_path.
  std::vector<CellId> carve_keep;

  /// Token-choice policy name ("round-robin" | "random" | "lowest-id").
  std::string choose_policy = "round-robin";

  /// Per-round injection probability at each source (1.0 = saturating
  /// load, the paper's setting: "entities are added to the source cell").
  double source_rate = 1.0;

  /// §IV stochastic failure model; both 0 disables it (Figures 7–8).
  double pf = 0.0;
  double pr = 0.0;
  bool protect_target = false;

  /// K: number of rounds over which throughput is measured.
  /// (Protocol-variant knobs — SignalRule, MovementRule — live inside
  /// `config`; set them there to run ablation variants through the
  /// harness.)
  std::uint64_t rounds = 2500;

  /// Execution engine for System::update(). Defaults to the ambient
  /// CELLFLOW_THREADS override (serial when unset); bench binaries set
  /// it explicitly via their --threads flag. Never affects results —
  /// the engines are bit-identical — only wall-clock.
  ParallelPolicy parallel = parallel_policy_from_env();

  /// Round scheduler for System::update(); like `parallel`, never
  /// affects results (bit-identical schedulers), only wall-clock.
  RoundScheduler scheduler = RoundScheduler::kActiveSet;

  /// Observability attach points (DESIGN.md §7). Non-owning; both may be
  /// null (the default — zero-cost). When `metrics` is set, the run also
  /// attaches a MetricsObserver so gauges/per-cell counters are filled.
  obs::MetricsRegistry* metrics = nullptr;
  obs::PhaseProfiler* profiler = nullptr;
  /// Engine telemetry (obs/engine_telemetry.hpp): round decomposition,
  /// imbalance, serial fraction. Attached separately from `metrics` so
  /// count-determinism byte-diff consumers can opt out of timing series.
  obs::EngineTelemetry* telemetry = nullptr;
  /// JSONL snapshot stream for the MetricsObserver (needs `metrics`);
  /// one line every `metrics_every` rounds plus a final line.
  std::ostream* metrics_jsonl = nullptr;
  std::uint64_t metrics_every = 0;

  /// Warm start: engine-state snapshot bytes (src/snapshot) to restore
  /// into the freshly built System before the run. The spec must describe
  /// the same configuration the snapshot was taken under; `rounds` then
  /// counts ADDITIONAL rounds from the restored boundary. Non-owning.
  /// @throws snapshot::SnapshotError on mismatch or corruption
  const std::vector<std::uint8_t>* restore_from = nullptr;
  /// When set, receives a snapshot of the final engine state (including
  /// the failure model's stream) after the run — feed it back through
  /// `restore_from` to continue the same trajectory bit-identically.
  std::vector<std::uint8_t>* snapshot_out = nullptr;
};

/// Everything measured in one run.
struct RunResult {
  double throughput = 0.0;        ///< arrivals / rounds
  std::uint64_t arrivals = 0;
  std::uint64_t injected = 0;
  double mean_latency = 0.0;      ///< birth→consumption, completed entities
  double mean_blocked = 0.0;      ///< blocked cells per round
  double mean_population = 0.0;   ///< entities in flight
  bool safety_clean = true;       ///< no oracle violations observed
  std::string safety_report;      ///< nonempty iff !safety_clean
};

/// Runs one workload with the given seed (drives the random choose policy,
/// source coin, and fail/recover model). Every run checks the §III-A
/// safety oracles each round; a violation is reported, never silently
/// ignored.
[[nodiscard]] RunResult run_workload(const WorkloadSpec& spec,
                                     std::uint64_t seed);

/// Runs the workload once per seed and aggregates throughput.
[[nodiscard]] RunningStats run_workload_seeds(const WorkloadSpec& spec,
                                              std::span<const std::uint64_t>
                                                  seeds);

/// The Figure-7 base workload (paper §IV): 8×8 grid, SID = {⟨1,0⟩},
/// tid = ⟨1,7⟩, l = 0.25, K = 2500; entities follow the straight column
/// path ⟨1,0⟩…⟨1,7⟩ of length 8.
[[nodiscard]] WorkloadSpec fig7_base(double rs, double v);

/// The Figure-8 workload: length-8 path with `turns` turns carved into the
/// 8×8 grid, rs = 0.05, K = 2500.
[[nodiscard]] WorkloadSpec fig8_base(std::size_t turns, double v, double l);

/// The Figure-9 workload: straight length-8 path, rs = 0.05, l = 0.2,
/// v = 0.2, K = 20000, stochastic fail/recover (pf, pr).
[[nodiscard]] WorkloadSpec fig9_base(double pf, double pr);

/// Default seed list used by the benches (deterministic).
[[nodiscard]] std::vector<std::uint64_t> default_seeds(std::size_t count);

}  // namespace cellflow
