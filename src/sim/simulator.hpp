// The Simulator: drives a System for K rounds under a FailureModel,
// fanning events out to Observers. Per round:
//
//   1. failure_model.apply(sys)   — environment fail/recover transitions
//   2. sys.update()               — the protocol's atomic round
//   3. observer.on_round(...)     — instrumentation
//
// (Intermediate-phase callbacks are forwarded through System's PhaseHook.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "sim/observers.hpp"

namespace cellflow {

class Simulator {
 public:
  /// Non-owning: the System and FailureModel must outlive the Simulator.
  Simulator(System& sys, FailureModel& failures);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Attaches an observer (non-owning; must outlive the Simulator's runs).
  void add_observer(Observer& obs);

  /// Executes exactly one round.
  void step();

  /// Executes `rounds` rounds, then notifies observers' on_finish.
  void run(std::uint64_t rounds);

  /// Notifies observers' on_finish. run()/run_until() call this
  /// themselves; a driver stepping manually (e.g. tools/cellflow_sim)
  /// calls it once after its loop so end-of-run observers (final JSONL
  /// snapshot, …) still fire.
  void finish();

  /// Runs until `predicate(sys)` is true after a round, or `max_rounds`
  /// elapse. Returns true iff the predicate fired. on_finish is notified
  /// either way.
  template <typename Pred>
  bool run_until(Pred&& predicate, std::uint64_t max_rounds) {
    for (std::uint64_t k = 0; k < max_rounds; ++k) {
      step();
      if (predicate(static_cast<const System&>(sys_))) {
        finish();
        return true;
      }
    }
    finish();
    return false;
  }

  [[nodiscard]] const System& system() const noexcept { return sys_; }

  /// Forwards to System::set_parallel_policy — lets a driver pick the
  /// round engine without reaching around the Simulator. Results are
  /// unaffected (the engines are bit-identical); only wall-clock is.
  void set_parallel_policy(const ParallelPolicy& policy) {
    sys_.set_parallel_policy(policy);
  }

  /// Forwards to System::set_round_scheduler — same contract as the
  /// parallel policy: results are bit-identical across schedulers.
  void set_round_scheduler(RoundScheduler scheduler) {
    sys_.set_round_scheduler(scheduler);
  }

  /// Forward to System's observability attach points (DESIGN.md §7).
  void set_metrics(obs::MetricsRegistry* registry) {
    sys_.set_metrics(registry);
  }
  void set_profiler(obs::PhaseProfiler* profiler) {
    sys_.set_profiler(profiler);
  }
  void set_telemetry(obs::EngineTelemetry* telemetry) {
    sys_.set_telemetry(telemetry);
  }

 private:
  System& sys_;
  FailureModel& failures_;
  std::vector<Observer*> observers_;
};

}  // namespace cellflow
