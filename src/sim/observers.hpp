// Observers: per-round instrumentation attached to a Simulator.
//
// Observers are passive — they read the System and the RoundEvents after
// each round (and optionally the intermediate phase states) and accumulate
// measurements. Everything reported in EXPERIMENTS.md flows through one of
// these.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predicates.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace cellflow {

class Observer {
 public:
  virtual ~Observer() = default;

  /// Called after every completed round.
  virtual void on_round(const System& sys, const RoundEvents& ev) = 0;

  /// Called at the System's intermediate phase points (see UpdatePhase).
  /// Default: ignore.
  virtual void on_phase(const System& /*sys*/, UpdatePhase /*phase*/) {}

  /// Called once when the simulation ends.
  virtual void on_finish(const System& /*sys*/) {}
};

/// K-round throughput (§IV): arrivals at the target over the observed
/// rounds, divided by the number of rounds. Also keeps a windowed series
/// so convergence of the estimate can be inspected.
class ThroughputMeter final : public Observer {
 public:
  /// `window` is the width of the windowed-throughput series (0 = off).
  explicit ThroughputMeter(std::uint64_t window = 0) : window_(window) {}

  void on_round(const System& sys, const RoundEvents& ev) override;

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  /// Arrivals / rounds; 0 before the first round.
  [[nodiscard]] double throughput() const noexcept;
  /// Windowed throughput samples (one per full window).
  [[nodiscard]] const std::vector<double>& windowed() const noexcept {
    return windowed_;
  }

 private:
  std::uint64_t window_;
  std::uint64_t rounds_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t window_arrivals_ = 0;
  std::uint64_t window_rounds_ = 0;
  std::vector<double> windowed_;
};

/// Evaluates the §III-A safety oracles every round (Safe, Invariants 1–2,
/// footprint separation) and predicate H at the post-Signal phase point.
/// Collects violations instead of throwing so a test can report them all.
class SafetyMonitor final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;
  void on_phase(const System& sys, UpdatePhase phase) override;

  [[nodiscard]] bool clean() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// First few violations, formatted (test-failure messages).
  [[nodiscard]] std::string report(std::size_t limit = 5) const;

 private:
  std::vector<Violation> violations_;
};

/// Watches the distributed dist/next values converge to the BFS reference
/// (Lemma 6 / Corollary 7). Each round it checks whether every
/// target-connected cell's dist equals ρ and next points along a shortest
/// path; records the first round of an agreement that then persisted to
/// the end of the run.
class RoutingStabilizationMonitor final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;

  /// Round at which agreement last became true (and held through the final
  /// observed round); nullopt if never agreed or not holding at the end.
  [[nodiscard]] std::optional<std::uint64_t> stabilized_at() const noexcept;
  [[nodiscard]] bool currently_agrees() const noexcept { return agrees_; }

 private:
  static bool agreement(const System& sys);

  bool agrees_ = false;
  std::optional<std::uint64_t> agree_since_;
};

/// Per-round movement/blocking counters: how often cells had permission,
/// how often a token grant was blocked by an occupied strip.
class BlockingStats final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;

  [[nodiscard]] std::uint64_t total_moves() const noexcept { return moves_; }
  [[nodiscard]] std::uint64_t total_blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  /// Mean blocked cells per round.
  [[nodiscard]] double mean_blocked_per_round() const noexcept;
  /// Mean moving cells per round.
  [[nodiscard]] double mean_moving_per_round() const noexcept;

 private:
  std::uint64_t moves_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t rounds_ = 0;
};

/// Tracks the entity population and per-cell occupancy.
class OccupancyTracker final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;

  [[nodiscard]] const RunningStats& population() const noexcept {
    return population_;
  }
  /// Peak simultaneous entities in any single cell.
  [[nodiscard]] std::size_t peak_cell_occupancy() const noexcept {
    return peak_cell_;
  }

 private:
  RunningStats population_;
  std::size_t peak_cell_ = 0;
};

/// Bridges RoundEvents into a MetricsRegistry: instantaneous gauges
/// (cellflow_round, cellflow_population), per-cell event counters
/// (cellflow_cell_{blocked,moved,injected}_total, labeled cell="i,j"),
/// and — when stream_jsonl is armed — a periodic JSONL snapshot line
/// every N rounds plus one final line at on_finish.
///
/// Runs entirely on the calling (driver) thread, after the round's phase
/// barriers, so everything it derives is deterministic regardless of the
/// System's ParallelPolicy. Per-cell counter handles are cached after the
/// first touch; steady-state cost is one map lookup per event.
class MetricsObserver final : public Observer {
 public:
  /// Non-owning: `registry` must outlive the observer.
  explicit MetricsObserver(obs::MetricsRegistry& registry);

  /// Arms periodic JSONL snapshots: one line after every `every` rounds
  /// (0 disarms), plus a final line at on_finish. `out` is non-owning.
  void stream_jsonl(std::ostream* out, std::uint64_t every);

  void on_round(const System& sys, const RoundEvents& ev) override;
  void on_finish(const System& sys) override;

 private:
  obs::Counter* cell_counter(std::map<CellId, obs::Counter*>& cache,
                             const char* name, const char* help, CellId id);

  obs::MetricsRegistry& registry_;
  obs::Gauge* round_gauge_;
  obs::Gauge* population_;
  std::map<CellId, obs::Counter*> blocked_;
  std::map<CellId, obs::Counter*> moved_;
  std::map<CellId, obs::Counter*> injected_;

  std::ostream* jsonl_out_ = nullptr;
  std::uint64_t jsonl_every_ = 0;
  std::uint64_t last_round_ = 0;
};

/// Birth-to-consumption latency per entity (rounds), via injection and
/// consumed-transfer events.
class ProgressTracker final : public Observer {
 public:
  void on_round(const System& sys, const RoundEvents& ev) override;

  [[nodiscard]] const RunningStats& latency() const noexcept {
    return latency_;
  }
  /// Entities injected but not yet consumed.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return birth_round_.size();
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return static_cast<std::uint64_t>(latency_.count());
  }

 private:
  std::unordered_map<EntityId, std::uint64_t> birth_round_;
  RunningStats latency_;
};

}  // namespace cellflow
