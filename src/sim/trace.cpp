#include "sim/trace.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace cellflow {

void TraceRecorder::on_round(const System& sys, const RoundEvents& ev) {
  const auto cells = sys.cells();
  if (prev_failed_.size() != cells.size()) {
    // First observed round: treat the pre-round state as all-alive so the
    // initial carve (if any) shows up as explicit fail records.
    prev_failed_.assign(cells.size(), false);
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    if (cells[k].failed != prev_failed_[k]) {
      TraceRecord r;
      r.round = ev.round;
      r.kind = cells[k].failed ? TraceRecord::Kind::kFail
                               : TraceRecord::Kind::kRecover;
      r.cell = sys.grid().id_of(k);
      records_.push_back(r);
      prev_failed_[k] = cells[k].failed;
    }
  }
  for (const auto& [cell, eid] : ev.injected) {
    TraceRecord r;
    r.round = ev.round;
    r.kind = TraceRecord::Kind::kInject;
    r.cell = cell;
    r.entity = eid;
    records_.push_back(r);
  }
  for (const TransferEvent& t : ev.transfers) {
    TraceRecord r;
    r.round = ev.round;
    r.kind = t.consumed ? TraceRecord::Kind::kConsume
                        : TraceRecord::Kind::kTransfer;
    r.cell = t.from;
    r.other = t.to;
    r.entity = t.entity;
    records_.push_back(r);
  }
}

std::string to_string(const TraceRecord& r) {
  std::ostringstream os;
  os << r.round << ' ';
  switch (r.kind) {
    case TraceRecord::Kind::kFail:
      os << "fail " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kRecover:
      os << "recover " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kInject:
      os << "inject " << to_string(r.entity) << " at " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kTransfer:
      os << "transfer " << to_string(r.entity) << ' ' << to_string(r.cell)
         << " -> " << to_string(r.other);
      break;
    case TraceRecord::Kind::kConsume:
      os << "consume " << to_string(r.entity) << ' ' << to_string(r.cell)
         << " -> " << to_string(r.other);
      break;
  }
  return os.str();
}

std::string TraceRecorder::serialize() const {
  std::ostringstream os;
  for (const TraceRecord& r : records_) os << to_string(r) << '\n';
  return os.str();
}

namespace {

/// Cursor over one serialized trace line; every helper throws on
/// malformed input (the caller prefixes the line number).
struct LineParser {
  std::string_view rest;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at '" + std::string(rest) + "'");
  }

  void expect(std::string_view token) {
    if (!rest.starts_with(token)) fail("expected '" + std::string(token) + "'");
    rest.remove_prefix(token.size());
  }

  template <typename Int>
  Int number() {
    Int v{};
    const auto* begin = rest.data();
    const auto* end = rest.data() + rest.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{}) fail("expected a number");
    rest.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return v;
  }

  std::string_view word() {
    const std::size_t n = rest.find(' ');
    const std::string_view w = rest.substr(0, n);
    if (w.empty()) fail("expected a word");
    rest.remove_prefix(n == std::string_view::npos ? rest.size() : n);
    return w;
  }

  CellId cell() {
    expect("<");
    const int i = number<int>();
    expect(",");
    const int j = number<int>();
    expect(">");
    return CellId{i, j};
  }

  EntityId entity() {
    expect("p");
    return EntityId{number<std::uint64_t>()};
  }
};

TraceRecord parse_record(std::string_view line) {
  LineParser p{line};
  TraceRecord r;
  r.round = p.number<std::uint64_t>();
  p.expect(" ");
  const std::string_view kind = p.word();
  if (kind == "fail" || kind == "recover") {
    r.kind = kind == "fail" ? TraceRecord::Kind::kFail
                            : TraceRecord::Kind::kRecover;
    p.expect(" ");
    r.cell = p.cell();
  } else if (kind == "inject") {
    r.kind = TraceRecord::Kind::kInject;
    p.expect(" ");
    r.entity = p.entity();
    p.expect(" at ");
    r.cell = p.cell();
  } else if (kind == "transfer" || kind == "consume") {
    r.kind = kind == "transfer" ? TraceRecord::Kind::kTransfer
                                : TraceRecord::Kind::kConsume;
    p.expect(" ");
    r.entity = p.entity();
    p.expect(" ");
    r.cell = p.cell();
    p.expect(" -> ");
    r.other = p.cell();
  } else {
    p.fail("unknown record kind '" + std::string(kind) + "'");
  }
  if (!p.rest.empty()) p.fail("trailing garbage");
  return r;
}

}  // namespace

std::vector<TraceRecord> parse_trace(std::string_view text) {
  std::vector<TraceRecord> records;
  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    if (!line.empty()) {
      try {
        records.push_back(parse_record(line));
      } catch (const std::exception& e) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": " + e.what());
      }
    }
    start = end + 1;
    ++line_no;
  }
  return records;
}

}  // namespace cellflow
