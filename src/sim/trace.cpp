#include "sim/trace.hpp"

#include <sstream>

namespace cellflow {

void TraceRecorder::on_round(const System& sys, const RoundEvents& ev) {
  const auto cells = sys.cells();
  if (prev_failed_.size() != cells.size()) {
    // First observed round: treat the pre-round state as all-alive so the
    // initial carve (if any) shows up as explicit fail records.
    prev_failed_.assign(cells.size(), false);
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    if (cells[k].failed != prev_failed_[k]) {
      TraceRecord r;
      r.round = ev.round;
      r.kind = cells[k].failed ? TraceRecord::Kind::kFail
                               : TraceRecord::Kind::kRecover;
      r.cell = sys.grid().id_of(k);
      records_.push_back(r);
      prev_failed_[k] = cells[k].failed;
    }
  }
  for (const auto& [cell, eid] : ev.injected) {
    TraceRecord r;
    r.round = ev.round;
    r.kind = TraceRecord::Kind::kInject;
    r.cell = cell;
    r.entity = eid;
    records_.push_back(r);
  }
  for (const TransferEvent& t : ev.transfers) {
    TraceRecord r;
    r.round = ev.round;
    r.kind = t.consumed ? TraceRecord::Kind::kConsume
                        : TraceRecord::Kind::kTransfer;
    r.cell = t.from;
    r.other = t.to;
    r.entity = t.entity;
    records_.push_back(r);
  }
}

std::string to_string(const TraceRecord& r) {
  std::ostringstream os;
  os << r.round << ' ';
  switch (r.kind) {
    case TraceRecord::Kind::kFail:
      os << "fail " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kRecover:
      os << "recover " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kInject:
      os << "inject " << to_string(r.entity) << " at " << to_string(r.cell);
      break;
    case TraceRecord::Kind::kTransfer:
      os << "transfer " << to_string(r.entity) << ' ' << to_string(r.cell)
         << " -> " << to_string(r.other);
      break;
    case TraceRecord::Kind::kConsume:
      os << "consume " << to_string(r.entity) << ' ' << to_string(r.cell)
         << " -> " << to_string(r.other);
      break;
  }
  return os.str();
}

std::string TraceRecorder::serialize() const {
  std::ostringstream os;
  for (const TraceRecord& r : records_) os << to_string(r) << '\n';
  return os.str();
}

}  // namespace cellflow
