#include "sim/simulator.hpp"

namespace cellflow {

Simulator::Simulator(System& sys, FailureModel& failures)
    : sys_(sys), failures_(failures) {
  sys_.set_phase_hook([this](const System& s, UpdatePhase phase) {
    for (Observer* o : observers_) o->on_phase(s, phase);
  });
}

Simulator::~Simulator() { sys_.set_phase_hook(nullptr); }

void Simulator::add_observer(Observer& obs) { observers_.push_back(&obs); }

void Simulator::step() {
  failures_.apply(sys_);
  const RoundEvents& ev = sys_.update();
  for (Observer* o : observers_) o->on_round(sys_, ev);
}

void Simulator::run(std::uint64_t rounds) {
  for (std::uint64_t k = 0; k < rounds; ++k) step();
  finish();
}

void Simulator::finish() {
  for (Observer* o : observers_) o->on_finish(sys_);
}

}  // namespace cellflow
