#include "sim/observers.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/export.hpp"

namespace cellflow {

namespace {

std::string cell_label_value(CellId id) {
  return std::to_string(id.i) + "," + std::to_string(id.j);
}

}  // namespace

MetricsObserver::MetricsObserver(obs::MetricsRegistry& registry)
    : registry_(registry),
      round_gauge_(&registry.gauge("cellflow_round",
                                   "Protocol round counter (instantaneous).")),
      population_(&registry.gauge(
          "cellflow_population",
          "Entities currently in the system (instantaneous).")) {}

void MetricsObserver::stream_jsonl(std::ostream* out, std::uint64_t every) {
  jsonl_out_ = out;
  jsonl_every_ = every;
}

obs::Counter* MetricsObserver::cell_counter(
    std::map<CellId, obs::Counter*>& cache, const char* name,
    const char* help, CellId id) {
  const auto it = cache.find(id);
  if (it != cache.end()) return it->second;
  obs::Counter& c =
      registry_.counter(name, help, {{"cell", cell_label_value(id)}});
  cache.emplace(id, &c);
  return &c;
}

void MetricsObserver::on_round(const System& sys, const RoundEvents& ev) {
  last_round_ = ev.round;
  round_gauge_->set(static_cast<double>(ev.round));
  population_->set(static_cast<double>(sys.entity_count()));
  for (const CellId id : ev.blocked)
    cell_counter(blocked_, "cellflow_cell_blocked_total",
                 "Signal refusals, by granting cell.", id)
        ->inc();
  for (const CellId id : ev.moved)
    cell_counter(moved_, "cellflow_cell_moved_total",
                 "Applied movements, by moving cell.", id)
        ->inc();
  for (const auto& [cell, eid] : ev.injected) {
    (void)eid;
    cell_counter(injected_, "cellflow_cell_injected_total",
                 "Accepted injections, by source cell.", cell)
        ->inc();
  }
  if (jsonl_out_ != nullptr && jsonl_every_ != 0 &&
      (ev.round + 1) % jsonl_every_ == 0)
    *jsonl_out_ << obs::jsonl_snapshot(registry_, ev.round);
}

void MetricsObserver::on_finish(const System& /*sys*/) {
  if (jsonl_out_ != nullptr)
    *jsonl_out_ << obs::jsonl_snapshot(registry_, last_round_);
}

void ThroughputMeter::on_round(const System& /*sys*/, const RoundEvents& ev) {
  ++rounds_;
  arrivals_ += ev.arrivals;
  if (window_ == 0) return;
  window_arrivals_ += ev.arrivals;
  if (++window_rounds_ == window_) {
    windowed_.push_back(static_cast<double>(window_arrivals_) /
                        static_cast<double>(window_));
    window_arrivals_ = 0;
    window_rounds_ = 0;
  }
}

double ThroughputMeter::throughput() const noexcept {
  return rounds_ == 0
             ? 0.0
             : static_cast<double>(arrivals_) / static_cast<double>(rounds_);
}

void SafetyMonitor::on_round(const System& sys, const RoundEvents& /*ev*/) {
  for (auto& v : check_all(sys)) violations_.push_back(std::move(v));
}

void SafetyMonitor::on_phase(const System& sys, UpdatePhase phase) {
  // Lemma 3 asserts H exactly at the post-Signal point of each round.
  if (phase != UpdatePhase::kAfterSignal) return;
  if (auto v = check_h_predicate(sys)) violations_.push_back(*std::move(v));
}

std::string SafetyMonitor::report(std::size_t limit) const {
  std::ostringstream os;
  os << violations_.size() << " violation(s)";
  const std::size_t n = std::min(limit, violations_.size());
  for (std::size_t k = 0; k < n; ++k)
    os << "\n  " << to_string(violations_[k]);
  return os.str();
}

bool RoutingStabilizationMonitor::agreement(const System& sys) {
  const auto rho = sys.reference_distances();
  const Grid& grid = sys.grid();
  for (const CellId id : grid.all_cells()) {
    const Dist expect = rho[grid.index_of(id)];
    if (expect.is_infinite()) continue;  // not target-connected: no claim
    const CellState& c = sys.cell(id);
    if (c.failed) continue;  // ρ finite requires alive; defensive
    if (c.dist != expect) return false;
    if (id == sys.target()) continue;
    // next must point at a neighbor one hop closer (Lemma 6's fixed path).
    if (!c.next.has_value()) return false;
    const Dist nb_rho = rho[grid.index_of(*c.next)];
    if (nb_rho.is_infinite() || nb_rho.plus_one() != expect) return false;
  }
  return true;
}

void RoutingStabilizationMonitor::on_round(const System& sys,
                                           const RoundEvents& ev) {
  const bool now = agreement(sys);
  if (now && !agrees_) agree_since_ = ev.round;
  if (!now) agree_since_.reset();
  agrees_ = now;
}

std::optional<std::uint64_t> RoutingStabilizationMonitor::stabilized_at()
    const noexcept {
  return agrees_ ? agree_since_ : std::nullopt;
}

void BlockingStats::on_round(const System& /*sys*/, const RoundEvents& ev) {
  ++rounds_;
  moves_ += ev.moved.size();
  blocks_ += ev.blocked.size();
}

double BlockingStats::mean_blocked_per_round() const noexcept {
  return rounds_ == 0
             ? 0.0
             : static_cast<double>(blocks_) / static_cast<double>(rounds_);
}

double BlockingStats::mean_moving_per_round() const noexcept {
  return rounds_ == 0
             ? 0.0
             : static_cast<double>(moves_) / static_cast<double>(rounds_);
}

void OccupancyTracker::on_round(const System& sys, const RoundEvents& /*ev*/) {
  population_.add(static_cast<double>(sys.entity_count()));
  for (const CellState& c : sys.cells())
    peak_cell_ = std::max(peak_cell_, c.members.size());
}

void ProgressTracker::on_round(const System& /*sys*/, const RoundEvents& ev) {
  for (const auto& [cell, eid] : ev.injected) {
    (void)cell;
    birth_round_.emplace(eid, ev.round);
  }
  for (const TransferEvent& t : ev.transfers) {
    if (!t.consumed) continue;
    const auto it = birth_round_.find(t.entity);
    if (it == birth_round_.end()) continue;  // seeded, not injected
    latency_.add(static_cast<double>(ev.round - it->second));
    birth_round_.erase(it);
  }
}

}  // namespace cellflow
