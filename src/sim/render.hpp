// ASCII rendering of a System state in the style of the paper's Figure 1:
// grid cells with the target (T), sources (S), failed cells (X), per-cell
// entity counts, and next-pointer arrows. Meant for terminals, examples,
// and debugging dumps attached to test failures.
#pragma once

#include <string>

#include "core/system.hpp"

namespace cellflow {

struct RenderOptions {
  bool show_next_arrows = true;  ///< draw ^v<> for each cell's next
  bool show_dist = false;        ///< print dist instead of entity count
};

/// Multi-line drawing, row N−1 at the top (y grows upward, as in Fig. 1).
/// Each cell renders as a fixed-width box, e.g. "[S 2>]": marker, entity
/// count (or dist), next-arrow.
[[nodiscard]] std::string render_ascii(const System& sys,
                                       const RenderOptions& opts = {});

/// One-line summary: round, entities, arrivals, failed-cell count.
[[nodiscard]] std::string render_summary(const System& sys);

}  // namespace cellflow
