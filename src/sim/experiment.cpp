#include "sim/experiment.hpp"

#include "core/choose.hpp"
#include "core/source.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {

RunResult run_workload(const WorkloadSpec& spec, std::uint64_t seed) {
  // Derive decorrelated seeds for each stochastic component.
  SplitMix64 seeder(seed);
  const std::uint64_t choose_seed = seeder.next();
  const std::uint64_t source_seed = seeder.next();
  const std::uint64_t failure_seed = seeder.next();

  auto choose = make_choose_policy(spec.choose_policy, choose_seed);
  std::unique_ptr<SourcePolicy> source;
  if (spec.source_rate >= 1.0) {
    source = std::make_unique<EntryEdgeSource>();
  } else {
    source = std::make_unique<RateLimitedSource>(spec.source_rate, source_seed);
  }

  System sys(spec.config, std::move(choose), std::move(source));
  sys.set_parallel_policy(spec.parallel);
  sys.set_round_scheduler(spec.scheduler);

  CF_EXPECTS_MSG(spec.carve_path.empty() || spec.carve_keep.empty(),
                 "carve_path and carve_keep are mutually exclusive");
  if (!spec.carve_path.empty()) {
    const Path path(sys.grid(), spec.carve_path);
    carve_path(sys, path);
  } else if (!spec.carve_keep.empty()) {
    carve_mask(sys, CellMask::of(sys.grid(), spec.carve_keep));
  }

  std::unique_ptr<FailureModel> failures;
  if (spec.pf > 0.0 || spec.pr > 0.0) {
    failures = std::make_unique<RandomFailRecover>(
        spec.pf, spec.pr, failure_seed, spec.protect_target);
  } else {
    failures = std::make_unique<NoFailures>();
  }

  // Warm start: restore AFTER carving/scheduler setup so the snapshot's
  // state overwrites the cold-start pattern (the restore validates that
  // the spec matches the snapshot's configuration).
  if (spec.restore_from != nullptr) {
    snapshot::restore(sys, *spec.restore_from, failures.get());
  }

  Simulator sim(sys, *failures);
  ThroughputMeter throughput;
  SafetyMonitor safety;
  BlockingStats blocking;
  OccupancyTracker occupancy;
  ProgressTracker progress;
  sim.add_observer(throughput);
  sim.add_observer(safety);
  sim.add_observer(blocking);
  sim.add_observer(occupancy);
  sim.add_observer(progress);

  sim.set_metrics(spec.metrics);
  sim.set_profiler(spec.profiler);
  sim.set_telemetry(spec.telemetry);
  std::optional<MetricsObserver> metrics_obs;
  if (spec.metrics != nullptr) {
    metrics_obs.emplace(*spec.metrics);
    metrics_obs->stream_jsonl(spec.metrics_jsonl, spec.metrics_every);
    sim.add_observer(*metrics_obs);
  }

  sim.run(spec.rounds);

  if (spec.snapshot_out != nullptr) {
    *spec.snapshot_out = snapshot::save(sys, failures.get());
  }

  RunResult r;
  r.throughput = throughput.throughput();
  r.arrivals = throughput.arrivals();
  r.injected = sys.total_injected();
  r.mean_latency = progress.latency().mean();
  r.mean_blocked = blocking.mean_blocked_per_round();
  r.mean_population = occupancy.population().mean();
  r.safety_clean = safety.clean();
  if (!r.safety_clean) r.safety_report = safety.report();
  return r;
}

RunningStats run_workload_seeds(const WorkloadSpec& spec,
                                std::span<const std::uint64_t> seeds) {
  CF_EXPECTS(!seeds.empty());
  RunningStats stats;
  for (const std::uint64_t seed : seeds) {
    const RunResult r = run_workload(spec, seed);
    CF_CHECK_MSG(r.safety_clean, "safety violation during experiment: " +
                                     r.safety_report);
    stats.add(r.throughput);
  }
  return stats;
}

WorkloadSpec fig7_base(double rs, double v) {
  WorkloadSpec spec;
  spec.config.side = 8;
  spec.config.params = Params(0.25, rs, v);
  spec.config.sources = {CellId{1, 0}};
  spec.config.target = CellId{1, 7};
  spec.rounds = 2500;
  return spec;
}

WorkloadSpec fig8_base(std::size_t turns, double v, double l) {
  WorkloadSpec spec;
  spec.config.side = 8;
  spec.config.params = Params(l, 0.05, v);
  spec.rounds = 2500;
  // Length-8 staircase with the requested number of turns, carved into the
  // grid (all off-path cells failed) so routing must follow it.
  const Grid grid(8);
  const Path path = make_turning_path(grid, CellId{0, 0}, Direction::kNorth,
                                      Direction::kEast, 8, turns);
  spec.config.sources = {path.source()};
  spec.config.target = path.target();
  spec.carve_path = path.cells();
  return spec;
}

WorkloadSpec fig9_base(double pf, double pr) {
  WorkloadSpec spec;
  spec.config.side = 8;
  spec.config.params = Params(0.2, 0.05, 0.2);
  spec.config.sources = {CellId{1, 0}};
  spec.config.target = CellId{1, 7};
  spec.rounds = 20000;
  spec.pf = pf;
  spec.pr = pr;
  return spec;
}

std::vector<std::uint64_t> default_seeds(std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  SplitMix64 sm(0xCE11F10Cull);
  for (std::size_t k = 0; k < count; ++k) seeds.push_back(sm.next());
  return seeds;
}

}  // namespace cellflow
