// Micro-benchmark: rounds/sec of the active-set round scheduler
// (core/system.hpp's RoundScheduler) against the exhaustive reference, on
// two workload shapes:
//
//   sparse  one rate-limited source in a corner, target in the opposite
//           corner — after routing stabilizes almost every cell is
//           provably quiescent, the regime the scheduler exists for
//   dense   saturated west-edge sources (micro_parallel_scaling's
//           workload) — the zero-regression check: with every
//           neighborhood occupied the scheduler may skip nothing, and
//           its bookkeeping must cost (almost) nothing
//
// Every engine runs the identical workload from the identical initial
// state; a digest of the full protocol state after the timed window is
// compared across exhaustive-serial / active-serial / active-parallel,
// so this bench doubles as an end-to-end equivalence check — any digest
// mismatch aborts nonzero. scripts/plot_figures.py consumes the CSV.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

constexpr double kSparseRate = 0.05;
constexpr std::uint64_t kSparseSeed = 17;

/// Sparse corner-to-corner trickle: one source, Bernoulli(kSparseRate)
/// injection, so the population is O(1) while the grid is O(side²).
SystemConfig sparse_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side - 1};
  cfg.sources = {CellId{0, 0}};
  return cfg;
}

/// Saturated closed system: every cell (bar the consuming target) is
/// seeded with one centered entity, no sources — every neighborhood is
/// occupied, so the occupancy gate can skip nothing and only the
/// post-stabilization Route skip remains. This is the scheduler's
/// worst-case bookkeeping-overhead shape.
SystemConfig dense_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources = {};
  return cfg;
}

void seed_everywhere(System& sys) {
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) continue;
    sys.seed_entity(id, Vec2{static_cast<double>(id.i) + 0.5,
                             static_cast<double>(id.j) + 0.5});
  }
}

/// FNV-1a over every protocol variable of every cell plus the round
/// counters — any single-bit divergence between engines changes it.
class StateDigest {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (v >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix_opt(const OptCellId& id) noexcept {
    mix(id.has_value() ? (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id->i))
                              << 32) |
                             static_cast<std::uint32_t>(id->j)
                       : ~0ull);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t digest(const System& sys) {
  StateDigest d;
  d.mix(sys.round());
  d.mix(sys.total_arrivals());
  d.mix(sys.total_injected());
  for (const CellState& c : sys.cells()) {
    d.mix(c.failed ? 1 : 0);
    d.mix(c.dist.is_finite() ? c.dist.hops() : ~0ull);
    d.mix_opt(c.next);
    d.mix_opt(c.token);
    d.mix_opt(c.signal);
    d.mix(c.members.size());
    for (const Entity& e : c.members) {
      d.mix(e.id.value);
      d.mix_double(e.center.x);
      d.mix_double(e.center.y);
    }
  }
  return d.value();
}

struct Engine {
  const char* label;
  RoundScheduler scheduler;
  ParallelPolicy policy;
};

struct Measurement {
  double rounds_per_sec = 0.0;
  std::uint64_t state_digest = 0;
  double visited_frac = 0.0;  ///< mean fraction of cells Route visited
};

Measurement measure(const SystemConfig& cfg, bool sparse, const Engine& eng,
                    std::uint64_t warmup, std::uint64_t rounds) {
  // The stateful rate-limited source must draw the identical stream in
  // every engine: same seed, and the scheduler never skips source cells'
  // Inject step (Inject is not phase-gated).
  auto source = sparse ? std::unique_ptr<SourcePolicy>(
                             std::make_unique<RateLimitedSource>(kSparseRate,
                                                                 kSparseSeed))
                       : std::unique_ptr<SourcePolicy>(
                             std::make_unique<NullSource>());
  System sys(cfg, nullptr, std::move(source));
  if (!sparse) seed_everywhere(sys);
  sys.set_round_scheduler(eng.scheduler);
  sys.set_parallel_policy(eng.policy);
  for (std::uint64_t k = 0; k < warmup; ++k) sys.update();
  std::uint64_t visited = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    visited += sys.last_scheduler_stats().route_cells;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.rounds_per_sec = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
  m.state_digest = digest(sys);
  m.visited_frac = static_cast<double>(visited) /
                   (static_cast<double>(rounds) *
                    static_cast<double>(sys.cells().size()));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 400, "timed rounds per engine");
  const auto warmup =
      cli.get_uint("warmup", 80, "untimed rounds to reach steady state");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 100, "largest grid side to measure"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_active_set");

  bench::banner(
      "Micro: active-set round scheduler",
      "RoundScheduler::kActiveSet vs kExhaustive; sparse and dense loads");
  std::cout << "visited = mean fraction of cells the Route phase ran\n"
               "(digests must match across all engines on any machine —\n"
               " that is the equivalence check)\n\n";

  const std::vector<Engine> engines = {
      {"exhaustive", RoundScheduler::kExhaustive, ParallelPolicy::serial()},
      {"active", RoundScheduler::kActiveSet, ParallelPolicy::serial()},
      {"active-4t", RoundScheduler::kActiveSet, ParallelPolicy::parallel(4)},
  };

  TextTable table;
  table.set_header({"workload", "exhaustive r/s", "active r/s", "active-4t r/s",
                    "speedup", "visited"});

  struct Row {
    std::string workload;
    int side;
    std::vector<double> rps;  // engines order
    double visited_frac;
  };
  std::vector<Row> results;
  bool digests_agree = true;

  for (const bool sparse : {true, false}) {
    for (const int side : {20, 50, 100}) {
      if (side > max_side) continue;
      // A dense 100×100 run is the scaling bench's job; here 50 suffices
      // for the zero-regression check.
      if (!sparse && side > 50) continue;
      const SystemConfig cfg = sparse ? sparse_config(side) : dense_config(side);
      Row row{(sparse ? "sparse-" : "dense-") + std::to_string(side), side, {},
              0.0};
      std::uint64_t ref_digest = 0;
      for (const Engine& eng : engines) {
        const Measurement m = measure(cfg, sparse, eng, warmup, rounds);
        recorder.note_rounds(warmup + rounds);
        row.rps.push_back(m.rounds_per_sec);
        if (eng.scheduler == RoundScheduler::kActiveSet &&
            eng.policy == ParallelPolicy::serial())
          row.visited_frac = m.visited_frac;
        if (&eng == &engines.front()) {
          ref_digest = m.state_digest;
        } else if (m.state_digest != ref_digest) {
          digests_agree = false;
          std::cerr << "DIGEST MISMATCH: " << row.workload << " engine="
                    << eng.label << " diverged from exhaustive serial\n";
        }
      }
      std::vector<double> cells = row.rps;
      cells.push_back(row.rps[1] / row.rps[0]);  // active-serial speedup
      cells.push_back(row.visited_frac);
      table.add_numeric_row(row.workload, cells);
      results.push_back(std::move(row));
    }
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"workload", "side", "engine", "rounds_per_sec", "speedup",
              "visited_frac"});
  for (const Row& r : results) {
    for (std::size_t e = 0; e < engines.size(); ++e) {
      csv.field(r.workload)
          .field(static_cast<std::uint64_t>(r.side))
          .field(engines[e].label)
          .field(r.rps[e])
          .field(r.rps[e] / r.rps[0])
          .field(r.visited_frac);
      csv.end_row();
    }
  }

  std::cout << (digests_agree
                    ? "\nequivalence: all engine digests agree\n"
                    : "\nequivalence: DIGEST MISMATCH (bug)\n");
  return digests_agree ? 0 : 1;
}
