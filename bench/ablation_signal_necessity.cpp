// Ablation E8: how necessary is the blocking permission-to-move rule?
// Run the Figure-7 workload under (a) the paper's blocking Signal and
// (b) the always-grant strawman, and report throughput plus the number
// of safety violations detected by the Theorem-5 oracles. The strawman
// buys a little throughput and breaks the one guarantee the protocol is
// for — quantifying the paper's §I claim that the policy "turns out to
// be necessary".
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "sim/experiment.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

struct Outcome {
  double throughput = 0.0;
  std::uint64_t violations = 0;
  std::uint64_t first_violation_round = 0;  // 0 = never
};

Outcome run(SignalRule rule, double rs, double v, std::uint64_t rounds,
            std::uint64_t seed) {
  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = Params(0.25, rs, v);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 7};
  cfg.signal_rule = rule;
  System sys(cfg, make_choose_policy("random", seed));
  NoFailures none;
  Simulator sim(sys, none);
  ThroughputMeter meter;
  SafetyMonitor safety;
  sim.add_observer(meter);
  sim.add_observer(safety);

  Outcome out;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sim.step();
    if (out.first_violation_round == 0 && !safety.clean())
      out.first_violation_round = k + 1;
  }
  out.throughput = meter.throughput();
  out.violations = safety.violations().size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_signal_necessity");

  std::cout << "=== Ablation: necessity of the blocking Signal rule ===\n"
            << "reproduces: ICDCS'10 SI claim that permission-to-move\n"
            << "blocking is necessary for safety\n\n";

  TextTable table;
  table.set_header({"rs / v", "rule", "throughput", "safety violations",
                    "first violation (round)"});
  std::vector<std::array<double, 3>> csv_rows;
  std::vector<std::string> csv_labels;

  for (const auto& [rs, v] :
       {std::pair{0.05, 0.1}, std::pair{0.05, 0.25}, std::pair{0.3, 0.2}}) {
    for (const SignalRule rule :
         {SignalRule::kBlocking, SignalRule::kAlwaysGrant}) {
      const Outcome o = run(rule, rs, v, rounds, seed);
      recorder.note_rounds(rounds);
      const std::string rule_name =
          rule == SignalRule::kBlocking ? "blocking" : "always-grant";
      table.add_row({format_sig(rs, 3) + " / " + format_sig(v, 3), rule_name,
                     format_sig(o.throughput, 4),
                     std::to_string(o.violations),
                     o.first_violation_round == 0
                         ? std::string("never")
                         : std::to_string(o.first_violation_round)});
      csv_labels.push_back(rule_name);
      csv_rows.push_back({o.throughput, static_cast<double>(o.violations),
                          static_cast<double>(o.first_violation_round)});
    }
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"rule", "throughput", "violations", "first_violation"});
  for (std::size_t k = 0; k < csv_rows.size(); ++k) {
    csv.field(csv_labels[k])
        .field(csv_rows[k][0])
        .field(csv_rows[k][1])
        .field(csv_rows[k][2]);
    csv.end_row();
  }

  std::cout << "\nexpected shape: blocking rows show 0 violations at a\n"
               "small throughput discount; always-grant rows violate\n"
               "safety within the first few hundred rounds.\n";
  return 0;
}
