// Figure 8 reproduction: throughput versus the number of turns along a
// length-8 path, for four (v, l) configurations at rs = 0.05, K = 2500.
// Paths with exactly T turns are carved into the 8×8 grid by permanently
// failing all off-path cells. The paper reports throughput decreasing
// with turns and saturating once there is effectively one entity per
// cell.
//
// Note: a length-8 simple path has at most 6 interior turns, so the sweep
// runs T = 0…6 (the paper's x-axis extends to 7; with 8 cells, 6 is the
// combinatorial maximum).
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  const ParallelPolicy engine = bench::parallel_from_cli(cli);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("fig8_throughput_vs_turns");

  bench::banner("Figure 8: throughput vs turns along a length-8 path",
                "ICDCS'10 Fig. 8 (8x8, rs=0.05, K=2500, carved paths)");

  struct Config {
    double v;
    double l;
  };
  const std::vector<Config> configs = {
      {0.2, 0.2}, {0.1, 0.2}, {0.1, 0.1}, {0.05, 0.1}};
  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"turns", "v=0.2,l=0.2", "v=0.1,l=0.2", "v=0.1,l=0.1",
                    "v=0.05,l=0.1"});
  std::vector<std::vector<double>> grid;

  for (std::size_t turns = 0; turns <= 6; ++turns) {
    std::vector<double> row;
    for (const Config& c : configs) {
      WorkloadSpec spec = fig8_base(turns, c.v, c.l);
      spec.rounds = rounds;
      spec.choose_policy = "random";
      spec.parallel = engine;
      row.push_back(bench::mean_throughput(spec, seeds));
      recorder.note_rounds(rounds * seeds.size());
    }
    table.add_numeric_row(std::to_string(turns), row);
    grid.push_back(std::move(row));
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"turns", "v", "l", "throughput"});
  for (std::size_t t = 0; t <= 6; ++t)
    for (std::size_t c = 0; c < configs.size(); ++c)
      csv.row({static_cast<double>(t), configs[c].v, configs[c].l,
               grid[t][c]});

  std::cout << "\nexpected shape: throughput decreases as turns increase,\n"
               "then saturates; higher-v configs dominate lower-v ones.\n";
  return 0;
}
