// Figure 9 reproduction: throughput under the stochastic fail/recover
// model — each round every cell fails with probability pf and every
// failed cell recovers with probability pr. Paper setting: 8×8 grid,
// initial path of length 8 (we use the Figure-7 geometry: straight column
// ⟨1,0⟩…⟨1,7⟩, all cells initially alive), rs = 0.05, l = 0.2, v = 0.2,
// K = 20000, pf ∈ [0.01, 0.05], pr ∈ {0.05, 0.1, 0.15, 0.2}. The target
// is NOT protected (§IV notes recovery resets dist_tid := 0, so the
// paper's target does fail).
//
// Expected shapes: throughput decreases in pf, increases in pr, with
// diminishing returns in pr at fixed pf.
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 20000, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  const ParallelPolicy engine = bench::parallel_from_cli(cli);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("fig9_throughput_vs_failures");

  bench::banner(
      "Figure 9: throughput vs failure rate pf for several recovery rates pr",
      "ICDCS'10 Fig. 9 (8x8, rs=0.05, l=0.2, v=0.2, K=20000)");

  const std::vector<double> pf_values = {0.01, 0.015, 0.02, 0.025, 0.03,
                                         0.035, 0.04, 0.045, 0.05};
  const std::vector<double> pr_values = {0.05, 0.1, 0.15, 0.2};
  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"pf", "pr=0.05", "pr=0.10", "pr=0.15", "pr=0.20"});
  std::vector<std::vector<double>> grid;

  for (const double pf : pf_values) {
    std::vector<double> row;
    for (const double pr : pr_values) {
      WorkloadSpec spec = fig9_base(pf, pr);
      spec.rounds = rounds;
      spec.choose_policy = "random";
      spec.parallel = engine;
      row.push_back(bench::mean_throughput(spec, seeds));
      recorder.note_rounds(rounds * seeds.size());
    }
    table.add_numeric_row(format_sig(pf, 3), row);
    grid.push_back(std::move(row));
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"pf", "pr", "throughput"});
  for (std::size_t r = 0; r < pf_values.size(); ++r)
    for (std::size_t c = 0; c < pr_values.size(); ++c)
      csv.row({pf_values[r], pr_values[c], grid[r][c]});

  std::cout << "\nexpected shape: rows decrease as pf grows; columns\n"
               "increase with pr but with diminishing returns (the paper's\n"
               "'marginal return on increasing pr').\n";
  return 0;
}
