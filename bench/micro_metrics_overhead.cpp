// Micro-benchmark: rounds/sec of the round engine with the observability
// layer detached vs attached — MetricsRegistry only, then registry +
// PhaseProfiler, then the full stack with EngineTelemetry on top. The
// acceptance bar is that a detached run costs nothing (the
// instrumentation is behind a null check), an attached run stays cheap —
// counters are tallied per shard in plain structs and flushed once per
// round — and the telemetry layer's *marginal* cost over metrics+prof
// stays in the noise (a handful of steady-clock reads and histogram
// observations per round). --max-telemetry-overhead-pct turns that last
// bar into a hard exit-nonzero pin for manual runs with large --rounds;
// it defaults to off because micro-timings at ctest horizons are too
// noisy to gate (the bench_diff lane gates the recorded sidecars
// instead).
//
// Instrumentation must be observation-only: a digest of the full protocol
// state after the timed window is compared across modes, so this bench
// doubles as a no-perturbation check — any digest mismatch aborts
// nonzero. scripts/plot_figures.py consumes the CSV block.
#include <algorithm>
#include <chrono>
#include <functional>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Same saturated workload as micro_parallel_scaling: sources along the
/// west edge, target mid-east, population proportional to the side.
SystemConfig overhead_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources.clear();
  for (int j = 0; j < side; ++j) cfg.sources.push_back(CellId{0, j});
  return cfg;
}

/// FNV-1a over every protocol variable of every cell — any single-bit
/// perturbation introduced by the instrumentation changes it.
class StateDigest {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (v >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix_opt(const OptCellId& id) noexcept {
    mix(id.has_value() ? (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id->i))
                              << 32) |
                             static_cast<std::uint32_t>(id->j)
                       : ~0ull);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t digest(const System& sys) {
  StateDigest d;
  d.mix(sys.round());
  d.mix(sys.total_arrivals());
  d.mix(sys.total_injected());
  for (const CellState& c : sys.cells()) {
    d.mix(c.failed ? 1 : 0);
    d.mix(c.dist.is_finite() ? c.dist.hops() : ~0ull);
    d.mix_opt(c.next);
    d.mix_opt(c.token);
    d.mix_opt(c.signal);
    d.mix(c.members.size());
    for (const Entity& e : c.members) {
      d.mix(e.id.value);
      d.mix_double(e.center.x);
      d.mix_double(e.center.y);
    }
  }
  return d.value();
}

enum class Mode { kDetached, kMetrics, kMetricsAndProfiler, kFull };
constexpr int kModes = 4;

struct Measurement {
  double rounds_per_sec = 0.0;
  std::uint64_t state_digest = 0;
};

Measurement measure(int side, const ParallelPolicy& policy, Mode mode,
                    std::uint64_t warmup, std::uint64_t rounds) {
  System sys(overhead_config(side));
  sys.set_parallel_policy(policy);
  obs::MetricsRegistry reg;
  obs::PhaseProfiler prof;
  obs::EngineTelemetry telemetry(reg);
  if (mode != Mode::kDetached) sys.set_metrics(&reg);
  if (mode == Mode::kMetricsAndProfiler || mode == Mode::kFull)
    sys.set_profiler(&prof);
  if (mode == Mode::kFull) sys.set_telemetry(&telemetry);
  for (std::uint64_t k = 0; k < warmup; ++k) sys.update();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) sys.update();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.rounds_per_sec = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
  m.state_digest = digest(sys);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 300, "timed rounds per mode");
  const auto warmup =
      cli.get_uint("warmup", 60, "untimed rounds to reach steady state");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 50, "largest grid side to measure"));
  const auto reps = static_cast<std::size_t>(cli.get_uint(
      "reps", 3, "repetitions per mode (best-of is reported)"));
  const double max_telemetry_ovh = cli.get_double(
      "max-telemetry-overhead-pct", 0.0,
      "exit nonzero if telemetry's marginal overhead exceeds this "
      "(0: report only; use with large --rounds)");
  const ParallelPolicy policy = cellflow::bench::parallel_from_cli(cli);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_metrics_overhead");
  recorder.set_repetitions(static_cast<int>(reps));

  cellflow::bench::banner(
      "Micro: observability overhead",
      "MetricsRegistry + PhaseProfiler attach cost (DESIGN.md §7)");

  const std::vector<int> all_sides = {20, 50};
  const char* mode_names[] = {"detached", "metrics", "metrics+prof",
                              "full"};

  TextTable table;
  table.set_header({"side", "detached r/s", "metrics r/s", "metrics+prof r/s",
                    "full r/s", "metrics ovh%", "prof ovh%", "telem ovh%"});

  struct Row {
    int side;
    double rps[kModes];     // best-of-reps rounds/sec
    double rps_rd[kModes];  // (max-min)/mean across reps
  };
  std::vector<Row> results;
  bool digests_agree = true;
  double worst_telemetry_ovh = 0.0;

  for (const int side : all_sides) {
    if (side > max_side) continue;
    Row row{side, {}, {}};
    std::uint64_t baseline_digest = 0;
    for (int m = 0; m < kModes; ++m) {
      std::vector<double> samples;
      samples.reserve(reps);
      for (std::size_t r = 0; r < reps; ++r) {
        const Measurement meas =
            measure(side, policy, static_cast<Mode>(m), warmup, rounds);
        recorder.note_rounds(warmup + rounds);
        samples.push_back(meas.rounds_per_sec);
        if (m == 0 && r == 0) {
          baseline_digest = meas.state_digest;
        } else if (meas.state_digest != baseline_digest) {
          digests_agree = false;
          std::cerr << "DIGEST MISMATCH: side=" << side << " mode="
                    << mode_names[m]
                    << " — instrumentation perturbed protocol state\n";
        }
      }
      // Best-of-reps is the reported statistic (on a contended machine
      // noise is one-sided slowdown, so the max is the clean speed); the
      // _rd column is the best-to-second-best gap — the reproducibility
      // of that statistic, not the raw scatter.
      std::sort(samples.begin(), samples.end(), std::greater<>());
      row.rps[m] = samples[0];
      row.rps_rd[m] = samples.size() > 1 && samples[0] > 0.0
                          ? (samples[0] - samples[1]) / samples[0]
                          : 0.0;
      recorder.note_samples("rounds_per_sec[" + std::to_string(side) + "/" +
                                mode_names[m] + "]",
                            samples);
    }
    const auto overhead = [&](int m) {
      return row.rps[m] > 0.0
                 ? 100.0 * (row.rps[0] / row.rps[m] - 1.0)
                 : 0.0;
    };
    // Telemetry's marginal cost is measured against the metrics+prof
    // mode (the profiler already pays the per-shard clock reads).
    const double telem_ovh =
        row.rps[3] > 0.0 ? 100.0 * (row.rps[2] / row.rps[3] - 1.0) : 0.0;
    worst_telemetry_ovh = std::max(worst_telemetry_ovh, telem_ovh);
    table.add_numeric_row(std::to_string(side),
                          {row.rps[0], row.rps[1], row.rps[2], row.rps[3],
                           overhead(1), overhead(2), telem_ovh});
    results.push_back(row);
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header(
      {"side", "mode", "rounds_per_sec", "rounds_per_sec_rd", "overhead_pct"});
  for (const Row& r : results) {
    for (int m = 0; m < kModes; ++m) {
      const double ovh =
          r.rps[m] > 0.0 ? 100.0 * (r.rps[0] / r.rps[m] - 1.0) : 0.0;
      csv.field(static_cast<std::int64_t>(r.side))
          .field(mode_names[m])
          .field(r.rps[m])
          .field(r.rps_rd[m])
          .field(m == 0 ? 0.0 : ovh);
      csv.end_row();
    }
  }

  std::cout << (digests_agree
                    ? "\nno-perturbation: digests identical across modes\n"
                    : "\nno-perturbation: DIGEST MISMATCH (bug)\n");
  if (!digests_agree) return 1;
  if (max_telemetry_ovh > 0.0 && worst_telemetry_ovh > max_telemetry_ovh) {
    std::cerr << "telemetry overhead " << worst_telemetry_ovh
              << "% exceeds --max-telemetry-overhead-pct="
              << max_telemetry_ovh << '\n';
    return 1;
  }
  return 0;
}
