// Ablation E14: the per-entity latency DISTRIBUTION (birth → consumption,
// in rounds) behind the throughput averages of Figures 7 and 9. Traffic
// engineering cares about tails, not means: failures stretch the p99 far
// more than the median (stranded entities wait out whole failure
// windows), and the relaxed-coupling extension shifts the entire
// distribution left. One histogram per regime, with quantiles.
#include <iostream>

#include "bench_common.hpp"
#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

/// Observer recording every completed latency into a histogram.
class LatencyHistogram final : public Observer {
 public:
  LatencyHistogram() : histogram_(0.0, 800.0, 40) {}

  void on_round(const System& /*sys*/, const RoundEvents& ev) override {
    for (const auto& [cell, eid] : ev.injected) {
      (void)cell;
      births_.emplace_back(eid, ev.round);
    }
    for (const TransferEvent& t : ev.transfers) {
      if (!t.consumed) continue;
      for (std::size_t k = 0; k < births_.size(); ++k) {
        if (births_[k].first == t.entity) {
          histogram_.add(static_cast<double>(ev.round - births_[k].second));
          births_.erase(births_.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
  }

  [[nodiscard]] const Histogram& histogram() const noexcept {
    return histogram_;
  }

 private:
  Histogram histogram_;
  std::vector<std::pair<EntityId, std::uint64_t>> births_;
};

struct Quantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::uint64_t n = 0;
};

Quantiles run(double pf, double pr, MovementRule rule, std::uint64_t rounds,
              std::uint64_t seed) {
  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 7};
  cfg.movement_rule = rule;
  System sys(cfg, make_choose_policy("random", seed));
  std::unique_ptr<FailureModel> failures;
  if (pf > 0.0) {
    failures = std::make_unique<RandomFailRecover>(pf, pr, seed ^ 0x1A7E);
  } else {
    failures = std::make_unique<NoFailures>();
  }
  Simulator sim(sys, *failures);
  LatencyHistogram lat;
  SafetyMonitor safety;
  sim.add_observer(lat);
  sim.add_observer(safety);
  sim.run(rounds);
  if (!safety.clean()) {
    std::cerr << "SAFETY VIOLATION: " << safety.report() << '\n';
    std::exit(1);
  }
  Quantiles q;
  q.n = lat.histogram().total();
  if (q.n > 0) {
    q.p50 = lat.histogram().quantile(0.50);
    q.p90 = lat.histogram().quantile(0.90);
    q.p99 = lat.histogram().quantile(0.99);
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 10000, "rounds per regime");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_latency_distribution");

  std::cout << "=== Ablation: birth->arrival latency distribution ===\n"
            << "8x8, l=0.2, rs=0.05, v=0.2, straight column, K=" << rounds
            << "\n\n";

  TextTable table;
  table.set_header({"regime", "completed", "p50", "p90", "p99"});
  const struct {
    const char* name;
    double pf;
    double pr;
    MovementRule rule;
  } regimes[] = {
      {"failure-free, coupled", 0.0, 0.0, MovementRule::kCoupled},
      {"failure-free, relaxed", 0.0, 0.0, MovementRule::kCompacting},
      {"pf=0.01 pr=0.10, coupled", 0.01, 0.1, MovementRule::kCoupled},
      {"pf=0.03 pr=0.10, coupled", 0.03, 0.1, MovementRule::kCoupled},
  };
  for (const auto& r : regimes) {
    const Quantiles q = run(r.pf, r.pr, r.rule, rounds, seed);
    recorder.note_rounds(rounds);
    table.add_numeric_row(r.name,
                          {static_cast<double>(q.n), q.p50, q.p90, q.p99});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: relaxed coupling raises the COMPLETED count\n"
               "~2.3x at an unchanged latency profile (its gain is pure\n"
               "pipelining: more entities in flight, same per-entity transit\n"
               "time); failures inflate the tail (p99) far more than the\n"
               "median (stranded entities wait out whole failure windows).\n";
  return 0;
}
