// Micro-benchmark E7: wall-clock cost of one System::update() round as a
// function of grid side N and of traffic load, plus the cost of the
// safety oracle sweep. Uses google-benchmark. This characterizes the
// simulator itself (how big an instance is laptop-feasible), not the
// protocol.
//
// The only bench without a BENCH_<name>.json sidecar (bench_common.hpp's
// BenchRecorder): google-benchmark already emits machine-readable output
// natively — run with --benchmark_format=json.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/predicates.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "msg/msg_audit.hpp"
#include "msg/msg_system.hpp"

namespace {

using namespace cellflow;

System make_system(int side, bool with_source) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.25, 0.05, 0.2);
  cfg.sources = with_source ? std::vector<CellId>{CellId{1, 0}}
                            : std::vector<CellId>{};
  cfg.target = CellId{1, side - 1};
  if (with_source) return System(cfg);
  return System(cfg, nullptr, std::make_unique<NullSource>());
}

void BM_UpdateEmptyGrid(benchmark::State& state) {
  System sys = make_system(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    sys.update();
    benchmark::DoNotOptimize(sys.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.grid().cell_count()));
}
BENCHMARK(BM_UpdateEmptyGrid)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_UpdateSaturatedTraffic(benchmark::State& state) {
  System sys = make_system(static_cast<int>(state.range(0)), true);
  // Warm up to steady-state population before timing.
  for (int k = 0; k < 500; ++k) sys.update();
  for (auto _ : state) {
    sys.update();
    benchmark::DoNotOptimize(sys.total_arrivals());
  }
  state.counters["entities"] = static_cast<double>(sys.entity_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.grid().cell_count()));
}
BENCHMARK(BM_UpdateSaturatedTraffic)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SafetyOracleSweep(benchmark::State& state) {
  System sys = make_system(static_cast<int>(state.range(0)), true);
  for (int k = 0; k < 500; ++k) sys.update();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_all(sys).empty());
  }
}
BENCHMARK(BM_SafetyOracleSweep)->Arg(8)->Arg(32)->Arg(64);

void BM_MsgAuditSweep(benchmark::State& state) {
  // The message-realization analogue of BM_SafetyOracleSweep: one
  // msg_audit::check_all over a populated MessageSystem. check_all runs
  // every round of the fault-schedule property tests, so its single-pass
  // sweep (one in-flight snapshot shared across oracles) is on the test
  // suite's critical path.
  MsgSystemConfig cfg;
  cfg.side = static_cast<int>(state.range(0));
  cfg.params = Params(0.25, 0.05, 0.2);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, cfg.side - 1};
  MessageSystem msg(std::move(cfg));
  for (int k = 0; k < 500; ++k) msg.update();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg_audit::check_all(msg).empty());
  }
}
BENCHMARK(BM_MsgAuditSweep)->Arg(8)->Arg(32)->Arg(64);

void BM_ReferenceBfs(benchmark::State& state) {
  System sys = make_system(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.reference_distances());
  }
}
BENCHMARK(BM_ReferenceBfs)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
