// Ablation E6: impact of the `choose` realization (DESIGN.md choice #14)
// on throughput. The paper leaves `choose` nondeterministic; any fair
// realization preserves the theorems. We compare round-robin, seeded
// random, and the unfair lowest-id policy on (a) the single-stream
// Figure-7 workload, where policies should be near-identical, and (b) a
// three-way merge, where lowest-id starves one stream and loses
// throughput.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

// Three-way merge carved into 8×8: sources ⟨0,1⟩, ⟨1,0⟩, ⟨2,1⟩ all feed
// the merge cell ⟨1,1⟩, which drains up column 1 to the target ⟨1,7⟩.
WorkloadSpec merge_spec() {
  WorkloadSpec spec;
  spec.config.side = 8;
  spec.config.params = Params(0.2, 0.05, 0.2);
  spec.config.sources = {CellId{0, 1}, CellId{1, 0}, CellId{2, 1}};
  spec.config.target = CellId{1, 7};
  spec.carve_keep = {CellId{0, 1}, CellId{1, 0}, CellId{2, 1}};
  for (int j = 1; j <= 7; ++j) spec.carve_keep.push_back(CellId{1, j});
  spec.rounds = 2500;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_token_policy");

  bench::banner("Ablation: token-choice policy",
                "design choice #14 (the paper's nondeterministic `choose`)");

  const std::vector<std::string> policies = {"round-robin", "random",
                                             "lowest-id"};
  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"policy", "fig7-single-stream", "three-way-merge"});
  std::vector<std::array<double, 2>> rows;

  for (const std::string& policy : policies) {
    WorkloadSpec single = fig7_base(0.05, 0.2);
    single.rounds = rounds;
    single.choose_policy = policy;

    WorkloadSpec merge = merge_spec();
    merge.rounds = rounds;
    merge.choose_policy = policy;

    const double t_single = bench::mean_throughput(single, seeds);
    const double t_merge = bench::mean_throughput(merge, seeds);
    recorder.note_rounds(2 * rounds * seeds.size());
    table.add_numeric_row(policy, {t_single, t_merge});
    rows.push_back({t_single, t_merge});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"policy", "fig7_single", "merge3"});
  for (std::size_t k = 0; k < policies.size(); ++k) {
    csv.field(policies[k]).field(rows[k][0]).field(rows[k][1]);
    csv.end_row();
  }

  std::cout << "\nexpected shape: single-stream column ~equal across\n"
               "policies; in the merge column the fair policies tie while\n"
               "lowest-id serves only two of three streams.\n";
  return 0;
}
