// Extension bench E10: the Figure-7 sweep on the 3-D extension (§V).
// A 4×4×8 "tower" with the source at the bottom and the target at the
// top; throughput vs rs for the same velocity series as Figure 7. The
// shapes must match the 2-D results (the protocol is dimension-agnostic);
// the planar 4×1×8 slice is included as a consistency column.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "flow3d/predicates3.hpp"
#include "flow3d/system3.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

double run_tower(int ny, double rs, double v, std::uint64_t rounds) {
  System3Config cfg;
  cfg.nx = 4;
  cfg.ny = ny;
  cfg.nz = 8;
  cfg.params = Params(0.25, rs, v);
  cfg.sources = {CellId3{1, ny > 1 ? 1 : 0, 0}};
  cfg.target = CellId3{1, ny > 1 ? 1 : 0, 7};
  System3 sys(cfg);
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    const auto vs = check_all3(sys);
    if (!vs.empty()) {
      std::cerr << "ORACLE VIOLATION: " << to_string(vs.front()) << '\n';
      std::exit(1);
    }
  }
  return static_cast<double>(sys.total_arrivals()) /
         static_cast<double>(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ext_3d_throughput");

  std::cout << "=== Extension: Figure-7 sweep in 3-D (SV) ===\n"
            << "4x4x8 tower, source bottom, target top, l=0.25, K=" << rounds
            << "\n\n";

  TextTable table;
  table.set_header({"rs", "v=0.05", "v=0.10", "v=0.20", "planar v=0.10"});
  std::vector<std::array<double, 5>> rows;
  for (double rs = 0.05; rs < 0.75 - 1e-9; rs += 0.1) {
    const double t05 = run_tower(4, rs, 0.05, rounds);
    const double t10 = run_tower(4, rs, 0.1, rounds);
    const double t20 = run_tower(4, rs, 0.2, rounds);
    const double planar = run_tower(1, rs, 0.1, rounds);
    recorder.note_rounds(4 * rounds);
    table.add_numeric_row(format_sig(rs, 3), {t05, t10, t20, planar});
    rows.push_back({rs, t05, t10, t20, planar});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"rs", "v0.05", "v0.10", "v0.20", "planar_v0.10"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2], r[3], r[4]});

  std::cout << "\nexpected shape: same as Figure 7 — increasing in v,\n"
               "decreasing/saturating in rs; the planar column matches the\n"
               "2-D fig7 v=0.10 series (dimension-agnostic protocol).\n";
  return 0;
}
