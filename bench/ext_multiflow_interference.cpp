// Extension bench E9: interference cost of multiple flows (the §V
// future-work generalization implemented in src/multiflow/). Two flows
// crossing at the grid center each pay a throughput tax versus running
// alone — the price of time-sharing the crossing cell under flow-pure
// admission. Reported: each flow alone, both together, and the
// efficiency ratio.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "multiflow/mf_predicates.hpp"
#include "multiflow/mf_system.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

struct Measured {
  double flow0 = 0.0;
  double flow1 = 0.0;
};

Measured run(bool with_flow0, bool with_flow1, std::uint64_t rounds,
             std::uint64_t seed) {
  MfSystemConfig cfg;
  cfg.side = 9;
  cfg.params = Params(0.2, 0.05, 0.2);
  if (with_flow0)
    cfg.flows.push_back(FlowSpec{CellId{8, 4}, {CellId{0, 4}}});  // W→E
  if (with_flow1)
    cfg.flows.push_back(FlowSpec{CellId{4, 8}, {CellId{4, 0}}});  // S→N
  MfSystem sys(std::move(cfg), make_choose_policy("random", seed), seed);
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    const auto vs = check_mf_all(sys);
    if (!vs.empty()) {
      std::cerr << "ORACLE VIOLATION: " << to_string(vs.front()) << '\n';
      std::exit(1);
    }
  }
  Measured m;
  FlowId next = 0;
  if (with_flow0)
    m.flow0 = static_cast<double>(sys.arrivals(next++)) /
              static_cast<double>(rounds);
  if (with_flow1)
    m.flow1 = static_cast<double>(sys.arrivals(next)) /
              static_cast<double>(rounds);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 4000, "K rounds per run");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ext_multiflow_interference");

  std::cout << "=== Extension: multi-flow interference (SV future work) ===\n"
            << "two flows crossing at the center of a 9x9 grid\n\n";

  const Measured alone0 = run(true, false, rounds, seed);
  const Measured alone1 = run(false, true, rounds, seed);
  const Measured both = run(true, true, rounds, seed);
  recorder.note_rounds(3 * rounds);

  TextTable table;
  table.set_header({"scenario", "flow0 (W->E)", "flow1 (S->N)", "sum"});
  table.add_numeric_row("flow0 alone", {alone0.flow0, 0.0, alone0.flow0});
  table.add_numeric_row("flow1 alone", {0.0, alone1.flow1, alone1.flow1});
  table.add_numeric_row("crossing",
                        {both.flow0, both.flow1, both.flow0 + both.flow1});
  std::cout << table.to_string() << '\n';

  const double solo_sum = alone0.flow0 + alone1.flow1;
  const double efficiency =
      solo_sum > 0.0 ? (both.flow0 + both.flow1) / solo_sum : 0.0;
  std::cout << "aggregate efficiency vs isolated flows: " << efficiency
            << "\n\nCSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"scenario", "flow0", "flow1"});
  csv.field("alone0").field(alone0.flow0).field(0.0);
  csv.end_row();
  csv.field("alone1").field(0.0).field(alone1.flow1);
  csv.end_row();
  csv.field("crossing").field(both.flow0).field(both.flow1);
  csv.end_row();

  std::cout << "\nexpected shape: each crossing flow below its solo rate;\n"
               "perfect time-sharing of the crossing cell would give 50%\n"
               "aggregate efficiency, and the measured value sits a little\n"
               "below that (token handoff + blocked-approach overhead).\n";
  return 0;
}
