// Macro-benchmark: sparse-world memory scaling of the chunked cell store
// (src/chunk, DESIGN.md §12; EXPERIMENTS.md E20) on an N=2048 world —
// 4.2M cells, 64×64 chunks — in two phases:
//
//   sweep     a fresh world, no walls, no entities: the initial routing
//             wave spreads from the target, materializing chunks at the
//             front while the park sweep reclaims them behind it. The
//             resident-bytes series must TRACK the live/parked chunk
//             counts (Pearson r >= 0.9 against the per-chunk cost
//             model) — memory follows the active region, not N².
//   conveyor  the headline workload: a serpentine path of `lanes` lanes
//             spanning the full width, walled off from the open field so
//             every off-corridor chunk stays virgin, with >= 1e5 entities
//             seeded onto the lanes and the source injecting more. Peak
//             resident bytes across BOTH phases must stay within
//             --budget (default 5%) of the extrapolated dense-N²
//             footprint, and the entity ledger must balance.
//
// The sweep phase doubles as a scale equivalence check: it runs serial
// and 4-thread, and the state digests must match bit-for-bit.
//
// The CSV series keys rows by (phase, round, chunk counts, entities) and
// gates resident_bytes lower-better; the sidecar's "memory" map carries
// store_peak_bytes and vm_hwm_bytes, so tools/cellflow_bench_diff
// machine-checks the memory claim against the committed baseline.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chunk/chunked_store.hpp"
#include "chunk/chunked_system.hpp"
#include "grid/path.hpp"
#include "obs/alloc_stats.hpp"
#include "snapshot/snapshot.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Per-cell footprint a dense realization cannot avoid: the CellState
/// itself plus the scheduler aux the dense engine carries per cell (dist
/// snapshot, route stamp, occupancy byte + refcount). Heap held by the
/// cells' vectors (members, ne_prev) comes on top in both realizations,
/// so leaving it out makes the dense extrapolation conservative.
constexpr std::uint64_t kDensePerCellBytes =
    sizeof(CellState) + sizeof(Dist) + sizeof(std::uint64_t) + 2;

/// Cost model for one fully-live / one parked interior chunk (the slack
/// vs the store's real accounting is vector capacity + entity heap).
constexpr std::uint64_t kLiveChunkModelBytes =
    sizeof(chunk::LiveChunk) +
    static_cast<std::uint64_t>(chunk::kChunkSide) * chunk::kChunkSide *
        kDensePerCellBytes;
constexpr std::uint64_t kParkedChunkModelBytes =
    sizeof(chunk::ParkedChunk) +
    static_cast<std::uint64_t>(chunk::kChunkSide) * chunk::kChunkSide *
        (sizeof(std::uint32_t) + 1);

struct Sample {
  std::string phase;
  std::uint64_t round = 0;
  obs::StoreStatsSample store;
  std::uint64_t entities = 0;
};

/// Six safe slots per lane cell with Params(0.2, 0.05, 0.2): pairwise
/// >= d = 0.25 apart along an axis, footprints inside the cell.
constexpr double kSeedX[3] = {0.15, 0.50, 0.85};
constexpr double kSeedY[2] = {0.30, 0.70};

SystemConfig conveyor_config(int side, const Path& path) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.sources = {path.source()};
  cfg.target = path.target();
  return cfg;
}

/// Fails every cell of the wall rows that is not on the path: the rows
/// between lanes (forcing Route to follow the lane order) and the row
/// above the top lane (sealing the corridor, so the open field is never
/// armed and its chunks stay virgin). All wall rows sit below
/// kChunkSide, so the walls touch only the corridor's own chunk row.
void carve_conveyor(chunk::ChunkedSystem& sys, const Path& path, int lanes) {
  const int side = sys.grid().side();
  std::vector<int> wall_rows;
  for (int k = 1; k < lanes; ++k) wall_rows.push_back(2 * k - 1);
  wall_rows.push_back(2 * (lanes - 1) + 1);
  for (const int j : wall_rows) {
    for (int i = 0; i < side; ++i) {
      const CellId id{i, j};
      if (!path.contains(id)) sys.fail(id);
    }
  }
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    sx += xs[k];
    sy += ys[k];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    sxy += (xs[k] - mx) * (ys[k] - my);
    sxx += (xs[k] - mx) * (xs[k] - mx);
    syy += (ys[k] - my) * (ys[k] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto side =
      static_cast<int>(cli.get_uint("side", 2048, "grid side N"));
  const auto lanes = static_cast<int>(
      cli.get_uint("lanes", 16, "serpentine lanes, two rows apart"));
  const auto sweep_rounds = cli.get_uint(
      "sweep-rounds", 300, "rounds of the open-field routing sweep");
  const auto rounds =
      cli.get_uint("rounds", 400, "rounds of the conveyor phase");
  const auto per_cell = cli.get_uint(
      "per-cell", 6, "entities seeded per path cell (1..6)");
  const auto min_entities = cli.get_uint(
      "min-entities", 100000, "gate: total entities >= this");
  const double budget = cli.get_double(
      "budget", 0.05,
      "gate: peak resident bytes <= budget * dense-N^2 extrapolation");
  const auto sample_every =
      cli.get_uint("sample-every", 10, "store-stats sample cadence");
  const ParallelPolicy conveyor_policy = bench::parallel_from_cli(cli);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  if (side < 64 || lanes < 2 || 2 * (lanes - 1) + 1 >= chunk::kChunkSide ||
      per_cell < 1 || per_cell > 6 || sample_every == 0) {
    std::cerr << "macro_huge_grid: need side >= 64, 2 <= lanes <= 16, "
                 "1 <= per-cell <= 6, sample-every >= 1\n";
    return 1;
  }

  bench::BenchRecorder recorder("macro_huge_grid");
  bench::banner("Macro: huge-grid memory scaling (chunked store)",
                "DESIGN.md §12 / EXPERIMENTS.md E20 — memory ∝ active "
                "chunks, not N²");

  const std::uint64_t cells =
      static_cast<std::uint64_t>(side) * static_cast<std::uint64_t>(side);
  const std::uint64_t dense_bytes = cells * kDensePerCellBytes;
  std::vector<Sample> samples;
  std::uint64_t peak_resident = 0;
  bool ok = true;

  // --- phase 1: open-field routing sweep ------------------------------
  // No walls, no entities: the dist wave expands from the target and the
  // park sweep reclaims chunks ~kParkHysteresis rounds behind the front.
  const Grid grid(side);
  SystemConfig sweep_cfg;
  sweep_cfg.side = side;
  sweep_cfg.params = Params(0.2, 0.05, 0.2);
  sweep_cfg.sources = {CellId{0, 0}};
  sweep_cfg.target = CellId{0, 2 * (lanes - 1)};

  std::uint64_t sweep_digest_serial = 0;
  double sweep_secs = 0.0;
  {
    chunk::ChunkedSystem sys(sweep_cfg);
    sys.set_parallel_policy(ParallelPolicy::serial());
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t k = 0; k < sweep_rounds; ++k) {
      sys.update();
      if ((k + 1) % sample_every == 0 || k + 1 == sweep_rounds) {
        Sample s;
        s.phase = "sweep";
        s.round = k + 1;
        s.store = sys.store().stats_sample();
        s.entities = sys.entity_count();
        peak_resident = std::max(peak_resident, s.store.resident_bytes);
        samples.push_back(std::move(s));
      }
    }
    sweep_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    recorder.note_rounds(sweep_rounds);
    sweep_digest_serial = snapshot::state_digest(sys);
  }
  {
    // Equivalence at scale: the same sweep on 4 threads must land on the
    // identical state (the chunk-sharded engine's bit-identity contract).
    chunk::ChunkedSystem sys(sweep_cfg);
    sys.set_parallel_policy(ParallelPolicy::parallel(4));
    for (std::uint64_t k = 0; k < sweep_rounds; ++k) sys.update();
    recorder.note_rounds(sweep_rounds);
    if (snapshot::state_digest(sys) != sweep_digest_serial) {
      std::cerr << "DIGEST MISMATCH: 4-thread sweep diverged from serial\n";
      ok = false;
    }
  }

  // --- phase 2: walled serpentine conveyor ----------------------------
  const Path path = make_serpentine_path(grid, CellId{0, 0}, side, lanes);
  chunk::ChunkedSystem sys(conveyor_config(side, path));
  sys.set_parallel_policy(conveyor_policy);
  carve_conveyor(sys, path, lanes);

  std::uint64_t seeded = 0;
  for (const CellId id : path.cells()) {
    // Never pre-fill the target: entities seeded there have nowhere to
    // go, would hold its entry strip forever, and deadlock the drain.
    if (id == path.target()) continue;
    for (std::uint64_t e = 0; e < per_cell; ++e) {
      sys.seed_entity(id, Vec2{static_cast<double>(id.i) + kSeedX[e % 3],
                               static_cast<double>(id.j) + kSeedY[e / 3]});
      ++seeded;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    if ((k + 1) % sample_every == 0 || k + 1 == rounds) {
      Sample s;
      s.phase = "conveyor";
      s.round = k + 1;
      s.store = sys.store().stats_sample();
      s.entities = sys.entity_count();
      peak_resident = std::max(peak_resident, s.store.resident_bytes);
      samples.push_back(std::move(s));
    }
  }
  const double conveyor_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  recorder.note_rounds(rounds);

  // --- gates ----------------------------------------------------------
  const std::uint64_t injected = sys.total_injected() - seeded;
  const std::uint64_t entities_total = sys.total_injected();
  if (entities_total < min_entities) {
    std::cerr << "GATE: entities " << entities_total << " < required "
              << min_entities << '\n';
    ok = false;
  }
  if (sys.entity_count() + sys.total_arrivals() != sys.total_injected()) {
    std::cerr << "GATE: entity ledger broken: in-system "
              << sys.entity_count() << " + arrivals " << sys.total_arrivals()
              << " != injected " << sys.total_injected() << '\n';
    ok = false;
  }
  const auto budget_bytes =
      static_cast<std::uint64_t>(budget * static_cast<double>(dense_bytes));
  if (peak_resident > budget_bytes) {
    std::cerr << "GATE: peak resident " << peak_resident << " B > " << budget
              << " * dense " << dense_bytes << " B = " << budget_bytes
              << " B\n";
    ok = false;
  }

  // Tracking: resident bytes must follow the chunk-count cost model. The
  // sweep phase has a moving front (high variance — require correlation);
  // a near-flat series (the saturated conveyor) passes trivially via the
  // low-variance branch.
  std::vector<double> resident, model;
  for (const Sample& s : samples) {
    if (s.phase != "sweep") continue;
    resident.push_back(static_cast<double>(s.store.resident_bytes));
    model.push_back(
        static_cast<double>(s.store.live_chunks * kLiveChunkModelBytes +
                            s.store.parked_chunks * kParkedChunkModelBytes));
  }
  double track_r = 1.0;
  if (resident.size() >= 3) {
    double mmin = model[0], mmax = model[0];
    for (const double m : model) {
      mmin = std::min(mmin, m);
      mmax = std::max(mmax, m);
    }
    if (mmax - mmin > 0.01 * mmax) {
      track_r = pearson(resident, model);
      if (track_r < 0.9) {
        std::cerr << "GATE: resident bytes do not track chunk counts "
                     "(pearson r = "
                  << track_r << ")\n";
        ok = false;
      }
    }
  }

  // --- report ---------------------------------------------------------
  TextTable table;
  table.set_header({"figure", "value"});
  table.add_row({"side / chunks", std::to_string(side) + " / " +
                                      std::to_string(sys.store().chunk_count())});
  table.add_row({"entities (seeded+injected)",
                 std::to_string(seeded) + "+" + std::to_string(injected)});
  table.add_row({"arrivals", std::to_string(sys.total_arrivals())});
  table.add_row({"peak resident bytes", std::to_string(peak_resident)});
  table.add_row({"dense extrapolation bytes", std::to_string(dense_bytes)});
  table.add_row(
      {"peak / dense",
       std::to_string(static_cast<double>(peak_resident) /
                      static_cast<double>(dense_bytes))});
  table.add_row({"tracking pearson r", std::to_string(track_r)});
  table.add_row({"sweep rounds/s",
                 std::to_string(sweep_secs > 0.0
                                    ? static_cast<double>(sweep_rounds) /
                                          sweep_secs
                                    : 0.0)});
  table.add_row({"conveyor rounds/s",
                 std::to_string(conveyor_secs > 0.0
                                    ? static_cast<double>(rounds) /
                                          conveyor_secs
                                    : 0.0)});
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"phase", "round", "live_chunks", "parked_chunks",
              "virgin_chunks", "entities", "resident_bytes"});
  for (const Sample& s : samples) {
    csv.field(s.phase)
        .field(s.round)
        .field(s.store.live_chunks)
        .field(s.store.parked_chunks)
        .field(s.store.virgin_chunks)
        .field(s.entities)
        .field(s.store.resident_bytes);
    csv.end_row();
  }

  recorder.note_memory("store_peak_bytes", peak_resident);
  recorder.note_memory("vm_hwm_bytes", obs::process_memory().vm_hwm_bytes);

  std::cout << (ok ? "\ngates: all passed\n" : "\ngates: FAILED (see stderr)\n");
  return ok ? 0 : 1;
}
