// Extension bench E13: the Figure-7 sweep on the hexagonal tessellation
// (§V "arbitrary tessellations"). Same parameter axes as Figure 7;
// per-hop distances are 2a ≈ 1.73 (vs 1 on squares), so absolute rates
// sit lower while the shapes — monotone in rs, ordered in v — must match.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "hexflow/hex_system.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

double run_hex(double rs, double v, std::uint64_t rounds) {
  HexSystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(0.25, rs, v);
  cfg.sources = {HexId{1, 0}};
  cfg.target = HexId{1, 5};
  HexSystem sys(cfg);
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    const std::string safe = check_hex_safe(sys);
    if (!safe.empty()) {
      std::cerr << "ORACLE VIOLATION: " << safe << '\n';
      std::exit(1);
    }
  }
  return static_cast<double>(sys.total_arrivals()) /
         static_cast<double>(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ext_hex_throughput");

  std::cout << "=== Extension: Figure-7 sweep on the hex tessellation ===\n"
            << "6x6 rhombus of unit-side hexagons, l=0.25, K=" << rounds
            << "\n\n";

  TextTable table;
  table.set_header({"rs", "v=0.05", "v=0.10", "v=0.20"});
  std::vector<std::array<double, 4>> rows;
  // Feasibility caps the sweep: d + v ≤ a = 0.866 → rs ≤ 0.866−l−v.
  for (const double rs : {0.05, 0.15, 0.25, 0.35}) {
    const double t05 = run_hex(rs, 0.05, rounds);
    const double t10 = run_hex(rs, 0.1, rounds);
    const double t20 = run_hex(rs, 0.2, rounds);
    recorder.note_rounds(3 * rounds);
    table.add_numeric_row(format_sig(rs, 3), {t05, t10, t20});
    rows.push_back({rs, t05, t10, t20});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"rs", "v0.05", "v0.10", "v0.20"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2], r[3]});

  std::cout << "\nexpected shape: Figure 7's orderings — increasing in v,\n"
               "decreasing in rs — on a non-square tessellation.\n";
  return 0;
}
