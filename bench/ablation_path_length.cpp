// Ablation E4: §IV claims that "for a sufficiently large K, throughput is
// independent of the length of the path." We sweep straight column paths
// of increasing length (grid side grows with the path) at fixed
// parameters and report throughput together with the mean birth→arrival
// latency — which, unlike throughput, must grow linearly with length.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 4000, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_path_length");

  bench::banner("Ablation: throughput vs path length",
                "ICDCS'10 SIV text claim: throughput independent of length");

  const std::vector<int> sides = {4, 6, 8, 10, 12, 14, 16};
  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"path-length", "throughput", "mean-latency(rounds)"});

  std::vector<std::array<double, 3>> rows;

  for (const int side : sides) {
    WorkloadSpec spec;
    spec.config.side = side;
    spec.config.params = Params(0.25, 0.05, 0.2);
    spec.config.sources = {CellId{1, 0}};
    spec.config.target = CellId{1, side - 1};
    spec.rounds = rounds;
    spec.choose_policy = "random";

    RunningStats thr;
    RunningStats lat;
    for (const std::uint64_t seed : seeds) {
      const RunResult r = run_workload(spec, seed);
      recorder.note_rounds(rounds);
      if (!r.safety_clean) {
        std::cerr << "SAFETY VIOLATION: " << r.safety_report << '\n';
        return 1;
      }
      thr.add(r.throughput);
      lat.add(r.mean_latency);
    }
    table.add_numeric_row(std::to_string(side),
                          {thr.mean(), lat.mean()});
    rows.push_back({static_cast<double>(side), thr.mean(), lat.mean()});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"path_length", "throughput", "mean_latency"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2]});

  std::cout << "\nexpected shape: throughput column ~flat; latency column\n"
               "grows ~linearly with path length.\n";
  return 0;
}
