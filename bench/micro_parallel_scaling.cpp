// Micro-benchmark: rounds/sec of the serial vs parallel round engine
// (core/system.hpp's ParallelPolicy) on saturated grids from 20×20 to
// 100×100. Every engine runs the identical workload from the identical
// initial state; a digest of the full protocol state after the timed
// window is compared across engines, so this bench doubles as an
// end-to-end determinism check — any digest mismatch aborts nonzero.
//
// Observed speedup is hardware-bound: it tracks the number of physical
// cores (on a single-core machine the parallel engine only pays
// synchronization overhead, by design — compare digests, not rounds/sec,
// there). scripts/plot_figures.py consumes the CSV block.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Saturated many-stream workload: sources along the whole west edge,
/// target at the middle of the east edge. Keeps the population (and the
/// per-round Signal/Move work) proportional to the grid side.
SystemConfig scaling_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources.clear();
  for (int j = 0; j < side; ++j) cfg.sources.push_back(CellId{0, j});
  return cfg;
}

/// FNV-1a over every protocol variable of every cell plus the round
/// counters — any single-bit divergence between engines changes it.
class StateDigest {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (v >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix_opt(const OptCellId& id) noexcept {
    mix(id.has_value() ? (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id->i))
                              << 32) |
                             static_cast<std::uint32_t>(id->j)
                       : ~0ull);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t digest(const System& sys) {
  StateDigest d;
  d.mix(sys.round());
  d.mix(sys.total_arrivals());
  d.mix(sys.total_injected());
  for (const CellState& c : sys.cells()) {
    d.mix(c.failed ? 1 : 0);
    d.mix(c.dist.is_finite() ? c.dist.hops() : ~0ull);
    d.mix_opt(c.next);
    d.mix_opt(c.token);
    d.mix_opt(c.signal);
    d.mix(c.members.size());
    for (const Entity& e : c.members) {
      d.mix(e.id.value);
      d.mix_double(e.center.x);
      d.mix_double(e.center.y);
    }
  }
  return d.value();
}

struct Measurement {
  double rounds_per_sec = 0.0;
  std::uint64_t state_digest = 0;
};

Measurement measure(int side, const ParallelPolicy& policy,
                    std::uint64_t warmup, std::uint64_t rounds) {
  System sys(scaling_config(side));
  sys.set_parallel_policy(policy);
  for (std::uint64_t k = 0; k < warmup; ++k) sys.update();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) sys.update();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.rounds_per_sec = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
  m.state_digest = digest(sys);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 300, "timed rounds per engine");
  const auto warmup =
      cli.get_uint("warmup", 60, "untimed rounds to reach steady state");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 100, "largest grid side to measure"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_parallel_scaling");

  bench::banner(
      "Micro: parallel round-engine scaling",
      "ParallelPolicy engine; serial vs 2/4/8 worker threads");
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "  (speedup is bounded by physical cores; digests must\n"
               "   match on any machine — that is the determinism check)\n\n";

  const std::vector<int> all_sides = {20, 50, 100};
  const std::vector<int> thread_counts = {2, 4, 8};

  TextTable table;
  table.set_header(
      {"side", "serial r/s", "2t r/s", "4t r/s", "8t r/s", "speedup@8"});

  struct Row {
    int side;
    std::vector<double> rps;  // serial, then thread_counts order
  };
  std::vector<Row> results;
  bool digests_agree = true;

  for (const int side : all_sides) {
    if (side > max_side) continue;
    Row row{side, {}};
    const Measurement serial =
        measure(side, ParallelPolicy::serial(), warmup, rounds);
    row.rps.push_back(serial.rounds_per_sec);
    recorder.note_rounds(warmup + rounds);
    for (const int t : thread_counts) {
      const Measurement m =
          measure(side, ParallelPolicy::parallel(t), warmup, rounds);
      row.rps.push_back(m.rounds_per_sec);
      recorder.note_rounds(warmup + rounds);
      if (m.state_digest != serial.state_digest) {
        digests_agree = false;
        std::cerr << "DIGEST MISMATCH: side=" << side << " threads=" << t
                  << " parallel state diverged from serial\n";
      }
    }
    std::vector<double> cells = row.rps;
    cells.push_back(row.rps.back() / row.rps.front());
    table.add_numeric_row(std::to_string(side), cells);
    results.push_back(std::move(row));
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"side", "threads", "rounds_per_sec", "speedup"});
  for (const Row& r : results) {
    csv.row({static_cast<double>(r.side), 0.0, r.rps[0], 1.0});
    for (std::size_t t = 0; t < thread_counts.size(); ++t)
      csv.row({static_cast<double>(r.side),
               static_cast<double>(thread_counts[t]), r.rps[t + 1],
               r.rps[t + 1] / r.rps[0]});
  }

  std::cout << (digests_agree
                    ? "\ndeterminism: serial and parallel digests agree\n"
                    : "\ndeterminism: DIGEST MISMATCH (bug)\n");
  return digests_agree ? 0 : 1;
}
