// Micro-benchmark: rounds/sec of the serial vs parallel round engine
// (core/system.hpp's ParallelPolicy) on saturated grids from 20×20 to
// 100×100, with the engine-telemetry decomposition of each configuration
// (obs/engine_telemetry.hpp): wall-equivalent work / barrier-wait /
// dispatch / merge nanoseconds per round, phase imbalance, and the
// fraction of round time the components explain (coverage). This is the
// measuring instrument for the "parallel engine loses to serial"
// roadmap item — the sidecar shows *where* the non-work time goes.
//
// Every engine runs the identical workload from the identical initial
// state; a digest of the full protocol state after the timed window is
// compared across engines, so this bench doubles as an end-to-end
// determinism check — any digest mismatch aborts nonzero (telemetry is
// attached in every mode, so it also proves observation-only).
//
// Each configuration is measured --reps times; the CSV reports the mean
// plus a <metric>_rd relative-dispersion column ((max-min)/mean) per
// timed metric, which tools/cellflow_bench_diff folds into its
// regression thresholds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Saturated many-stream workload: sources along the whole west edge,
/// target at the middle of the east edge. Keeps the population (and the
/// per-round Signal/Move work) proportional to the grid side.
SystemConfig scaling_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources.clear();
  for (int j = 0; j < side; ++j) cfg.sources.push_back(CellId{0, j});
  return cfg;
}

/// FNV-1a over every protocol variable of every cell plus the round
/// counters — any single-bit divergence between engines changes it.
class StateDigest {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (v >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix_opt(const OptCellId& id) noexcept {
    mix(id.has_value() ? (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id->i))
                              << 32) |
                             static_cast<std::uint32_t>(id->j)
                       : ~0ull);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t digest(const System& sys) {
  StateDigest d;
  d.mix(sys.round());
  d.mix(sys.total_arrivals());
  d.mix(sys.total_injected());
  for (const CellState& c : sys.cells()) {
    d.mix(c.failed ? 1 : 0);
    d.mix(c.dist.is_finite() ? c.dist.hops() : ~0ull);
    d.mix_opt(c.next);
    d.mix_opt(c.token);
    d.mix_opt(c.signal);
    d.mix(c.members.size());
    for (const Entity& e : c.members) {
      d.mix(e.id.value);
      d.mix_double(e.center.x);
      d.mix_double(e.center.y);
    }
  }
  return d.value();
}

struct Measurement {
  double rounds_per_sec = 0.0;
  std::uint64_t state_digest = 0;
  // Per-round telemetry means over the timed window (nanoseconds).
  double work_ns = 0.0;
  double barrier_ns = 0.0;
  double dispatch_ns = 0.0;
  double merge_ns = 0.0;
  double round_ns = 0.0;
  double imbalance = 1.0;  ///< mean over phases and rounds
  double coverage = 0.0;   ///< accounted / round wall time
};

/// `instrumented` attaches telemetry (the breakdown columns). Running
/// once more with it detached matters beyond speed: only an
/// unobserved pooled engine takes the fused-barrier run_plan path
/// (update() needs the per-phase barriers to measure them), so the
/// uninstrumented twin is what extends the digest check to that path.
Measurement measure(int side, const ParallelPolicy& policy,
                    std::uint64_t warmup, std::uint64_t rounds,
                    bool instrumented = true) {
  System sys(scaling_config(side));
  sys.set_parallel_policy(policy);
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  if (instrumented) sys.set_telemetry(&telemetry);
  for (std::uint64_t k = 0; k < warmup; ++k) sys.update();
  telemetry.reset_totals();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) sys.update();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.rounds_per_sec = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
  m.state_digest = digest(sys);
  const obs::EngineTelemetry::Totals& t = telemetry.totals();
  if (t.rounds > 0) {
    const double n = static_cast<double>(t.rounds);
    m.work_ns = static_cast<double>(t.work_ns) / n;
    m.barrier_ns = static_cast<double>(t.barrier_wait_ns) / n;
    m.dispatch_ns = static_cast<double>(t.dispatch_ns) / n;
    m.merge_ns = static_cast<double>(t.merge_ns) / n;
    m.round_ns = static_cast<double>(t.round_ns) / n;
    m.imbalance = (t.imbalance_route_sum + t.imbalance_signal_sum +
                   t.imbalance_move_sum) /
                  (3.0 * n);
    m.coverage = t.coverage();
  }
  return m;
}

/// Best-of-reps statistic plus its reproducibility. On a contended
/// machine timing noise is one-sided slowdown, so "best" (max for
/// throughput, min for durations) is the clean value; rel is the
/// relative gap between best and second-best — how repeatable the
/// reported number is, which is what the regression gate needs (the raw
/// scatter would overstate the noise of a best-of statistic).
struct Spread {
  double best = 0.0;
  double rel = 0.0;
};

Spread spread(std::vector<double> samples, bool higher_better) {
  Spread s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  if (higher_better) std::reverse(samples.begin(), samples.end());
  s.best = samples[0];
  if (samples.size() > 1 && s.best != 0.0)
    s.rel = std::abs(samples[1] - s.best) / std::abs(s.best);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 300, "timed rounds per engine");
  const auto warmup =
      cli.get_uint("warmup", 60, "untimed rounds to reach steady state");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 100, "largest grid side to measure"));
  const auto reps = static_cast<std::size_t>(
      cli.get_uint("reps", 3, "measurement repetitions per configuration"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_parallel_scaling");
  recorder.set_repetitions(static_cast<int>(reps));

  bench::banner(
      "Micro: parallel round-engine scaling",
      "ParallelPolicy engine; serial vs 2/4/8 worker threads, with the\n"
      "engine-telemetry breakdown of where each round's time goes");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw
            << "  (speedup is bounded by physical cores; digests must\n"
               "   match on any machine — that is the determinism check)\n\n";

  const std::vector<int> all_sides = {20, 50, 100};
  const std::vector<int> thread_counts = {0, 2, 4, 8};  // 0 = serial

  const int max_requested =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  if (hw != 0 && hw < static_cast<unsigned>(max_requested)) {
    std::cout << "WARNING: only " << hw << " hardware thread"
              << (hw == 1 ? "" : "s") << " for up to " << max_requested
              << " requested workers — the oversubscribed widths time-slice\n"
                 "         one core, so speedup_vs_serial is informational "
                 "only on this\n"
                 "         machine (the digest checks remain exact).\n\n";
  }

  struct Row {
    int side = 0;
    int threads = 0;
    Spread rps, work, barrier, dispatch, merge, round;
    double speedup = 1.0;
    double coverage_pct = 0.0;
    double imbalance = 1.0;
  };
  std::vector<Row> rows;
  bool digests_agree = true;

  for (const int side : all_sides) {
    if (side > max_side) continue;
    std::uint64_t serial_digest = 0;
    double serial_rps = 0.0;
    for (const int t : thread_counts) {
      const ParallelPolicy policy =
          t == 0 ? ParallelPolicy::serial() : ParallelPolicy::parallel(t);
      Row row;
      row.side = side;
      row.threads = t;
      std::vector<double> s_rps, s_work, s_barrier, s_dispatch, s_merge,
          s_round;
      double cov_sum = 0.0;
      double imb_sum = 0.0;
      std::uint64_t dig = 0;
      for (std::size_t r = 0; r < reps; ++r) {
        const Measurement m = measure(side, policy, warmup, rounds);
        recorder.note_rounds(warmup + rounds);
        s_rps.push_back(m.rounds_per_sec);
        s_work.push_back(m.work_ns);
        s_barrier.push_back(m.barrier_ns);
        s_dispatch.push_back(m.dispatch_ns);
        s_merge.push_back(m.merge_ns);
        s_round.push_back(m.round_ns);
        cov_sum += m.coverage;
        imb_sum += m.imbalance;
        if (r == 0) {
          dig = m.state_digest;
        } else if (m.state_digest != dig) {
          digests_agree = false;
          std::cerr << "DIGEST MISMATCH: side=" << side << " threads=" << t
                    << " across repetitions (nondeterministic engine)\n";
        }
      }
      row.rps = spread(s_rps, true);
      row.work = spread(s_work, false);
      row.barrier = spread(s_barrier, false);
      row.dispatch = spread(s_dispatch, false);
      row.merge = spread(s_merge, false);
      row.round = spread(s_round, false);
      row.coverage_pct = 100.0 * cov_sum / static_cast<double>(reps);
      row.imbalance = imb_sum / static_cast<double>(reps);
      if (t == 0) {
        serial_digest = dig;
        serial_rps = row.rps.best;
        row.speedup = 1.0;
      } else {
        row.speedup = serial_rps > 0.0 ? row.rps.best / serial_rps : 0.0;
        if (dig != serial_digest) {
          digests_agree = false;
          std::cerr << "DIGEST MISMATCH: side=" << side << " threads=" << t
                    << " parallel state diverged from serial\n";
        }
        // Fused-engine coverage: one uninstrumented run per parallel
        // configuration (see measure()'s comment) whose digest must
        // match the instrumented engines'.
        const Measurement fused =
            measure(side, policy, warmup, rounds, /*instrumented=*/false);
        recorder.note_rounds(warmup + rounds);
        if (fused.state_digest != dig) {
          digests_agree = false;
          std::cerr << "DIGEST MISMATCH: side=" << side << " threads=" << t
                    << " fused (uninstrumented) engine diverged\n";
        }
      }
      rows.push_back(row);
    }
  }

  TextTable table;
  table.set_header({"side", "threads", "r/s", "speedup", "work%", "barrier%",
                    "dispatch%", "merge%", "cover%", "imbal"});
  for (const Row& r : rows) {
    const auto pct_of_round = [&](const Spread& s) {
      return r.round.best > 0.0 ? 100.0 * s.best / r.round.best : 0.0;
    };
    table.add_numeric_row(
        std::to_string(r.side),
        {static_cast<double>(r.threads), r.rps.best, r.speedup,
         pct_of_round(r.work), pct_of_round(r.barrier),
         pct_of_round(r.dispatch), pct_of_round(r.merge), r.coverage_pct,
         r.imbalance});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"side", "threads", "rounds_per_sec", "rounds_per_sec_rd",
              "speedup_vs_serial", "work_ns", "work_ns_rd", "barrier_ns",
              "barrier_ns_rd", "dispatch_ns", "dispatch_ns_rd", "merge_ns",
              "merge_ns_rd", "round_ns", "round_ns_rd", "coverage_pct",
              "imbalance"});
  for (const Row& r : rows) {
    csv.row({static_cast<double>(r.side), static_cast<double>(r.threads),
             r.rps.best, r.rps.rel, r.speedup, r.work.best, r.work.rel,
             r.barrier.best, r.barrier.rel, r.dispatch.best, r.dispatch.rel,
             r.merge.best, r.merge.rel, r.round.best, r.round.rel,
             r.coverage_pct, r.imbalance});
  }

  std::cout << (digests_agree
                    ? "\ndeterminism: serial and parallel digests agree\n"
                    : "\ndeterminism: DIGEST MISMATCH (bug)\n");
  return digests_agree ? 0 : 1;
}
