// Ablation E5 (Corollary 7): rounds for the distributed Route function to
// re-stabilize to the BFS reference after a burst of random failures, as
// a function of grid side N. The corollary bounds this by O(N²); in
// practice recovery tracks the post-failure eccentricity (≈ O(N) for
// random 20% failures), with corrupted-low dist values adding a
// count-to-correct phase. We report fresh-start convergence, post-burst
// recovery, and recovery from adversarially corrupted dist state.
#include <iostream>

#include "bench_common.hpp"
#include "core/choose.hpp"
#include "core/source.hpp"
#include "failure/failure_model.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

bool routing_agrees(const System& sys) {
  const auto rho = sys.reference_distances();
  for (const CellId id : sys.grid().all_cells()) {
    const Dist expect = rho[sys.grid().index_of(id)];
    if (expect.is_finite() && sys.cell(id).dist != expect) return false;
  }
  return true;
}

System make(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {};
  cfg.target = CellId{side / 2, side / 2};
  return System(cfg, nullptr, std::make_unique<NullSource>());
}

std::uint64_t rounds_to_agreement(System& sys, std::uint64_t bound) {
  std::uint64_t rounds = 0;
  while (!routing_agrees(sys) && rounds < bound) {
    sys.update();
    ++rounds;
  }
  return rounds;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto n_seeds = cli.get_uint("seeds", 5, "random failure patterns per N");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_routing_stabilization");

  std::cout << "=== Ablation: routing stabilization time vs N ===\n"
            << "reproduces: ICDCS'10 Corollary 7 (O(N^2) bound)\n\n";

  TextTable table;
  table.set_header({"N", "fresh-start", "after-20%-burst(mean)",
                    "after-corruption(mean)", "bound-4N^2"});
  std::vector<std::array<double, 5>> rows;

  for (const int n : {4, 8, 12, 16, 24, 32}) {
    const auto bound = static_cast<std::uint64_t>(4 * n * n);

    System fresh = make(n);
    const double t_fresh =
        static_cast<double>(rounds_to_agreement(fresh, bound));

    RunningStats t_burst;
    RunningStats t_corrupt;
    for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
      // Burst: fail 20% of cells of a converged system.
      System sys = make(n);
      (void)rounds_to_agreement(sys, bound);
      Xoshiro256 rng(seed * 7919);
      for (const CellId id : sys.grid().all_cells())
        if (id != sys.target() && rng.bernoulli(0.2)) sys.fail(id);
      t_burst.add(static_cast<double>(rounds_to_agreement(sys, bound)));

      // Corruption: overwrite every dist with garbage in [0, 3).
      System sys2 = make(n);
      (void)rounds_to_agreement(sys2, bound);
      Xoshiro256 rng2(seed * 104729);
      for (const CellId id : sys2.grid().all_cells()) {
        if (id == sys2.target()) continue;
        sys2.corrupt_control_state(id, Dist::finite(rng2.below(3)),
                                   std::nullopt, std::nullopt, std::nullopt);
      }
      t_corrupt.add(static_cast<double>(rounds_to_agreement(sys2, bound)));
    }

    table.add_numeric_row(std::to_string(n),
                          {t_fresh, t_burst.mean(), t_corrupt.mean(),
                           static_cast<double>(bound)});
    rows.push_back({static_cast<double>(n), t_fresh, t_burst.mean(),
                    t_corrupt.mean(), static_cast<double>(bound)});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"N", "fresh", "burst", "corruption", "bound"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2], r[3], r[4]});

  std::cout << "\nexpected shape: every measured column far below the 4N^2\n"
               "bound; fresh-start tracks the grid eccentricity (~N).\n";
  return 0;
}
