// Ablation E12: convergence of the K-round throughput estimator. §IV
// defines average throughput as "the limit of K-round throughput for
// large K" and uses K = 2500 (Figs. 7–8) / K = 20000 (Fig. 9). This
// bench shows the estimator's trajectory and the windowed (steady-state)
// rate, justifying those choices: by K ≈ 2500 the failure-free estimate
// is within a few percent of its limit; the stochastic-failure setting
// needs the longer horizon.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_k_convergence");

  std::cout << "=== Ablation: K-round throughput convergence ===\n"
            << "reproduces: SIV's definition of throughput as the large-K\n"
            << "limit of the K-round estimator\n\n";

  const std::vector<std::uint64_t> ks = {100,  250,  500,   1000, 2500,
                                         5000, 10000, 20000, 40000};

  TextTable table;
  table.set_header({"K", "failure-free (Fig.7 cfg)", "pf=0.02,pr=0.1 (Fig.9 cfg)"});
  std::vector<std::array<double, 3>> rows;
  for (const std::uint64_t k : ks) {
    WorkloadSpec clean = fig7_base(0.05, 0.2);
    clean.rounds = k;
    WorkloadSpec faulty = fig9_base(0.02, 0.1);
    faulty.rounds = k;
    faulty.choose_policy = "random";
    const double t_clean = run_workload(clean, seed).throughput;
    const double t_faulty = run_workload(faulty, seed).throughput;
    recorder.note_rounds(2 * k);
    table.add_numeric_row(std::to_string(k), {t_clean, t_faulty});
    rows.push_back({static_cast<double>(k), t_clean, t_faulty});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"K", "clean", "faulty"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2]});

  std::cout << "\nexpected shape: the failure-free column settles by\n"
               "K ~ 1000-2500 (pipeline fill is the only transient); the\n"
               "stochastic column keeps fluctuating until K ~ 10000-20000,\n"
               "matching the paper's choice of horizons.\n";
  return 0;
}
