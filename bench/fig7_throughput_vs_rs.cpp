// Figure 7 reproduction: throughput versus safety spacing rs for several
// velocities v, on the 8×8 grid with l = 0.25, SID = {⟨1,0⟩},
// tid = ⟨1,7⟩, K = 2500 rounds. The paper sweeps rs ∈ [0.05, ~0.7] for
// v ∈ {0.05, 0.1, 0.2, 0.25} and reports: throughput roughly proportional
// to v, inversely related to rs, and saturating near rs ≈ 0.55 (one
// entity per cell).
//
// Output: one table row per rs with one column per v (the paper's four
// series), followed by the same data as CSV.
#include <iostream>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  const std::string policy =
      cli.get_string("policy", "random", "token choose policy");
  const ParallelPolicy engine = bench::parallel_from_cli(cli);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("fig7_throughput_vs_rs");

  bench::banner("Figure 7: throughput vs safety spacing rs",
                "ICDCS'10 Fig. 7 (8x8, l=0.25, SID={<1,0>}, tid=<1,7>, K=2500)");

  const std::vector<double> velocities = {0.05, 0.1, 0.2, 0.25};
  std::vector<double> rs_values;
  for (double rs = 0.05; rs < 0.75 - 1e-9; rs += 0.05) rs_values.push_back(rs);

  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"rs", "v=0.05", "v=0.10", "v=0.20", "v=0.25"});
  std::vector<std::vector<double>> grid(rs_values.size());

  for (std::size_t r = 0; r < rs_values.size(); ++r) {
    for (const double v : velocities) {
      WorkloadSpec spec = fig7_base(rs_values[r], v);
      spec.rounds = rounds;
      spec.choose_policy = policy;
      spec.parallel = engine;
      grid[r].push_back(bench::mean_throughput(spec, seeds));
      recorder.note_rounds(rounds * seeds.size());
    }
    table.add_numeric_row(format_sig(rs_values[r], 3), grid[r]);
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"rs", "v", "throughput"});
  for (std::size_t r = 0; r < rs_values.size(); ++r)
    for (std::size_t c = 0; c < velocities.size(); ++c)
      csv.row({rs_values[r], velocities[c], grid[r][c]});

  std::cout << "\nexpected shape: columns increase left->right (faster v),\n"
               "rows decrease top->bottom (larger rs), flattening once rs\n"
               "forces ~one entity per cell.\n";
  return 0;
}
